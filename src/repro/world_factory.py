"""World snapshot caching.

Building a :class:`~repro.world.World` walks the whole site catalogue, DNS
fabric, anchor mesh, and provider list — roughly 100 ms per call — yet every
unit of a study asks for the *same* world: ``World.build`` is deterministic
in ``(seed, provider set)``.  The :class:`WorldFactory` builds each distinct
world once, pickles it into an immutable template blob, and hands out cheap
clones (``pickle.loads`` is ~10x faster than a fresh build and produces a
fully isolated object graph — no state leaks between units).

Pickling (not :func:`copy.deepcopy`) is deliberate: deepcopy treats
functions as atomic, so a closure smuggled into the graph would silently
keep referencing template state across "copies".  Pickle fails loudly on
such objects instead, and the factory falls back to a fresh build while
remembering not to retry.

The cache is module-level so that a fork-based process pool inherits warmed
templates copy-on-write: the coordinator warms the blob before the pool
spawns, and every worker clones without ever rebuilding.
"""

from __future__ import annotations

import pickle
import threading
from collections import OrderedDict
from typing import Optional

from repro.world import World

# Templates are a few hundred KB each; a study touches one or two keys.
_MAX_TEMPLATES = 8


class WorldFactory:
    """Process-wide cache of pickled world templates.

    All methods are classmethods on shared state: the cache exists per
    process, which is exactly the granularity at which clones are useful
    (threads share it under a lock; forked workers inherit it).
    """

    _lock = threading.Lock()
    # (seed, provider tuple or None) -> pickled World
    _templates: "OrderedDict[tuple, bytes]" = OrderedDict()
    # Keys whose worlds turned out unpicklable; build fresh, don't retry.
    _unpicklable: set = set()

    @staticmethod
    def _key(
        seed: int, provider_names: Optional[list[str]]
    ) -> tuple:
        providers = None if provider_names is None else tuple(provider_names)
        return (seed, providers)

    @classmethod
    def template_blob(
        cls, seed: int = 2018, provider_names: Optional[list[str]] = None
    ) -> Optional[bytes]:
        """The pickled template for a key, building it on first use.

        Returns ``None`` when the world cannot be pickled (e.g. a test
        grafted an unpicklable behaviour onto it); callers fall back to
        ``World.build``.
        """
        key = cls._key(seed, provider_names)
        with cls._lock:
            if key in cls._unpicklable:
                return None
            blob = cls._templates.get(key)
            if blob is not None:
                cls._templates.move_to_end(key)
                return blob
        # Build outside the lock: construction dominates and is pure.
        world = World.build(seed=seed, provider_names=provider_names)
        try:
            blob = pickle.dumps(world, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            with cls._lock:
                cls._unpicklable.add(key)
            return None
        with cls._lock:
            cls._templates[key] = blob
            cls._templates.move_to_end(key)
            while len(cls._templates) > _MAX_TEMPLATES:
                cls._templates.popitem(last=False)
        return blob

    @classmethod
    def clone(
        cls, seed: int = 2018, provider_names: Optional[list[str]] = None
    ) -> World:
        """A fresh, fully isolated world equal to ``World.build(...)``.

        The clone shares nothing mutable with the template or with other
        clones; mutating one (connecting VPNs, rewriting routes) cannot be
        observed through another.
        """
        blob = cls.template_blob(seed=seed, provider_names=provider_names)
        if blob is None:
            return World.build(seed=seed, provider_names=provider_names)
        return pickle.loads(blob)

    @classmethod
    def warm(
        cls, seed: int = 2018, provider_names: Optional[list[str]] = None
    ) -> bool:
        """Ensure the template exists; True if clones will use it."""
        return cls.template_blob(seed, provider_names) is not None

    @classmethod
    def clear(cls) -> None:
        """Drop all cached templates (tests; memory pressure)."""
        with cls._lock:
            cls._templates.clear()
            cls._unpicklable.clear()
