"""World snapshot caching.

Building a :class:`~repro.world.World` walks the whole site catalogue, DNS
fabric, anchor mesh, and provider list — roughly 100 ms per call — yet every
unit of a study asks for the *same* world: ``World.build`` is deterministic
in ``(seed, provider set)``.  The :class:`WorldFactory` builds each distinct
world once, pickles it into an immutable template blob, and hands out cheap
clones (``pickle.loads`` is ~10x faster than a fresh build and produces a
fully isolated object graph — no state leaks between units).

Pickling (not :func:`copy.deepcopy`) is deliberate: deepcopy treats
functions as atomic, so a closure smuggled into the graph would silently
keep referencing template state across "copies".  Pickle fails loudly on
such objects instead, and the factory falls back to a fresh build while
remembering not to retry.

The cache is module-level so that a fork-based process pool inherits warmed
templates copy-on-write: the coordinator warms the blob before the pool
spawns, and every worker clones without ever rebuilding.
"""

from __future__ import annotations

import pickle
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Optional

from repro.world import World

if TYPE_CHECKING:
    from repro.source import StudySource

# Templates are a few hundred KB each; a study touches one or two keys.
_MAX_TEMPLATES = 8


class WorldFactory:
    """Process-wide cache of pickled world templates.

    All methods are classmethods on shared state: the cache exists per
    process, which is exactly the granularity at which clones are useful
    (threads share it under a lock; forked workers inherit it).
    """

    _lock = threading.Lock()
    # (seed, provider tuple or None) -> pickled World
    _templates: "OrderedDict[tuple, bytes]" = OrderedDict()
    # Keys whose worlds turned out unpicklable; build fresh, don't retry.
    _unpicklable: set = set()

    @staticmethod
    def _key(
        seed: int, provider_names: Optional[list[str]]
    ) -> tuple:
        providers = None if provider_names is None else tuple(provider_names)
        return (seed, providers)

    @classmethod
    def template_blob(
        cls, seed: int = 2018, provider_names: Optional[list[str]] = None
    ) -> Optional[bytes]:
        """The pickled template for a key, building it on first use.

        Returns ``None`` when the world cannot be pickled (e.g. a test
        grafted an unpicklable behaviour onto it); callers fall back to
        ``World.build``.
        """
        key = cls._key(seed, provider_names)
        with cls._lock:
            if key in cls._unpicklable:
                return None
            blob = cls._templates.get(key)
            if blob is not None:
                cls._templates.move_to_end(key)
                return blob
        # Build outside the lock: construction dominates and is pure.
        world = World.build(seed=seed, provider_names=provider_names)
        try:
            blob = pickle.dumps(world, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            with cls._lock:
                cls._unpicklable.add(key)
            return None
        with cls._lock:
            cls._templates[key] = blob
            cls._templates.move_to_end(key)
            while len(cls._templates) > _MAX_TEMPLATES:
                cls._templates.popitem(last=False)
        return blob

    @classmethod
    def clone(
        cls, seed: int = 2018, provider_names: Optional[list[str]] = None
    ) -> World:
        """A fresh, fully isolated world equal to ``World.build(...)``.

        The clone shares nothing mutable with the template or with other
        clones; mutating one (connecting VPNs, rewriting routes) cannot be
        observed through another.
        """
        blob = cls.template_blob(seed=seed, provider_names=provider_names)
        if blob is None:
            return World.build(seed=seed, provider_names=provider_names)
        return pickle.loads(blob)

    @classmethod
    def warm(
        cls, seed: int = 2018, provider_names: Optional[list[str]] = None
    ) -> bool:
        """Ensure the template exists; True if clones will use it."""
        return cls.template_blob(seed, provider_names) is not None

    @classmethod
    def clear(cls) -> None:
        """Drop all cached templates (tests; memory pressure)."""
        with cls._lock:
            cls._templates.clear()
            cls._unpicklable.clear()


class ShardedWorldFactory:
    """Per-shard world templates for a :class:`~repro.source.StudySource`.

    A shard is a contiguous slice of the source's provider list.  Each
    shard's world contains *only* that slice's providers — a unit's result
    bytes are independent of which other providers exist in the world (the
    byte-identity the determinism suite pins), so auditing shard by shard
    reproduces the monolithic study exactly while a worker only ever
    restores ``1/shards`` of the provider set.

    Catalogue-backed sources delegate to :class:`WorldFactory` (same cache,
    same keys, so the unsharded catalogue path is bit-for-bit untouched);
    generated sources get their own template cache here because their
    worlds are built from realised profiles, not catalogue names.
    """

    _lock = threading.Lock()
    # (seed, source.cache_key(), shard, shards) -> pickled World
    _templates: "OrderedDict[tuple, bytes]" = OrderedDict()
    _unpicklable: set = set()

    @staticmethod
    def shard_names(
        source: "StudySource", seed: int, shard: int, shards: int
    ) -> list[str]:
        """Provider names of one shard, in study order."""
        return source.provider_source(seed).shard_names(shards)[shard]

    @classmethod
    def _generated_blob(
        cls, seed: int, source: "StudySource", shard: int, shards: int
    ) -> Optional[bytes]:
        key = (seed, source.cache_key(), shard, shards)
        with cls._lock:
            if key in cls._unpicklable:
                return None
            blob = cls._templates.get(key)
            if blob is not None:
                cls._templates.move_to_end(key)
                return blob
        names = cls.shard_names(source, seed, shard, shards)
        world = World.build(
            seed=seed, profiles=source.profiles_for(names, seed)
        )
        try:
            blob = pickle.dumps(world, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            with cls._lock:
                cls._unpicklable.add(key)
            return None
        with cls._lock:
            cls._templates[key] = blob
            cls._templates.move_to_end(key)
            while len(cls._templates) > _MAX_TEMPLATES:
                cls._templates.popitem(last=False)
        return blob

    @classmethod
    def clone(
        cls,
        seed: int,
        source: "StudySource",
        shard: int = 0,
        shards: int = 1,
    ) -> World:
        """A fresh world holding exactly shard ``shard`` of ``shards``."""
        if not (0 <= shard < shards):
            raise ValueError(f"shard {shard} outside [0, {shards})")
        if not source.is_generated:
            if shards == 1:
                # Preserve the exact legacy cache key: `catalog` maps to
                # provider_names=None, `explicit` to its name list.
                names = (
                    None if source.kind == "catalog"
                    else list(source.providers or ())
                )
            else:
                names = cls.shard_names(source, seed, shard, shards)
            return WorldFactory.clone(seed=seed, provider_names=names)
        blob = cls._generated_blob(seed, source, shard, shards)
        if blob is None:
            names = cls.shard_names(source, seed, shard, shards)
            return World.build(
                seed=seed, profiles=source.profiles_for(names, seed)
            )
        return pickle.loads(blob)

    @classmethod
    def warm(
        cls,
        seed: int,
        source: "StudySource",
        shard: int = 0,
        shards: int = 1,
    ) -> bool:
        """Ensure the shard's template exists; True if clones will use it."""
        if not source.is_generated:
            if shards == 1:
                names = (
                    None if source.kind == "catalog"
                    else list(source.providers or ())
                )
            else:
                names = cls.shard_names(source, seed, shard, shards)
            return WorldFactory.warm(seed, names)
        return cls._generated_blob(seed, source, shard, shards) is not None

    @classmethod
    def clear(cls) -> None:
        """Drop all cached shard templates (tests; memory pressure)."""
        with cls._lock:
            cls._templates.clear()
            cls._unpicklable.clear()
