"""Metadata and capture collection (Section 5.3.4).

Collects routing and ARP tables, interface lists, configured resolvers and
the firewall state, and pings every pinned /32 route — the general
configuration snapshot the paper stored to support anomaly investigation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.results import MetadataSnapshot

if TYPE_CHECKING:
    from repro.core.harness import TestContext


class MetadataTest:
    """Snapshot host configuration and probe pinned host routes."""

    name = "metadata"

    def run(self, context: "TestContext") -> MetadataSnapshot:
        client = context.client
        snapshot = MetadataSnapshot(
            interfaces=[i.snapshot() for i in client.interfaces.values()],
            routes=client.routing.snapshot(),
            dns_servers=[str(s) for s in client.dns_servers],
            firewall=client.firewall.snapshot(),
        )
        for route in client.routing.host_routes():
            target = str(route.prefix.network)
            pings = context.world.internet.ping(client, target, count=1)
            snapshot.host_route_pings[target] = pings[0].rtt_ms
        return snapshot
