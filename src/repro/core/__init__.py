"""The measurement suite — the paper's primary contribution.

``repro.core`` implements every test of Section 5.3 and every analysis of
Section 6:

- manipulation tests: DNS manipulation, DOM & request collection (with the
  honeysites), TLS interception & downgrade detection, header-based
  transparent-proxy detection;
- infrastructure tests: recursive-DNS origin, ping/traceroute sweeps,
  geolocation via the location API;
- leakage tests: DNS leakage, IPv6 leakage, tunnel-failure recovery;
- metadata & capture collection, P2P egress detection;
- analyses: redirect classification, co-location from RTT vectors, geo-IP
  comparison, shared-infrastructure detection.

The :class:`~repro.core.harness.TestSuite` orchestrates everything per
vantage point, exactly as the paper's suite did from inside a macOS VM.
"""

from repro.core.harness import ProviderReport, StudyReport, TestContext, TestSuite

__all__ = ["ProviderReport", "StudyReport", "TestContext", "TestSuite"]
