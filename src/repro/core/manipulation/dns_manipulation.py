"""DNS manipulation test (Section 5.3.1).

Resolves a fixed set of popular hostnames through the VPN-provided resolver
(the host's configured DNS while connected) and through Google Public DNS,
then flags answers that differ.  Differences are triaged with a WHOIS-style
ownership check: an answer pointing into the VPN provider's own address
space is the smoking gun; an answer that merely differs (CDN churn in the
real world) is noted but not flagged.

Assumptions inherited from the paper: manipulation happens only via the
VPN-provided resolver, and the VPN does not spoof Google's responses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.results import DnsComparisonEntry, DnsManipulationResult
from repro.dns.resolver import StubResolver, resolve_via_server

if TYPE_CHECKING:
    from repro.core.harness import TestContext

# "several popular hosts" — drawn from the catalogue's biggest categories.
DEFAULT_PROBE_HOSTS = (
    "daily-herald-news.com",
    "globe-wire.com",
    "micro-blog-central.com",
    "discount-megastore.com",
    "wiki-mirror-project.org",
    "stream-flix-video.com",
    "clinic-finder-online.com",
    "open-encyclopedia.net",
)


class DnsManipulationTest:
    """Compare VPN-resolver answers against Google Public DNS."""

    name = "dns-manipulation"

    def __init__(self, probe_hosts: tuple[str, ...] = DEFAULT_PROBE_HOSTS):
        self.probe_hosts = probe_hosts

    def run(self, context: "TestContext") -> DnsManipulationResult:
        from repro.world import GOOGLE_DNS

        result = DnsManipulationResult()
        system = StubResolver(context.client)
        for hostname in self.probe_hosts:
            vpn_response = system.resolve(hostname)
            reference = resolve_via_server(
                context.client, GOOGLE_DNS, hostname
            )
            vpn_answers = vpn_response.addresses
            ref_answers = reference.addresses
            suspicious = False
            note = ""
            if set(vpn_answers) != set(ref_answers):
                # Triage via WHOIS (Section 5.3.1: "investigating the
                # WHOIS records of the IPs returned by the non-Google
                # server, looking for owner information"): a divergent
                # answer registered to a VPN operator is the smoking gun.
                divergent = set(vpn_answers) - set(ref_answers)
                owned = []
                for answer in divergent:
                    record = context.world.whois.lookup(answer)
                    owner = record.organisation if record else "unregistered"
                    if context.world.is_vpn_address(answer) or (
                        record is not None
                        and context.provider.name in record.organisation
                    ):
                        owned.append((answer, owner))
                if owned:
                    suspicious = True
                    note = "; ".join(
                        f"{answer} registered to {owner!r}"
                        for answer, owner in owned
                    )
                else:
                    note = "divergent but not VPN-owned (CDN churn?)"
            result.entries.append(
                DnsComparisonEntry(
                    hostname=hostname,
                    vpn_answers=vpn_answers,
                    reference_answers=ref_answers,
                    suspicious=suspicious,
                    whois_note=note,
                )
            )
        return result
