"""DOM and request collection test (Section 5.3.1).

Loads the 55-site DOM set (including the two honeysites) through the VPN,
records redirect chains and the final DOM, and diffs each page against the
known-unmodified ground truth collected from the university host.  Injected
elements and unexpected subresource domains are reported per page; the
redirect chains feed the URL-redirection analysis (Section 6.1.1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.results import DomCollectionResult, PageObservation
from repro.web.browser import PageLoad
from repro.web.dom import Document, diff_documents
from repro.web.url import Url, registered_domain

if TYPE_CHECKING:
    from repro.core.harness import TestContext


class DomCollectionTest:
    """Honeysite-aware page collection and ground-truth diffing."""

    name = "dom-collection"

    def __init__(self, max_sites: Optional[int] = None):
        # The paper had to cap page loads for tractability; max_sites
        # mirrors that lever (None = the full 55-site set).
        self.max_sites = max_sites

    def run(self, context: "TestContext") -> DomCollectionResult:
        result = DomCollectionResult()
        sites = context.world.sites.dom_test_sites()
        if self.max_sites is not None:
            sites = sites[: self.max_sites]
        ground_truth = context.ground_truth_pages()
        browser = context.browser()
        for site in sites:
            load = browser.load_page(site.http_url)
            result.pages.append(
                self._observe(site.http_url, load, ground_truth.get(site.domain))
            )
        return result

    def _observe(
        self,
        url: str,
        load: PageLoad,
        expected: Optional[Document],
    ) -> PageObservation:
        chain = [hop.url for hop in load.hops]
        if load.hops and load.hops[-1].location:
            # Record the redirect target even when the chain ended on it.
            final_target = str(
                Url.parse(load.hops[-1].url).join(load.hops[-1].location)
            )
            if final_target not in chain:
                chain.append(final_target)
        injected: list[str] = []
        unexpected: list[str] = []
        if load.document is not None and expected is not None:
            differences = diff_documents(expected, load.document)
            injected = [d for d in differences if d.startswith("added:")]
            expected_domains = {
                registered_domain(Url.parse(u).host)
                for u in expected.resource_urls()
            }
            expected_domains.add(registered_domain(Url.parse(url).host))
            for resource in load.document.resource_urls():
                domain = registered_domain(Url.parse(resource).host)
                if domain not in expected_domains:
                    unexpected.append(resource)
        status = load.final_response.status if load.final_response else None
        return PageObservation(
            url=url,
            ok=load.ok,
            status=status,
            redirect_chain=chain,
            injected_elements=injected,
            unexpected_resources=unexpected,
            error=load.error,
        )
