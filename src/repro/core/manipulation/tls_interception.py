"""TLS interception and downgrade detection (Section 5.3.1, 6.1.2).

Two steps per hostname, exactly as in the paper:

1. negotiate TLS directly with the host, validate the presented chain, and
   compare its fingerprint against the ground-truth certificate collected
   periodically from the university vantage point;
2. load the hostname via plain HTTP and follow every redirect, recording
   the final URL and status — a path that reveals both TLS stripping
   (an expected ``https://`` upgrade that never happens) and the HTTP 403
   responses of services that blacklist VPN ranges.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.results import TlsInterceptionResult, TlsObservation

if TYPE_CHECKING:
    from repro.core.harness import TestContext


class TlsInterceptionTest:
    """Certificate comparison plus HTTP-upgrade walking."""

    name = "tls-interception"

    def __init__(self, max_hosts: Optional[int] = None):
        self.max_hosts = max_hosts

    def run(self, context: "TestContext") -> TlsInterceptionResult:
        result = TlsInterceptionResult()
        sites = context.world.sites.tls_test_sites()
        if self.max_hosts is not None:
            sites = sites[: self.max_hosts]
        ground_truth = context.ground_truth_certificates()
        browser = context.browser()

        for site in sites:
            probe = browser.tls_probe(site.domain)
            handshake_ok = probe.ok
            fingerprint = (
                probe.handshake.leaf_fingerprint if probe.handshake else ""
            )
            expected = ground_truth.get(site.domain)
            matches: Optional[bool]
            if not handshake_ok or expected is None:
                matches = None
            else:
                matches = fingerprint == expected
            chain_valid: Optional[bool] = None
            reason = probe.error
            if probe.handshake is not None and probe.handshake.validation:
                chain_valid = probe.handshake.validation.valid
                reason = probe.handshake.validation.reason

            # Step 2: plain-HTTP load, following redirects.
            load = browser.load_page(site.http_url)
            final_url = load.final_url
            status = (
                load.final_response.status if load.final_response else None
            )
            # TLS stripping: the expected HTTPS upgrade never happened and
            # we are still talking to the *same* site over plain HTTP. A
            # redirect to an unrelated host (national block pages, Section
            # 6.1.1) is censorship, not stripping — classified separately.
            from repro.web.url import urls_related

            same_site = True
            try:
                same_site = urls_related(site.http_url, final_url)
            except ValueError:
                same_site = False
            downgraded = bool(
                site.upgrades_https
                and load.ok
                and same_site
                and not final_url.startswith("https://")
            )
            blocked = status == 403

            result.observations.append(
                TlsObservation(
                    hostname=site.domain,
                    handshake_ok=handshake_ok,
                    certificate_fingerprint=fingerprint,
                    matches_ground_truth=matches,
                    chain_valid=chain_valid,
                    validation_reason=reason,
                    http_final_url=final_url,
                    http_status=status,
                    downgraded=downgraded,
                    blocked_403=blocked,
                )
            )
        return result
