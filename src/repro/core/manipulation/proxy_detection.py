"""Header-based transparent-proxy detection (Section 6.2.1).

Sends a request with a characteristic header block (mixed casing, fixed
order) to the header-echo service and compares the headers the origin
actually received.  A proxy that merely forwards bytes leaves the block
untouched; one that parses and regenerates requests normalises casing and
ordering — "consistent with parsing and subsequent regeneration" — even if
it injects nothing.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from repro.core.results import ProxyDetectionResult
from repro.web.http import default_request_headers

if TYPE_CHECKING:
    from repro.core.harness import TestContext


class ProxyDetectionTest:
    """Echo-compare the characteristic request header block."""

    name = "proxy-detection"

    def run(self, context: "TestContext") -> ProxyDetectionResult:
        from repro.world import HEADER_ECHO_DOMAIN

        browser = context.browser()
        url = f"http://{HEADER_ECHO_DOMAIN}/echo"
        sent = default_request_headers(HEADER_ECHO_DOMAIN)
        fetch = browser.fetch(url, headers=sent)
        result = ProxyDetectionResult(sent_headers=sent.items())
        if not fetch.ok or fetch.response is None:
            return result
        try:
            body = json.loads(fetch.response.body)
            observed = [tuple(h) for h in body["observed_headers"]]
        except (ValueError, KeyError):
            return result
        result.observed_headers = list(observed)

        sent_items = sent.items()
        sent_names = {name.lower() for name, _ in sent_items}
        observed_names = {name.lower() for name, _ in observed}
        result.headers_injected = sorted(observed_names - sent_names)
        result.headers_dropped = sorted(sent_names - observed_names)

        if observed != sent_items and not result.headers_injected:
            result.headers_modified = True
            same_multiset = sorted(
                (k.lower(), v) for k, v in observed
            ) == sorted((k.lower(), v) for k, v in sent_items)
            if same_multiset:
                result.modification_style = "parse-and-regenerate"
            else:
                result.modification_style = "value-rewriting"
        elif result.headers_injected:
            result.headers_modified = True
            result.modification_style = "header-injection"
        return result
