"""Traffic interception and manipulation tests (paper Section 5.3.1)."""

from repro.core.manipulation.dns_manipulation import DnsManipulationTest
from repro.core.manipulation.dom_collection import DomCollectionTest
from repro.core.manipulation.proxy_detection import ProxyDetectionTest
from repro.core.manipulation.tls_interception import TlsInterceptionTest

__all__ = [
    "DnsManipulationTest",
    "DomCollectionTest",
    "ProxyDetectionTest",
    "TlsInterceptionTest",
]
