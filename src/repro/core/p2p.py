"""Peer-to-peer egress detection (Section 6.6).

If a VPN routed *other customers'* traffic out through our connection
(Hola-style), the hardware interface would show traffic — most tellingly
DNS queries — that our own test activity never generated.  The analysis
scans the client capture for plaintext DNS queries that are not attributable
to the suite's own probes or to silent tunnel-failure fallback.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.core.results import P2pResult
from repro.net.capture import Capture
from repro.net.packet import innermost_payload

if TYPE_CHECKING:
    from repro.core.harness import TestContext


class P2pDetection:
    """Scan for unexpected plaintext DNS on the hardware interface."""

    name = "p2p-detection"

    def analyse(
        self,
        capture: Capture,
        own_query_names: Iterable[str],
        tunnel_failed_open: bool,
    ) -> P2pResult:
        own = {name.lower().rstrip(".") for name in own_query_names}
        result = P2pResult()
        for entry in capture.entries:
            if entry.packet.payload.kind == "tunnel":
                continue
            payload = innermost_payload(entry.packet)
            if payload is None or payload.kind != "dns":
                continue
            if payload.is_response:  # type: ignore[union-attr]
                continue
            qname = payload.qname.lower().rstrip(".")  # type: ignore[union-attr]
            if qname in own:
                continue
            if tunnel_failed_open:
                # Attributable to silent tunnel failure, not P2P relaying.
                continue
            result.unexpected_plaintext_queries.append(qname)
        return result

    def run(self, context: "TestContext") -> P2pResult:
        client = context.client
        physical = client.primary_interface()
        assert physical is not None
        failed_open = False
        if context.vpn_client is not None and context.vpn_client.endpoint:
            from repro.vpn.tunnel import TunnelState

            failed_open = (
                context.vpn_client.endpoint.state is TunnelState.FAILED_OPEN
            )
        return self.analyse(
            physical.capture,
            own_query_names=context.issued_query_names,
            tunnel_failed_open=failed_open,
        )
