"""Virtual-location and co-location inference (Section 6.4.2, Figure 9).

Two complementary detectors operate on the per-vantage-point RTT vectors
collected by the ping/traceroute test:

1. **Light-speed violation** — every probe traverses client→VP→anchor, so
   the observed RTT can never be below the pure propagation time from the
   VP's *claimed* location to the anchor.  An endpoint whose observed RTT to
   some well-located anchor undercuts that physical bound cannot be where it
   claims (this is how the paper outs Avira's 'US' endpoint answering
   German anchors in under 9 ms).

2. **RTT-vector correlation** — two endpoints of the same provider whose
   per-anchor RTTs differ by a near-constant offset (tiny spread) sit in the
   same facility regardless of what they claim; clustering by this
   similarity reproduces Figure 9's overlapping series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.net.geo import GeoPoint
from repro.net.latency import LatencyModel

# Conservative physical floor: straight-line great-circle at full fibre
# speed, no stretch, no processing — anything faster is impossible.
_FIBRE_KM_PER_MS = 299.79 * 0.66


@dataclass
class VantagePointEvidence:
    """The analysis inputs for one vantage point."""

    provider: str
    hostname: str
    claimed_country: str
    claimed_location: GeoPoint
    rtt_vector: dict[str, float]  # anchor address -> RTT ms (through tunnel)
    anchor_locations: dict[str, GeoPoint]
    # The client->VP leg over the physical path; subtracting it from the
    # through-tunnel RTTs isolates the VP->anchor leg.
    tunnel_base_rtt_ms: Optional[float] = None

    def adjusted_rtt(self, anchor: str) -> Optional[float]:
        rtt = self.rtt_vector.get(anchor)
        if rtt is None:
            return None
        if self.tunnel_base_rtt_ms is None:
            return rtt
        return max(0.0, rtt - self.tunnel_base_rtt_ms)


@dataclass
class LightSpeedViolation:
    hostname: str
    anchor: str
    observed_rtt_ms: float
    physical_floor_ms: float


@dataclass
class ColocationReport:
    """Per-provider verdicts."""

    provider: str
    violations: list[LightSpeedViolation] = field(default_factory=list)
    clusters: list[list[str]] = field(default_factory=list)  # hostnames
    claimed_country_of: dict[str, str] = field(default_factory=dict)

    @property
    def suspect_hostnames(self) -> set[str]:
        """Vantage points with direct light-speed evidence."""
        return {v.hostname for v in self.violations}

    @property
    def cross_country_clusters(self) -> list[list[str]]:
        """Clusters that merge endpoints claiming different countries."""
        suspicious = []
        for cluster in self.clusters:
            countries = {
                self.claimed_country_of.get(hostname, "?")
                for hostname in cluster
            }
            if len(cluster) >= 2 and len(countries) >= 2:
                suspicious.append(cluster)
        return suspicious

    @property
    def misrepresents_locations(self) -> bool:
        return bool(self.violations) or bool(self.cross_country_clusters)


class ColocationAnalysis:
    """Run both detectors over a provider's vantage points."""

    def __init__(
        self,
        violation_margin_ms: float = 0.5,
        cluster_spread_ms: float = 1.5,
        min_violation_anchors: int = 1,
    ) -> None:
        self.violation_margin_ms = violation_margin_ms
        self.cluster_spread_ms = cluster_spread_ms
        self.min_violation_anchors = min_violation_anchors

    # ------------------------------------------------------------------
    def analyse_provider(
        self, evidence: list[VantagePointEvidence]
    ) -> ColocationReport:
        if not evidence:
            return ColocationReport(provider="")
        report = ColocationReport(
            provider=evidence[0].provider,
            claimed_country_of={
                vp.hostname: vp.claimed_country for vp in evidence
            },
        )
        for vp in evidence:
            report.violations.extend(self._light_speed_check(vp))
        report.clusters = self._cluster(evidence)
        return report

    # ------------------------------------------------------------------
    def _light_speed_check(
        self, vp: VantagePointEvidence
    ) -> list[LightSpeedViolation]:
        """Flag endpoints whose VP->anchor RTTs undercut the physical bound.

        The raw through-tunnel RTT includes the client->VP leg, which can
        mask a virtual endpoint (a 'US' machine in Frankfurt still takes
        ~100 ms from a Chicago client). Subtracting the measured tunnel
        base RTT isolates the VP->anchor leg, which a machine at the
        *claimed* location could never produce below the great-circle
        propagation floor.
        """
        violations = []
        for anchor in vp.rtt_vector:
            location = vp.anchor_locations.get(anchor)
            if location is None:
                continue
            adjusted = vp.adjusted_rtt(anchor)
            if adjusted is None:
                continue
            distance = vp.claimed_location.distance_km(location)
            floor = 2.0 * distance / _FIBRE_KM_PER_MS
            if adjusted + self.violation_margin_ms < floor:
                violations.append(
                    LightSpeedViolation(
                        hostname=vp.hostname,
                        anchor=anchor,
                        observed_rtt_ms=adjusted,
                        physical_floor_ms=floor,
                    )
                )
        if len(violations) < self.min_violation_anchors:
            return []
        return violations

    # ------------------------------------------------------------------
    def _cluster(self, evidence: list[VantagePointEvidence]) -> list[list[str]]:
        """Single-linkage clustering on RTT-vector spread."""
        clusters: list[list[VantagePointEvidence]] = []
        for vp in evidence:
            placed = False
            for cluster in clusters:
                if any(self._co_located(vp, member) for member in cluster):
                    cluster.append(vp)
                    placed = True
                    break
            if not placed:
                clusters.append([vp])
        return [
            sorted(member.hostname for member in cluster)
            for cluster in clusters
            if len(cluster) >= 2
        ]

    def _co_located(
        self, a: VantagePointEvidence, b: VantagePointEvidence
    ) -> bool:
        common = sorted(set(a.rtt_vector) & set(b.rtt_vector))
        if len(common) < 5:
            return False
        deltas = [a.rtt_vector[t] - b.rtt_vector[t] for t in common]
        spread = max(deltas) - min(deltas)
        return spread <= self.cluster_spread_ms


def expected_rtt_profile(
    location: GeoPoint,
    anchors: dict[str, GeoPoint],
    model: Optional[LatencyModel] = None,
) -> dict[str, float]:
    """The RTT vector a host at *location* would plausibly produce.

    Used by tests and ablation benches as a reference series.
    """
    model = model or LatencyModel()
    return {
        address: model.rtt_ms(location, anchor_location)
        for address, anchor_location in anchors.items()
    }
