"""Geo-IP database comparison (Section 6.4.1).

Aggregates the per-vantage-point :class:`GeolocationResult` records into the
paper's headline numbers: per database, how many endpoints it had an
estimate for, how often the estimate agreed with the provider's claimed
country, and how the disagreements distribute (about one third of mismatches
resolve to the US in the paper's data).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.results import GeolocationResult


@dataclass
class GeoIpComparisonRow:
    """One database's aggregate agreement numbers."""

    database: str
    compared: int = 0            # vantage points fed to the database
    estimates: int = 0           # how many it had an answer for
    agreements: int = 0
    mismatch_countries: Counter = field(default_factory=Counter)

    @property
    def agreement_rate(self) -> float:
        return self.agreements / self.estimates if self.estimates else 0.0

    @property
    def mismatches(self) -> int:
        return self.estimates - self.agreements

    @property
    def us_mismatch_fraction(self) -> float:
        total = sum(self.mismatch_countries.values())
        return self.mismatch_countries.get("US", 0) / total if total else 0.0


class GeoIpComparison:
    """Aggregate geolocation results across the study."""

    def __init__(self) -> None:
        self._rows: dict[str, GeoIpComparisonRow] = {}
        self.providers_affected: set[str] = set()
        self._providers_seen: set[str] = set()

    def ingest(self, provider: str, result: GeolocationResult) -> None:
        self._providers_seen.add(provider)
        for database, estimate in result.estimates.items():
            row = self._rows.setdefault(
                database, GeoIpComparisonRow(database=database)
            )
            row.compared += 1
            if estimate is None:
                # A database with no estimate for a claimed endpoint is
                # itself an inconsistency between sources (the paper:
                # "All VPNs were affected with some form of inconsistency").
                self.providers_affected.add(provider)
                continue
            row.estimates += 1
            if estimate == result.claimed_country:
                row.agreements += 1
            else:
                row.mismatch_countries[estimate] += 1
                self.providers_affected.add(provider)

    def rows(self) -> list[GeoIpComparisonRow]:
        return sorted(self._rows.values(), key=lambda r: r.database)

    def row(self, database: str) -> GeoIpComparisonRow:
        return self._rows[database]

    @property
    def all_providers_affected(self) -> bool:
        """Paper: 'All VPNs were affected with some form of inconsistency.'"""
        return self._providers_seen == self.providers_affected and bool(
            self._providers_seen
        )

    # ------------------------------------------------------------------
    # Serialisation (part of StudyReport.to_dict round-trip)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "rows": [
                {
                    "database": row.database,
                    "compared": row.compared,
                    "estimates": row.estimates,
                    "agreements": row.agreements,
                    "mismatch_countries": dict(
                        sorted(row.mismatch_countries.items())
                    ),
                }
                for row in self.rows()
            ],
            "providers_affected": sorted(self.providers_affected),
            "providers_seen": sorted(self._providers_seen),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GeoIpComparison":
        comparison = cls()
        for entry in data.get("rows", []):
            comparison._rows[entry["database"]] = GeoIpComparisonRow(
                database=entry["database"],
                compared=entry["compared"],
                estimates=entry["estimates"],
                agreements=entry["agreements"],
                mismatch_countries=Counter(
                    entry.get("mismatch_countries", {})
                ),
            )
        comparison.providers_affected = set(
            data.get("providers_affected", [])
        )
        comparison._providers_seen = set(data.get("providers_seen", []))
        return comparison
