"""Shared server infrastructure analysis (Section 6.3, Table 5).

From the set of (provider, endpoint address) pairs the study observed:

- exact addresses served to more than one provider (Boxpn/Anonine's four
  shared machines);
- /24 blocks containing endpoints of multiple providers, and the Table 5
  view of blocks shared by three or more;
- per-provider ASN counts and the distinct-IP / distinct-CIDR totals the
  paper reports (767 analysed → 748 IPs in 529 CIDRs).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.net.addresses import IPv4Address, IPv4Network, parse_address


@dataclass(frozen=True)
class EndpointRecord:
    provider: str
    address: str
    block: str    # enclosing /24 (or allocation block)
    asn: int


@dataclass
class SharedBlockRow:
    """One Table 5 row."""

    block: str
    asn: int
    providers: tuple[str, ...]

    @property
    def provider_count(self) -> int:
        return len(self.providers)


class SharedInfraAnalysis:
    """Cross-provider address-space overlap."""

    def __init__(self) -> None:
        self._records: list[EndpointRecord] = []

    def ingest(self, provider: str, address: str, block: str, asn: int) -> None:
        self._records.append(
            EndpointRecord(provider=provider, address=address, block=block,
                           asn=asn)
        )

    # ------------------------------------------------------------------
    # Totals (Section 6.3 headline numbers)
    # ------------------------------------------------------------------
    @property
    def vantage_points_analysed(self) -> int:
        return len(self._records)

    @property
    def distinct_addresses(self) -> int:
        return len({r.address for r in self._records})

    @property
    def distinct_blocks(self) -> int:
        return len({r.block for r in self._records})

    def asn_count_by_provider(self) -> dict[str, int]:
        asns: dict[str, set[int]] = defaultdict(set)
        for record in self._records:
            asns[record.provider].add(record.asn)
        return {provider: len(values) for provider, values in asns.items()}

    # ------------------------------------------------------------------
    # Sharing
    # ------------------------------------------------------------------
    def shared_exact_addresses(self) -> dict[str, set[str]]:
        """address -> providers, for addresses used by >1 provider."""
        owners: dict[str, set[str]] = defaultdict(set)
        for record in self._records:
            owners[record.address].add(record.provider)
        return {
            address: providers
            for address, providers in owners.items()
            if len(providers) > 1
        }

    def shared_blocks(self, min_providers: int = 2) -> list[SharedBlockRow]:
        """Blocks with endpoints from >= min_providers providers."""
        owners: dict[str, set[str]] = defaultdict(set)
        asn_of: dict[str, int] = {}
        for record in self._records:
            owners[record.block].add(record.provider)
            asn_of[record.block] = record.asn
        rows = [
            SharedBlockRow(
                block=block,
                asn=asn_of[block],
                providers=tuple(sorted(providers)),
            )
            for block, providers in owners.items()
            if len(providers) >= min_providers
        ]
        return sorted(rows, key=lambda r: (-r.provider_count, r.block))

    def table5(self) -> list[SharedBlockRow]:
        """Blocks shared by at least three providers (the paper's Table 5)."""
        return self.shared_blocks(min_providers=3)

    def providers_sharing_blocks(self) -> set[str]:
        """Providers with at least one endpoint in a multi-provider block.

        The paper counts 40 such services.
        """
        shared = set()
        for row in self.shared_blocks(min_providers=2):
            shared.update(row.providers)
        return shared

    def shared_blocks_between(
        self, provider_a: str, provider_b: str
    ) -> list[str]:
        blocks_a = {r.block for r in self._records if r.provider == provider_a}
        blocks_b = {r.block for r in self._records if r.provider == provider_b}
        return sorted(blocks_a & blocks_b)

    # ------------------------------------------------------------------
    # Serialisation (part of StudyReport.to_dict round-trip)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "records": [
                {
                    "provider": r.provider,
                    "address": r.address,
                    "block": r.block,
                    "asn": r.asn,
                }
                for r in self._records
            ]
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SharedInfraAnalysis":
        analysis = cls()
        analysis._records = [
            EndpointRecord(**entry) for entry in data.get("records", [])
        ]
        return analysis

    def membership_in(self, prefixes: list[str]) -> dict[str, set[str]]:
        """prefix -> providers with an endpoint inside it.

        Used to check the specific Table 5 prefixes, which are wider than
        the /24 allocation granularity.
        """
        parsed = {prefix: IPv4Network.parse(prefix) for prefix in prefixes}
        result: dict[str, set[str]] = {prefix: set() for prefix in prefixes}
        for record in self._records:
            address = parse_address(record.address)
            if not isinstance(address, IPv4Address):
                continue
            for prefix, network in parsed.items():
                if address in network:
                    result[prefix].add(record.provider)
        return result
