"""URL-redirection classification (Section 6.1.1, Table 4).

A page load is a *suspicious redirect* when one or more HTTP redirects lead
to a host unrelated to the requested one (different registered domain, after
allowing same-label cross-suffix pairs).  Grouping the suspicious redirects
by destination reproduces Table 4: every destination in the paper's data is
a national block page, reached only from endpoints in the censoring country.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from repro.core.results import DomCollectionResult
from repro.web.url import Url, urls_related


@dataclass(frozen=True)
class SuspiciousRedirect:
    """One cross-domain redirect observation."""

    provider: str
    vantage_country: str
    requested_url: str
    destination_origin: str


@dataclass
class RedirectRow:
    """One Table 4 row: a destination and the VPNs that hit it."""

    destination: str
    providers: set[str] = field(default_factory=set)
    countries: set[str] = field(default_factory=set)

    @property
    def vpn_count(self) -> int:
        return len(self.providers)


class RedirectAnalysis:
    """Aggregate suspicious redirects across the whole study."""

    def __init__(self) -> None:
        self.observations: list[SuspiciousRedirect] = []

    def ingest(
        self,
        provider: str,
        vantage_country: str,
        dom_result: DomCollectionResult,
    ) -> None:
        for page in dom_result.pages:
            if len(page.redirect_chain) < 2:
                continue
            requested = page.redirect_chain[0]
            final = page.redirect_chain[-1]
            try:
                related = urls_related(requested, final)
            except ValueError:
                continue
            if related:
                continue
            self.observations.append(
                SuspiciousRedirect(
                    provider=provider,
                    vantage_country=vantage_country,
                    requested_url=requested,
                    destination_origin=Url.parse(final).origin,
                )
            )

    def table(self) -> list[RedirectRow]:
        """Table 4: destinations with provider counts, most-hit first."""
        rows: dict[str, RedirectRow] = {}
        for obs in self.observations:
            row = rows.setdefault(
                obs.destination_origin, RedirectRow(destination=obs.destination_origin)
            )
            row.providers.add(obs.provider)
            row.countries.add(obs.vantage_country)
        return sorted(
            rows.values(), key=lambda r: (-r.vpn_count, r.destination)
        )

    def providers_with_redirects(self) -> set[str]:
        return {obs.provider for obs in self.observations}

    # ------------------------------------------------------------------
    # Serialisation (part of StudyReport.to_dict round-trip)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "observations": [
                {
                    "provider": obs.provider,
                    "vantage_country": obs.vantage_country,
                    "requested_url": obs.requested_url,
                    "destination_origin": obs.destination_origin,
                }
                for obs in self.observations
            ]
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RedirectAnalysis":
        analysis = cls()
        analysis.observations = [
            SuspiciousRedirect(**entry)
            for entry in data.get("observations", [])
        ]
        return analysis
