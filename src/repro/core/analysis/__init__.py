"""Study-level analyses (paper Section 6)."""

from repro.core.analysis.colocation import (
    ColocationAnalysis,
    ColocationReport,
    VantagePointEvidence,
)
from repro.core.analysis.geoip_compare import GeoIpComparison, GeoIpComparisonRow
from repro.core.analysis.redirects import RedirectAnalysis, RedirectRow
from repro.core.analysis.shared_infra import SharedInfraAnalysis, SharedBlockRow

__all__ = [
    "ColocationAnalysis",
    "ColocationReport",
    "VantagePointEvidence",
    "GeoIpComparison",
    "GeoIpComparisonRow",
    "RedirectAnalysis",
    "RedirectRow",
    "SharedInfraAnalysis",
    "SharedBlockRow",
]
