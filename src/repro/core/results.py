"""Typed result records for every test in the suite.

Each test returns one frozen-ish dataclass; a vantage point's results are
bundled into :class:`VantagePointResults`, serialisable to JSON for the
study archive (the paper logged per-experiment results plus traces).
"""

from __future__ import annotations

import dataclasses
import json
import types
import typing
from dataclasses import dataclass, field
from typing import Any, Optional

# Real (not TYPE_CHECKING) import: _hydrate resolves field annotations at
# runtime via typing.get_type_hints, so EvidenceChain must exist in this
# module's namespace.  The dependency is acyclic — obs.evidence imports
# nothing from repro.core.
from repro.obs.evidence import EvidenceChain


def _evidence_field() -> Any:
    """An attached-evidence slot, excluded from the study archive.

    ``metadata={"archive": False}`` makes ``_jsonable`` skip the field, so
    archived per-vantage-point JSON (and its golden fingerprint) is
    byte-identical whether or not a trace — and therefore evidence — was
    collected.  Evidence instead travels via ``ProviderReport.to_dict``.
    ``compare=False`` keeps result equality about the measurements.
    """
    return field(
        default=None, compare=False, repr=False, metadata={"archive": False}
    )


@dataclass
class DnsComparisonEntry:
    """One hostname's answers from the VPN path vs the reference path."""

    hostname: str
    vpn_answers: tuple[str, ...]
    reference_answers: tuple[str, ...]
    suspicious: bool
    whois_note: str = ""


@dataclass
class DnsManipulationResult:
    """Section 5.3.1, DNS manipulation."""

    entries: list[DnsComparisonEntry] = field(default_factory=list)
    evidence: Optional[EvidenceChain] = _evidence_field()

    @property
    def manipulated(self) -> bool:
        return any(e.suspicious for e in self.entries)

    @property
    def suspicious_hostnames(self) -> list[str]:
        return [e.hostname for e in self.entries if e.suspicious]


@dataclass
class PageObservation:
    """One site's load through the VPN, diffed against ground truth."""

    url: str
    ok: bool
    status: Optional[int]
    redirect_chain: list[str]
    injected_elements: list[str]
    unexpected_resources: list[str]
    error: str = ""


@dataclass
class DomCollectionResult:
    """Section 5.3.1, DOM and request collection."""

    pages: list[PageObservation] = field(default_factory=list)
    evidence: Optional[EvidenceChain] = _evidence_field()

    @property
    def injection_detected(self) -> bool:
        return any(p.injected_elements for p in self.pages)

    @property
    def injected_pages(self) -> list[PageObservation]:
        return [p for p in self.pages if p.injected_elements]

    @property
    def redirected_pages(self) -> list[PageObservation]:
        return [p for p in self.pages if len(p.redirect_chain) > 1]


@dataclass
class TlsObservation:
    """One host's TLS probe + HTTP-upgrade walk."""

    hostname: str
    handshake_ok: bool
    certificate_fingerprint: str
    matches_ground_truth: Optional[bool]
    chain_valid: Optional[bool]
    validation_reason: str
    http_final_url: str = ""
    http_status: Optional[int] = None
    downgraded: bool = False
    blocked_403: bool = False


@dataclass
class TlsInterceptionResult:
    """Section 5.3.1, TLS interception and downgrade detection."""

    observations: list[TlsObservation] = field(default_factory=list)
    evidence: Optional[EvidenceChain] = _evidence_field()

    @property
    def interception_detected(self) -> bool:
        return any(
            o.matches_ground_truth is False for o in self.observations
        )

    @property
    def downgrade_detected(self) -> bool:
        return any(o.downgraded for o in self.observations)

    @property
    def vpn_blocked_hosts(self) -> list[str]:
        return [o.hostname for o in self.observations if o.blocked_403]


@dataclass
class ProxyDetectionResult:
    """Section 6.2.1, header-based transparent-proxy detection."""

    sent_headers: list[tuple[str, str]] = field(default_factory=list)
    observed_headers: list[tuple[str, str]] = field(default_factory=list)
    headers_modified: bool = False
    headers_injected: list[str] = field(default_factory=list)
    headers_dropped: list[str] = field(default_factory=list)
    modification_style: str = ""  # e.g. "parse-and-regenerate"
    evidence: Optional[EvidenceChain] = _evidence_field()

    @property
    def proxy_detected(self) -> bool:
        return self.headers_modified or bool(self.headers_injected)


@dataclass
class DnsOriginResult:
    """Section 5.3.2, recursive DNS origins."""

    tag: str
    probe_hostname: str
    resolver_sources: list[str] = field(default_factory=list)
    resolved: bool = False

    @property
    def egress_resolvers(self) -> list[str]:
        return sorted(set(self.resolver_sources))


@dataclass
class PingMeasurement:
    """RTTs from this vantage point to one reference target."""

    target: str
    target_name: str
    rtt_ms: Optional[float]
    target_location_known: bool = True


@dataclass
class TracerouteMeasurement:
    target: str
    hops: list[tuple[int, Optional[str], Optional[float]]] = field(
        default_factory=list
    )
    reached: bool = False


@dataclass
class PingTracerouteResult:
    """Section 5.3.2, ping and traceroute collection."""

    pings: list[PingMeasurement] = field(default_factory=list)
    traceroutes: list[TracerouteMeasurement] = field(default_factory=list)
    # RTT from the client to the vantage point itself over the physical
    # path (the pinned /32 route). Subtracting it from through-tunnel RTTs
    # isolates the VP->target leg — the paper's '<9 ms to German hosts'
    # style evidence (Section 6.4.2).
    tunnel_base_rtt_ms: Optional[float] = None

    def rtt_vector(self) -> dict[str, float]:
        """target -> RTT for reachable targets (the Figure 9 raw series)."""
        return {
            p.target: p.rtt_ms for p in self.pings if p.rtt_ms is not None
        }


@dataclass
class GeolocationResult:
    """Section 5.3.2, geolocation via the location API (+ free databases)."""

    egress_address: str
    claimed_country: str
    estimates: dict[str, Optional[str]] = field(default_factory=dict)

    def agreement(self, database: str) -> Optional[bool]:
        estimate = self.estimates.get(database)
        if estimate is None:
            return None
        return estimate == self.claimed_country


@dataclass
class DnsLeakageResult:
    """Section 5.3.3, DNS leakage."""

    queries_issued: int = 0
    leaked_queries: list[str] = field(default_factory=list)
    leaked_servers: list[str] = field(default_factory=list)
    evidence: Optional[EvidenceChain] = _evidence_field()

    @property
    def leaked(self) -> bool:
        return bool(self.leaked_queries)


@dataclass
class Ipv6LeakageResult:
    """Section 5.3.3, IPv6 leakage."""

    attempts: int = 0
    leaked_destinations: list[str] = field(default_factory=list)
    evidence: Optional[EvidenceChain] = _evidence_field()

    @property
    def leaked(self) -> bool:
        return bool(self.leaked_destinations)


@dataclass
class WebRtcSummary:
    """Condensed WebRTC audit outcome stored with the vantage point."""

    leaked: bool = False
    exposed_local_addresses: list[str] = field(default_factory=list)
    reflexive_address: str = ""
    reflexive_is_vpn_egress: bool = False
    evidence: Optional[EvidenceChain] = _evidence_field()


@dataclass
class TunnelFailureResult:
    """Section 5.3.3, recovery from tunnel failure."""

    attempts: int = 0
    reachable_during_failure: int = 0
    first_leak_attempt: Optional[int] = None
    evidence: Optional[EvidenceChain] = _evidence_field()

    @property
    def fails_open(self) -> bool:
        return self.reachable_during_failure > 0


@dataclass
class MetadataSnapshot:
    """Section 5.3.4 general configuration collection."""

    interfaces: list[dict[str, Any]] = field(default_factory=list)
    routes: list[str] = field(default_factory=list)
    dns_servers: list[str] = field(default_factory=list)
    firewall: list[str] = field(default_factory=list)
    host_route_pings: dict[str, Optional[float]] = field(default_factory=dict)


@dataclass
class P2pResult:
    """Section 6.6, unexpected-DNS P2P detection."""

    unexpected_plaintext_queries: list[str] = field(default_factory=list)

    @property
    def p2p_suspected(self) -> bool:
        return bool(self.unexpected_plaintext_queries)


@dataclass
class VantagePointResults:
    """Everything the suite measured at one vantage point."""

    provider: str
    hostname: str
    egress_address: str
    claimed_country: str
    connected: bool = True
    dns_manipulation: Optional[DnsManipulationResult] = None
    dom_collection: Optional[DomCollectionResult] = None
    tls: Optional[TlsInterceptionResult] = None
    proxy: Optional[ProxyDetectionResult] = None
    dns_origin: Optional[DnsOriginResult] = None
    ping_traceroute: Optional[PingTracerouteResult] = None
    geolocation: Optional[GeolocationResult] = None
    dns_leakage: Optional[DnsLeakageResult] = None
    ipv6_leakage: Optional[Ipv6LeakageResult] = None
    webrtc: Optional[WebRtcSummary] = None
    tunnel_failure: Optional[TunnelFailureResult] = None
    metadata: Optional[MetadataSnapshot] = None
    p2p: Optional[P2pResult] = None

    def to_json(self) -> str:
        return json.dumps(_jsonable(self), indent=2, sort_keys=True)

    # ------------------------------------------------------------------
    # Attached evidence (never archived; rides in ProviderReport.to_dict)
    # ------------------------------------------------------------------
    def evidence_chains(self) -> dict[str, EvidenceChain]:
        """test-field name -> the chain attached to that result, if any."""
        chains: dict[str, EvidenceChain] = {}
        for spec in dataclasses.fields(self):
            result = getattr(self, spec.name)
            chain = getattr(result, "evidence", None)
            if chain is not None:
                chains[spec.name] = chain
        return chains

    def attach_evidence(self, chains: dict[str, EvidenceChain]) -> None:
        """Re-attach chains by test-field name (inverse of the above)."""
        for name, chain in chains.items():
            result = getattr(self, name, None)
            if result is not None and hasattr(result, "evidence"):
                result.evidence = chain

    @classmethod
    def from_jsonable(cls, data: dict[str, Any]) -> "VantagePointResults":
        return _hydrate(cls, data)

    @classmethod
    def from_json(cls, text: str) -> "VantagePointResults":
        """Inverse of :meth:`to_json`.

        Round-trips exactly: hydrating an archived vantage-point file and
        re-serialising it reproduces the original bytes, which is what lets
        study checkpoints and final archives share one format.
        """
        return cls.from_jsonable(json.loads(text))


def _jsonable(obj: Any) -> Any:
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        # Fields marked archive=False (attached evidence) never reach the
        # archive: its bytes must not depend on whether obs was enabled.
        return {
            f.name: _jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
            if f.metadata.get("archive", True)
        }
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    return obj


def _hydrate(annotation: Any, value: Any) -> Any:
    """Rebuild a typed value from its JSON form, per the field annotation.

    JSON flattens tuples to lists and drops dataclass identity; this walks
    the annotations of the result records to restore both, so hydrated
    results compare equal to the originals (and re-serialise identically).
    """
    if value is None:
        return None
    origin = typing.get_origin(annotation)
    args = typing.get_args(annotation)
    if origin is typing.Union or origin is types.UnionType:  # Optional[T]
        for candidate in args:
            if candidate is type(None):
                continue
            return _hydrate(candidate, value)
        return value
    if dataclasses.is_dataclass(annotation) and isinstance(value, dict):
        hints = typing.get_type_hints(annotation)
        kwargs = {
            f.name: _hydrate(hints[f.name], value[f.name])
            for f in dataclasses.fields(annotation)
            if f.name in value
        }
        return annotation(**kwargs)
    if origin is list:
        item = args[0] if args else Any
        return [_hydrate(item, v) for v in value]
    if origin is tuple:
        if len(args) == 2 and args[1] is Ellipsis:
            return tuple(_hydrate(args[0], v) for v in value)
        if args:
            return tuple(
                _hydrate(a, v) for a, v in zip(args, value)
            )
        return tuple(value)
    if origin is dict:
        value_type = args[1] if len(args) == 2 else Any
        return {k: _hydrate(value_type, v) for k, v in value.items()}
    return value
