"""Recursive DNS origins test (Section 5.3.2).

Resolves a unique tagged hostname under the probe domain whose
authoritative nameserver logs request sources.  The source addresses
that appear in the log reveal which resolver actually performed the
recursion for the VPN session — provider-run, an upstream public resolver,
or (alarmingly) the client's own ISP resolver.

Tags must be unique (the log is matched by tag) but also *deterministic
per vantage point*: they end up in the archived results, and a study run
on four workers must archive byte-identical files to a sequential run.  A
global counter would bake the execution order into the tag, so the tag is
instead a stable hash of (provider, hostname) plus a per-suite repeat
count — the same at any worker count, yet still unique when one suite
audits the same endpoint twice.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.results import DnsOriginResult
from repro.dns.resolver import StubResolver
from repro.runtime.retry import stable_hash

if TYPE_CHECKING:
    from repro.core.harness import TestContext


class DnsOriginTest:
    """Tagged-hostname resolution through the logging nameserver."""

    name = "dns-origin"

    def __init__(self) -> None:
        self._repeat_counts: dict[tuple[str, str], int] = {}

    def run(self, context: "TestContext") -> DnsOriginResult:
        from repro.world import PROBE_DOMAIN

        nameserver = context.world.probe_nameserver
        assert nameserver is not None, "world has no probe nameserver"
        hostname = context.vantage_point.hostname
        key = (context.provider.name, hostname)
        repeat = self._repeat_counts.get(key, 0) + 1
        self._repeat_counts[key] = repeat
        # The hash prefix keeps one tag from being a substring of another
        # (the log is substring-matched); the rest keeps it readable.
        digest = stable_hash(context.provider.name, hostname, repeat)
        tag = (
            f"t{digest:016x}-"
            f"{context.provider_slug}-{context.vantage_point_slug}"
        )
        probe_hostname = f"{tag}.{PROBE_DOMAIN}"
        resolver = StubResolver(context.client)
        response = resolver.resolve(probe_hostname)
        sources = nameserver.sources_for_tag(tag)
        return DnsOriginResult(
            tag=tag,
            probe_hostname=probe_hostname,
            resolver_sources=sources,
            resolved=response.ok,
        )
