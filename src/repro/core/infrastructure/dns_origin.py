"""Recursive DNS origins test (Section 5.3.2).

Resolves a unique timestamped-and-tagged hostname under the probe domain
whose authoritative nameserver logs request sources.  The source addresses
that appear in the log reveal which resolver actually performed the
recursion for the VPN session — provider-run, an upstream public resolver,
or (alarmingly) the client's own ISP resolver.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

from repro.core.results import DnsOriginResult
from repro.dns.resolver import StubResolver

if TYPE_CHECKING:
    from repro.core.harness import TestContext

_tag_counter = itertools.count(1)


class DnsOriginTest:
    """Tagged-hostname resolution through the logging nameserver."""

    name = "dns-origin"

    def run(self, context: "TestContext") -> DnsOriginResult:
        from repro.world import PROBE_DOMAIN

        nameserver = context.world.probe_nameserver
        assert nameserver is not None, "world has no probe nameserver"
        tag = (
            f"t{next(_tag_counter):06d}-"
            f"{context.provider_slug}-{context.vantage_point_slug}"
        )
        probe_hostname = f"{tag}.{PROBE_DOMAIN}"
        resolver = StubResolver(context.client)
        response = resolver.resolve(probe_hostname)
        sources = nameserver.sources_for_tag(tag)
        return DnsOriginResult(
            tag=tag,
            probe_hostname=probe_hostname,
            resolver_sources=sources,
            resolved=response.ok,
        )
