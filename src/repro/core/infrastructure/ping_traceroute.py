"""Ping and traceroute collection (Section 5.3.2).

Pings the anycast public resolvers (Google, Quad9) and the five DNS roots,
traceroutes the same, and pings the 50 RIPE-anchor references with known
locations.  The resulting RTT vector is the raw material of the
co-location/virtual-location analysis (Section 6.4.2, Figure 9): because
probes traverse the tunnel, every RTT is (client→VP) + (VP→target), and the
per-target profile fingerprints the vantage point's physical position.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.results import (
    PingMeasurement,
    PingTracerouteResult,
    TracerouteMeasurement,
)

if TYPE_CHECKING:
    from repro.core.harness import TestContext


class PingTracerouteTest:
    """RTT sweep over anchors + resolver/root traceroutes."""

    name = "ping-traceroute"

    def __init__(self, traceroute_targets: int = 3, pings_per_target: int = 1):
        self.traceroute_targets = traceroute_targets
        self.pings_per_target = pings_per_target

    def run(self, context: "TestContext") -> PingTracerouteResult:
        from repro.world import GOOGLE_DNS, QUAD9_DNS, ROOT_SERVERS

        result = PingTracerouteResult()
        internet = context.world.internet
        client = context.client

        # The client->VP leg over the physical path (the VPN client pins a
        # /32 to the server through the hardware interface).
        base_pings = internet.ping(
            client, context.vantage_point.address, count=3
        )
        base_rtts = [p.rtt_ms for p in base_pings if p.rtt_ms is not None]
        result.tunnel_base_rtt_ms = min(base_rtts) if base_rtts else None

        well_known = [
            ("google-dns", GOOGLE_DNS),
            ("quad9", QUAD9_DNS),
        ] + [(name, addr) for name, addr in ROOT_SERVERS.items()]
        for name, address in well_known:
            pings = internet.ping(client, address, count=self.pings_per_target)
            best = min(
                (p.rtt_ms for p in pings if p.rtt_ms is not None),
                default=None,
            )
            result.pings.append(
                PingMeasurement(
                    target=address,
                    target_name=name,
                    rtt_ms=best,
                    target_location_known=False,  # anycast: location is fuzzy
                )
            )

        for anchor in context.world.anchors:
            pings = internet.ping(
                client, anchor.address, count=self.pings_per_target
            )
            best = min(
                (p.rtt_ms for p in pings if p.rtt_ms is not None),
                default=None,
            )
            result.pings.append(
                PingMeasurement(
                    target=anchor.address,
                    target_name=anchor.name,
                    rtt_ms=best,
                )
            )

        for name, address in well_known[: self.traceroute_targets]:
            hops = internet.traceroute(client, address)
            result.traceroutes.append(
                TracerouteMeasurement(
                    target=address,
                    hops=[
                        (h.ttl, str(h.address) if h.address else None, h.rtt_ms)
                        for h in hops
                    ],
                    reached=bool(hops)
                    and hops[-1].address is not None
                    and str(hops[-1].address) == address,
                )
            )
        return result
