"""Infrastructure inference tests (paper Section 5.3.2)."""

from repro.core.infrastructure.dns_origin import DnsOriginTest
from repro.core.infrastructure.geolocation import GeolocationTest
from repro.core.infrastructure.ping_traceroute import PingTracerouteTest

__all__ = ["DnsOriginTest", "GeolocationTest", "PingTracerouteTest"]
