"""Geolocation via the location API (Section 5.3.2).

The paper calls Google's Maps API from inside the tunnel, so Google
geolocates the *egress* address; it then compares that (plus the two free
databases, offline) against the provider's claimed location.  Here the
three database models are queried with the vantage point's egress address,
its true physical country, and the registration country the provider games
for virtual endpoints.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.results import GeolocationResult

if TYPE_CHECKING:
    from repro.core.harness import TestContext


class GeolocationTest:
    """Query all three geo-IP database models for the egress address."""

    name = "geolocation"

    def run(self, context: "TestContext") -> GeolocationResult:
        vantage_point = context.vantage_point
        spec = vantage_point.spec
        result = GeolocationResult(
            egress_address=spec.address,
            claimed_country=spec.claimed_country,
        )
        true_country = vantage_point.physical_location.country
        for database in context.world.geoip_databases:
            estimate = database.locate(
                spec.address,
                true_country=true_country,
                registered_country=spec.registered_country,
            )
            result.estimates[database.name] = estimate.country
        return result
