"""Tunnel-failure recovery test (Section 5.3.3, results Section 6.5).

Artificially severs the tunnel by firewalling all outbound traffic to the
VPN server (everything *except* a fixed set of probe hosts), then repeatedly
attempts to contact those probe hosts over a bounded window.  A safe client
'fails closed': nothing gets through.  A client without an (enabled) kill
switch eventually reverts to the physical route and the probes succeed in
plaintext — the failing behaviour.

As in the paper, the test must guess how long to wait for the client to
react, so it is a *conservative* detector: the attempt budget plays the
role of the paper's three-minute blocking window.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.results import TunnelFailureResult
from repro.net.packet import Packet, RawPayload, TcpSegment

if TYPE_CHECKING:
    from repro.core.harness import TestContext

_BLOCK_COMMENT = "tunnel-failure-test"


class TunnelFailureTest:
    """Firewall the VPN server, then probe through the outage window."""

    name = "tunnel-failure"

    def __init__(self, attempts: int = 12):
        # 12 probes ~ one every 15s of the paper's 3-minute window.
        self.attempts = attempts

    def run(self, context: "TestContext") -> TunnelFailureResult:
        client = context.client
        vpn_client = context.vpn_client
        assert vpn_client is not None and vpn_client.endpoint is not None
        server_address = vpn_client.endpoint.server_address

        # Probe targets: two anchor hosts with plain reachability.
        probes = [a.address for a in context.world.anchors[:2]]

        # Sever the tunnel *upstream* of the client: the simulated ISP drops
        # everything toward the VPN server, beyond the reach of the client's
        # own firewall (a privileged attacker's selective blocking, §6.5).
        internet = context.world.internet
        internet.block_path(client, server_address)

        result = TunnelFailureResult()
        collector = context.evidence("tunnel_failure")
        try:
            for attempt in range(1, self.attempts + 1):
                result.attempts = attempt
                # Stop at the first target that answers, exactly like the
                # original any(): the probe sequence (and thus the trace)
                # must not change with evidence collection.
                leaked: Optional[Packet] = None
                for target in probes:
                    leaked = self._probe(context, target)
                    if leaked is not None:
                        break
                if leaked is not None:
                    result.reachable_during_failure += 1
                    if result.first_leak_attempt is None:
                        result.first_leak_attempt = attempt
                    collector.packet(
                        leaked,
                        note=f"probe reached {leaked.dst} during outage "
                        f"(attempt {attempt})",
                    )
        finally:
            internet.unblock_path(client, server_address)
        result.evidence = collector.chain()
        return result

    def _probe(
        self, context: "TestContext", target: str
    ) -> Optional[Packet]:
        """Send one plaintext probe; returns the packet if it got through."""
        client = context.client
        socket = client.open_socket("tcp")
        try:
            route = client.routing.lookup(target)
            if route is None:
                return None
            interface = client.interfaces.get(route.interface)
            if interface is None or not interface.up:
                return None
            src = interface.address_for_version(4)
            if src is None:
                return None
            probe = Packet(
                src=src,
                dst=_addr(target),
                payload=TcpSegment(
                    src_port=socket.port,
                    dst_port=443,
                    flags="S",
                    payload=RawPayload(label="tunnel-failure-probe", size=0),
                ),
            )
            outcome = client.send(probe)
            return probe if outcome.ok else None
        finally:
            socket.close()


def _addr(text: str):
    from repro.net.addresses import parse_address

    return parse_address(text)

