"""WebRTC address leakage test.

The paper cites Al-Fannah's finding that the WebRTC API leaks a range of
client addresses to visited websites even when a VPN is in use, and states
that the study systematically audits this vulnerability in commercial
services.

Two leak channels, both checked:

- *host-candidate exposure*: local interface addresses (including the
  client's real LAN/IPv6 addresses) handed to page JavaScript — present
  unless the client blocks WebRTC or restricts candidate gathering;
- *server-reflexive mismatch*: the STUN-discovered public address differs
  from the VPN egress, i.e. the binding request escaped the tunnel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.obs.evidence import EvidenceChain
from repro.web.stun import gather_ice_candidates

if TYPE_CHECKING:
    from repro.core.harness import TestContext


@dataclass
class WebRtcLeakageResult:
    """Outcome of the WebRTC candidate audit at one vantage point."""

    candidates: list[tuple[str, str]] = field(default_factory=list)
    exposed_local_addresses: list[str] = field(default_factory=list)
    reflexive_address: str = ""
    reflexive_is_vpn_egress: bool = False
    evidence: Optional[EvidenceChain] = field(
        default=None, compare=False, repr=False
    )

    @property
    def leaked(self) -> bool:
        return bool(self.exposed_local_addresses) or (
            bool(self.reflexive_address) and not self.reflexive_is_vpn_egress
        )


class WebRtcLeakageTest:
    """Gather ICE candidates through the tunnel and classify exposure."""

    name = "webrtc-leakage"

    def run(self, context: "TestContext") -> WebRtcLeakageResult:
        from repro.world import STUN_SERVER_ADDRESS

        client = context.client
        result = WebRtcLeakageResult()
        candidates = gather_ice_candidates(client, STUN_SERVER_ADDRESS)
        result.candidates = [
            (candidate.candidate_type, candidate.address)
            for candidate in candidates
        ]

        physical = client.primary_interface()
        real_addresses = set()
        if physical is not None:
            if physical.ipv4 is not None:
                real_addresses.add(str(physical.ipv4))
            if physical.ipv6 is not None:
                real_addresses.add(str(physical.ipv6))

        egress = str(context.vantage_point.address)
        # WebRTC incrimination is API-level (candidates handed to page
        # JavaScript), not a captured packet — the chain carries notes.
        collector = context.evidence("webrtc_leakage")
        for candidate in candidates:
            if candidate.candidate_type == "host":
                if candidate.address in real_addresses:
                    result.exposed_local_addresses.append(candidate.address)
                    collector.note(
                        f"host candidate exposes real address "
                        f"{candidate.address}"
                    )
            elif candidate.candidate_type == "srflx":
                result.reflexive_address = candidate.address
                result.reflexive_is_vpn_egress = candidate.address == egress
                if not result.reflexive_is_vpn_egress:
                    collector.note(
                        f"srflx candidate {candidate.address} is not the "
                        f"VPN egress {egress}: STUN escaped the tunnel"
                    )
        result.evidence = collector.chain()
        return result
