"""Leakage-based tests (paper Section 5.3.3)."""

from repro.core.leakage.dns_leakage import DnsLeakageTest
from repro.core.leakage.ipv6_leakage import Ipv6LeakageTest
from repro.core.leakage.tunnel_failure import TunnelFailureTest

__all__ = ["DnsLeakageTest", "Ipv6LeakageTest", "TunnelFailureTest"]
