"""DNS leakage test (Section 5.3.3).

Issues a series of predetermined DNS queries to the system's configured
resolver and to public resolvers while the VPN is connected, then scans the
capture on the primary (non-VPN) interface for plaintext DNS packets.  A
properly configured client tunnels everything; a client that never
repointed the system resolver lets queries to the on-link LAN resolver
escape in cleartext — the Table 6 failure for Freedome VPN and WorldVPN.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.results import DnsLeakageResult
from repro.dns.resolver import StubResolver, resolve_via_server
from repro.net.packet import innermost_payload

if TYPE_CHECKING:
    from repro.core.harness import TestContext

PROBE_QUERIES = (
    "leakprobe-alpha.daily-herald-news.com",
    "leakprobe-bravo.globe-wire.com",
    "leakprobe-charlie.wiki-mirror-project.org",
    "leakprobe-delta.micro-blog-central.com",
)


class DnsLeakageTest:
    """Query system + public resolvers, then scan the hardware interface."""

    name = "dns-leakage"

    def run(self, context: "TestContext") -> DnsLeakageResult:
        from repro.world import GOOGLE_DNS, QUAD9_DNS

        client = context.client
        physical = client.primary_interface()
        assert physical is not None
        capture = physical.capture
        marker = len(capture.entries)

        system = StubResolver(client)
        issued = 0
        for qname in PROBE_QUERIES:
            system.resolve(qname)
            issued += 1
        for server in (GOOGLE_DNS, QUAD9_DNS):
            for qname in PROBE_QUERIES[:2]:
                resolve_via_server(client, server, qname)
                issued += 1

        result = DnsLeakageResult(queries_issued=issued)
        # Each leaked capture entry holds the same Packet object the
        # internet delivered, so the collector can link the verdict to the
        # exact packet_send trace records that prove the leak.
        collector = context.evidence("dns_leakage")
        new_entries = capture.entries[marker:]
        for entry in new_entries:
            if entry.direction != "tx":
                continue
            if entry.packet.payload.kind == "tunnel":
                continue  # encrypted inside the VPN: not a leak
            payload = innermost_payload(entry.packet)
            if payload is not None and payload.kind == "dns" and not payload.is_response:  # type: ignore[union-attr]
                result.leaked_queries.append(payload.qname)  # type: ignore[union-attr]
                result.leaked_servers.append(str(entry.packet.dst))
                collector.packet(
                    entry.packet,
                    note=f"plaintext query {payload.qname} "  # type: ignore[union-attr]
                    f"to {entry.packet.dst}",
                )
        result.leaked_servers = sorted(set(result.leaked_servers))
        result.evidence = collector.chain()
        return result
