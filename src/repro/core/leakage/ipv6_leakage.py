"""IPv6 leakage test (Section 5.3.3).

Most VPNs are IPv4-only, so a careful client must block IPv6 on the
physical interface while connected.  The test contacts the dual-stack test
sites directly over IPv6 while capturing on the non-VPN interface; any IPv6
request that reaches the wire outside the tunnel is a leak (Table 6's
twelve offenders).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.results import Ipv6LeakageResult
from repro.net.packet import Packet, RawPayload, TcpSegment

if TYPE_CHECKING:
    from repro.core.harness import TestContext


class Ipv6LeakageTest:
    """Direct-to-AAAA connections with hardware-interface capture."""

    name = "ipv6-leakage"

    def run(self, context: "TestContext") -> Ipv6LeakageResult:
        client = context.client
        physical = client.primary_interface()
        assert physical is not None
        capture = physical.capture
        marker = len(capture.entries)

        # Gather the dual-stack sites' AAAA records from ground truth (the
        # paper hard-codes "several popular websites with IPv6 addresses").
        targets = context.world_ipv6_targets()
        result = Ipv6LeakageResult(attempts=len(targets))
        if physical.ipv6 is None:
            return result  # no v6 connectivity at all: nothing to leak

        for domain, address in targets:
            socket = client.open_socket("tcp")
            try:
                probe = Packet(
                    src=physical.ipv6,
                    dst=_parse(address),
                    payload=TcpSegment(
                        src_port=socket.port,
                        dst_port=80,
                        flags="S",
                        payload=RawPayload(label=f"syn:{domain}", size=0),
                    ),
                )
                client.send(probe)
            finally:
                socket.close()

        collector = context.evidence("ipv6_leakage")
        for entry in capture.entries[marker:]:
            if entry.direction != "tx":
                continue
            if entry.packet.payload.kind == "tunnel":
                continue
            if entry.packet.version == 6:
                result.leaked_destinations.append(str(entry.packet.dst))
                collector.packet(
                    entry.packet,
                    note=f"v6 packet escaped tunnel to {entry.packet.dst}",
                )
        result.leaked_destinations = sorted(set(result.leaked_destinations))
        result.evidence = collector.chain()
        return result


def _parse(address: str):
    from repro.net.addresses import parse_address

    return parse_address(address)
