"""Provider scorecards — the `vpnselection.guide` deliverable.

The paper closes by announcing a public website with per-provider insights.
This module derives that artefact from a study: a privacy/operations
scorecard per provider, computed purely from *measured* results (never the
catalogue's ground truth), and a ranked guide.

Scoring model (0–100, higher is safer):

- start at 100;
- traffic manipulation is disqualifying territory: content injection −40,
  TLS interception −50, transparent proxying −15;
- leakage: tunnel fail-open −20, DNS leak −15, IPv6 leak −10
  (WebRTC host-candidate exposure is universal and therefore informational,
  not scored — a browser problem, not a provider differentiator);
- honesty: misrepresented locations −10;
- services whose clients could not be leak-tested (third-party OpenVPN
  configs) carry an "unaudited leakage" caveat instead of a deduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from repro.core.harness import ProviderReport, StudyReport


@dataclass
class Scorecard:
    """One provider's measured safety profile."""

    provider: str
    subscription: str
    score: int
    deductions: list[tuple[str, int]] = field(default_factory=list)
    caveats: list[str] = field(default_factory=list)

    @property
    def grade(self) -> str:
        if self.score >= 90:
            return "A"
        if self.score >= 75:
            return "B"
        if self.score >= 60:
            return "C"
        if self.score >= 40:
            return "D"
        return "F"

    def describe(self) -> str:
        lines = [
            f"{self.provider} ({self.subscription}): "
            f"{self.score}/100 — grade {self.grade}"
        ]
        for reason, points in self.deductions:
            lines.append(f"  -{points:2d}  {reason}")
        for caveat in self.caveats:
            lines.append(f"   !   {caveat}")
        return "\n".join(lines)


_DEDUCTIONS: tuple[tuple[str, str, int], ...] = (
    # (ProviderReport attribute, human reason, points)
    ("tls_interception_detected", "intercepts TLS connections", 50),
    ("injection_detected", "injects content into pages", 40),
    ("fails_open", "leaks traffic when the tunnel fails", 20),
    ("dns_leak_detected", "leaks DNS queries outside the tunnel", 15),
    ("proxy_detected", "transparently proxies (rewrites) HTTP traffic", 15),
    ("ipv6_leak_detected", "leaks IPv6 traffic outside the tunnel", 10),
    ("misrepresents_locations", "misrepresents vantage-point locations", 10),
)


def score_provider(report: "ProviderReport") -> Scorecard:
    """Compute one provider's scorecard from its measured report."""
    card = Scorecard(
        provider=report.provider,
        subscription=report.subscription,
        score=100,
    )
    for attribute, reason, points in _DEDUCTIONS:
        value = getattr(report, attribute)
        if value:  # fails_open may be None (not applicable)
            card.score -= points
            card.deductions.append((reason, points))
    if report.fails_open is None:
        card.caveats.append(
            "client leakage untested (third-party OpenVPN software)"
        )
    if report.webrtc_leak_detected:
        card.caveats.append(
            "browser WebRTC exposes local addresses (universal; use a "
            "browser-level mitigation)"
        )
    card.score = max(0, card.score)
    return card


@dataclass
class SelectionGuide:
    """The ranked guide built from a full study."""

    scorecards: list[Scorecard] = field(default_factory=list)

    def ranked(self) -> list[Scorecard]:
        return sorted(
            self.scorecards, key=lambda c: (-c.score, c.provider)
        )

    def safest(self, count: int = 10) -> list[Scorecard]:
        return self.ranked()[:count]

    def worst(self, count: int = 10) -> list[Scorecard]:
        return self.ranked()[-count:]

    def score_of(self, provider: str) -> Optional[int]:
        for card in self.scorecards:
            if card.provider == provider:
                return card.score
        return None

    def render(self, count: Optional[int] = None) -> str:
        from repro.reporting.tables import render_table

        rows = [
            [
                card.provider,
                card.subscription,
                card.score,
                card.grade,
                "; ".join(reason for reason, _ in card.deductions) or "—",
            ]
            for card in (
                self.ranked() if count is None else self.ranked()[:count]
            )
        ]
        return render_table(
            ["Provider", "Type", "Score", "Grade", "Findings"],
            rows,
            title="vpnselection.guide — measured provider safety",
        )


def build_selection_guide(study: "StudyReport") -> SelectionGuide:
    """Score every provider in a study."""
    guide = SelectionGuide()
    for report in study.providers.values():
        guide.scorecards.append(score_provider(report))
    return guide
