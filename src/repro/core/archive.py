"""Study archival.

The paper's suite "logs results for each experiment as well as traffic
traces for passive analysis"; this module persists a study the same way:
one JSON file per vantage point under ``<root>/<provider>/``, a per-provider
verdict summary, and a study-level manifest.  Archives round-trip enough
structure to re-derive every aggregate table without re-running tests.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from repro.core.harness import ProviderReport, StudyReport
    from repro.core.results import VantagePointResults

_MANIFEST = "manifest.json"
_VERDICTS = "verdicts.json"


def _slug(name: str) -> str:
    return "".join(
        ch if ch.isalnum() or ch in "-_" else "_" for ch in name.lower()
    )


def write_study_archive(
    study: "StudyReport", root: str | pathlib.Path
) -> pathlib.Path:
    """Persist a study to *root*; returns the archive directory."""
    root = pathlib.Path(root)
    root.mkdir(parents=True, exist_ok=True)
    manifest = {
        "providers": sorted(study.providers),
        "intercepting": sorted(study.providers_intercepting_or_manipulating),
        "failing_open": sorted(study.providers_failing_open),
        "misrepresenting": sorted(study.providers_misrepresenting_locations),
        "geoip": [
            {
                "database": row.database,
                "compared": row.compared,
                "estimates": row.estimates,
                "agreements": row.agreements,
            }
            for row in study.geoip.rows()
        ],
        "redirects": [
            {
                "destination": row.destination,
                "providers": sorted(row.providers),
                "countries": sorted(row.countries),
            }
            for row in study.redirects.table()
        ],
    }
    (root / _MANIFEST).write_text(json.dumps(manifest, indent=2))
    for name, report in study.providers.items():
        write_provider_archive(report, root / _slug(name))
    return root


def write_provider_archive(
    report: "ProviderReport", directory: str | pathlib.Path
) -> pathlib.Path:
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    verdicts = {
        "provider": report.provider,
        "subscription": report.subscription,
        "client_type": report.client_type,
        "injection": report.injection_detected,
        "proxy": report.proxy_detected,
        "tls_interception": report.tls_interception_detected,
        "dns_leak": report.dns_leak_detected,
        "ipv6_leak": report.ipv6_leak_detected,
        "webrtc_leak": report.webrtc_leak_detected,
        "fails_open": report.fails_open,
        "misrepresents_locations": report.misrepresents_locations,
        "full_vantage_points": [r.hostname for r in report.full_results],
        "swept_vantage_points": [r.hostname for r in report.sweep_results],
    }
    (directory / _VERDICTS).write_text(json.dumps(verdicts, indent=2))
    for results in report.full_results + report.sweep_results:
        _write_results_file(results, directory)
    return directory


def _write_results_file(
    results: "VantagePointResults", directory: pathlib.Path
) -> pathlib.Path:
    path = directory / (_slug(results.hostname) + ".json")
    path.write_text(results.to_json())
    return path


def write_unit_result(
    results: "VantagePointResults", root: str | pathlib.Path
) -> pathlib.Path:
    """Persist one vantage point's results under ``<root>/<provider>/``.

    This is the unit of incremental persistence: study checkpoints write
    completed work units through it, and :func:`write_provider_archive`
    writes final archives through it, so both directions share one format
    (``<root>/<provider slug>/<hostname slug>.json``) byte for byte.
    """
    directory = pathlib.Path(root) / _slug(results.provider)
    directory.mkdir(parents=True, exist_ok=True)
    return _write_results_file(results, directory)


def archive_fingerprint(root: str | pathlib.Path) -> str:
    """SHA-256 fingerprint of a study archive, byte-exact.

    For every ``*.json`` under *root* in sorted relative-path order the
    digest absorbs the path bytes, a NUL, the file bytes, a NUL — the
    recipe ``tests/test_determinism.py`` pins against its golden constant.
    It is the identity of a study's *output*: two runs agree on this value
    iff their archives are byte-identical, which is how the serve daemon
    proves a job's HTTP-fetched result equals a one-shot CLI run.
    """
    root = pathlib.Path(root)
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.json")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def read_vantage_point_results(
    path: str | pathlib.Path,
) -> "VantagePointResults":
    """Load one archived vantage-point file back into a typed record."""
    from repro.core.results import VantagePointResults

    return VantagePointResults.from_json(pathlib.Path(path).read_text())


def merge_archives(
    sources: list[str | pathlib.Path], dest: str | pathlib.Path
) -> pathlib.Path:
    """Merge study/checkpoint archive directories into *dest*.

    File-level merge: per-vantage-point results and per-provider verdicts
    are copied (later sources win on conflicts — results are deterministic,
    so conflicting files are normally identical anyway); the study
    manifests' provider lists are unioned, other manifest keys taken from
    the last source that has them.  Lets partial archives — two snapshot
    shards, or a checkpoint plus a finishing run — be combined into one
    readable archive.
    """
    dest = pathlib.Path(dest)
    dest.mkdir(parents=True, exist_ok=True)
    manifest: dict = {}
    providers: set[str] = set()
    for source in sources:
        source = pathlib.Path(source)
        if not source.is_dir():
            raise FileNotFoundError(f"archive directory not found: {source}")
        source_manifest = source / _MANIFEST
        if source_manifest.exists():
            loaded = json.loads(source_manifest.read_text())
            providers.update(loaded.get("providers", ()))
            manifest.update(loaded)
        for path in sorted(source.rglob("*.json")):
            if path == source_manifest:
                continue
            relative = path.relative_to(source)
            target = dest / relative
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_bytes(path.read_bytes())
    if manifest or providers:
        manifest["providers"] = sorted(providers)
        (dest / _MANIFEST).write_text(json.dumps(manifest, indent=2))
    return dest


@dataclass
class ArchivedVerdicts:
    """Per-provider verdicts loaded back from disk."""

    provider: str
    subscription: str
    client_type: str
    injection: bool
    proxy: bool
    tls_interception: bool
    dns_leak: bool
    ipv6_leak: bool
    webrtc_leak: bool
    fails_open: Optional[bool]
    misrepresents_locations: bool
    full_vantage_points: list[str] = field(default_factory=list)
    swept_vantage_points: list[str] = field(default_factory=list)


@dataclass
class ArchivedStudy:
    """A study read back from an archive directory."""

    manifest: dict
    verdicts: dict[str, ArchivedVerdicts] = field(default_factory=dict)

    @property
    def providers(self) -> list[str]:
        return list(self.manifest["providers"])


def read_study_archive(root: str | pathlib.Path) -> ArchivedStudy:
    root = pathlib.Path(root)
    manifest = json.loads((root / _MANIFEST).read_text())
    study = ArchivedStudy(manifest=manifest)
    for name in manifest["providers"]:
        directory = root / _slug(name)
        verdict_file = directory / _VERDICTS
        if not verdict_file.exists():
            continue
        raw = json.loads(verdict_file.read_text())
        study.verdicts[name] = ArchivedVerdicts(**raw)
    return study
