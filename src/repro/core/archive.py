"""Study archival.

The paper's suite "logs results for each experiment as well as traffic
traces for passive analysis"; this module persists a study the same way:
one JSON file per vantage point under ``<root>/<provider>/``, a per-provider
verdict summary, and a study-level manifest.  Archives round-trip enough
structure to re-derive every aggregate table without re-running tests.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Optional, Sequence

if TYPE_CHECKING:
    from repro.core.harness import ProviderReport, StudyReport
    from repro.core.results import VantagePointResults

_MANIFEST = "manifest.json"
_VERDICTS = "verdicts.json"

#: Manifest keys in the exact order :func:`write_study_archive` emits them.
#: Merging preserves this order so a merged manifest is byte-identical to
#: one written monolithically.
_MANIFEST_KEYS = (
    "providers",
    "intercepting",
    "failing_open",
    "misrepresenting",
    "geoip",
    "redirects",
)


def _slug(name: str) -> str:
    return "".join(
        ch if ch.isalnum() or ch in "-_" else "_" for ch in name.lower()
    )


def geoip_row_dicts(study: "StudyReport") -> list[dict]:
    """The manifest's ``geoip`` table (summable across archive shards)."""
    return [
        {
            "database": row.database,
            "compared": row.compared,
            "estimates": row.estimates,
            "agreements": row.agreements,
        }
        for row in study.geoip.rows()
    ]


def redirect_row_dicts(study: "StudyReport") -> list[dict]:
    """The manifest's ``redirects`` table (unionable across shards)."""
    return [
        {
            "destination": row.destination,
            "providers": sorted(row.providers),
            "countries": sorted(row.countries),
        }
        for row in study.redirects.table()
    ]


def build_manifest(
    providers: Iterable[str],
    intercepting: Iterable[str],
    failing_open: Iterable[str],
    misrepresenting: Iterable[str],
    geoip_rows: Sequence[dict],
    redirect_rows: Sequence[dict],
) -> dict:
    """The study manifest dict, keys in canonical order.

    All archive writers — monolithic, streaming, per-shard — and the
    merge path build manifests through here, which is what makes a merge
    of shard manifests byte-identical to the monolithic manifest.
    """
    return {
        "providers": sorted(providers),
        "intercepting": sorted(intercepting),
        "failing_open": sorted(failing_open),
        "misrepresenting": sorted(misrepresenting),
        "geoip": list(geoip_rows),
        "redirects": list(redirect_rows),
    }


def study_manifest(study: "StudyReport") -> dict:
    """The manifest of a fully materialised :class:`StudyReport`."""
    return build_manifest(
        providers=study.providers,
        intercepting=study.providers_intercepting_or_manipulating,
        failing_open=study.providers_failing_open,
        misrepresenting=study.providers_misrepresenting_locations,
        geoip_rows=geoip_row_dicts(study),
        redirect_rows=redirect_row_dicts(study),
    )


def write_study_archive(
    study: "StudyReport", root: str | pathlib.Path
) -> pathlib.Path:
    """Persist a study to *root*; returns the archive directory."""
    root = pathlib.Path(root)
    root.mkdir(parents=True, exist_ok=True)
    (root / _MANIFEST).write_text(
        json.dumps(study_manifest(study), indent=2)
    )
    for name, report in study.providers.items():
        write_provider_archive(report, root / _slug(name))
    return root


def provider_verdicts(report: "ProviderReport") -> dict:
    """The per-provider ``verdicts.json`` payload, keys in archive order."""
    return {
        "provider": report.provider,
        "subscription": report.subscription,
        "client_type": report.client_type,
        "injection": report.injection_detected,
        "proxy": report.proxy_detected,
        "tls_interception": report.tls_interception_detected,
        "dns_leak": report.dns_leak_detected,
        "ipv6_leak": report.ipv6_leak_detected,
        "webrtc_leak": report.webrtc_leak_detected,
        "fails_open": report.fails_open,
        "misrepresents_locations": report.misrepresents_locations,
        "full_vantage_points": [r.hostname for r in report.full_results],
        "swept_vantage_points": [r.hostname for r in report.sweep_results],
    }


def write_provider_verdicts(
    report: "ProviderReport", directory: str | pathlib.Path
) -> dict:
    """Write one provider's ``verdicts.json``; returns the payload dict."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    verdicts = provider_verdicts(report)
    (directory / _VERDICTS).write_text(json.dumps(verdicts, indent=2))
    return verdicts


def write_provider_archive(
    report: "ProviderReport", directory: str | pathlib.Path
) -> pathlib.Path:
    directory = pathlib.Path(directory)
    write_provider_verdicts(report, directory)
    for results in report.full_results + report.sweep_results:
        _write_results_file(results, directory)
    return directory


def _write_results_file(
    results: "VantagePointResults", directory: pathlib.Path
) -> pathlib.Path:
    path = directory / (_slug(results.hostname) + ".json")
    path.write_text(results.to_json())
    return path


def write_unit_result(
    results: "VantagePointResults", root: str | pathlib.Path
) -> pathlib.Path:
    """Persist one vantage point's results under ``<root>/<provider>/``.

    This is the unit of incremental persistence: study checkpoints write
    completed work units through it, and :func:`write_provider_archive`
    writes final archives through it, so both directions share one format
    (``<root>/<provider slug>/<hostname slug>.json``) byte for byte.
    """
    directory = pathlib.Path(root) / _slug(results.provider)
    directory.mkdir(parents=True, exist_ok=True)
    return _write_results_file(results, directory)


def archive_fingerprint(root: str | pathlib.Path) -> str:
    """SHA-256 fingerprint of a study archive, byte-exact.

    For every ``*.json`` under *root* in sorted relative-path order the
    digest absorbs the path bytes, a NUL, the file bytes, a NUL — the
    recipe ``tests/test_determinism.py`` pins against its golden constant.
    It is the identity of a study's *output*: two runs agree on this value
    iff their archives are byte-identical, which is how the serve daemon
    proves a job's HTTP-fetched result equals a one-shot CLI run.
    """
    root = pathlib.Path(root)
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.json")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def read_vantage_point_results(
    path: str | pathlib.Path,
) -> "VantagePointResults":
    """Load one archived vantage-point file back into a typed record."""
    from repro.core.results import VantagePointResults

    return VantagePointResults.from_json(pathlib.Path(path).read_text())


class StreamingArchiveWriter:
    """Append-only study archive writer.

    A monolithic :func:`write_study_archive` needs the whole
    :class:`StudyReport` in memory; this writer instead accepts one
    vantage point's results at a time (``append_result``, as each unit
    finishes), one provider's verdicts at a time (``write_verdicts``, as
    each provider is assembled and dropped), and the manifest last
    (``finalize``).  Every file goes through the same byte-exact writers
    the monolithic path uses, so a finalized streamed archive is
    indistinguishable — same :func:`archive_fingerprint` — from one
    written all at once.

    Crash behaviour: files are written whole, results before the unit is
    checkpointed, so an interrupted study leaves a readable prefix that a
    resume (``repro.runtime.checkpoint``) completes rather than restarts.
    """

    def __init__(self, root: str | pathlib.Path) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.finalized = False

    def append_result(
        self, results: "VantagePointResults"
    ) -> pathlib.Path:
        """Persist one vantage point's results as they complete."""
        return write_unit_result(results, self.root)

    def write_verdicts(self, report: "ProviderReport") -> dict:
        """Persist one assembled provider's verdict summary."""
        return write_provider_verdicts(
            report, self.root / _slug(report.provider)
        )

    def finalize(self, manifest: dict) -> pathlib.Path:
        """Write the study manifest, completing the archive."""
        path = self.root / _MANIFEST
        path.write_text(json.dumps(manifest, indent=2))
        self.finalized = True
        return path


def iter_archive_results(
    root: str | pathlib.Path,
    provider: Optional[str] = None,
    strict: bool = False,
    metrics=None,
) -> Iterator["VantagePointResults"]:
    """Iterate archived vantage-point results without loading them all.

    Walks ``<root>/<provider slug>/*.json`` in sorted path order, skipping
    manifests and verdict summaries.  Truncated or corrupt files (e.g. the
    in-flight unit of a crashed streaming run) are skipped unless
    *strict*, so the readable prefix of a partial archive is always
    recoverable.  *metrics* (a
    :class:`~repro.obs.metrics.MetricsRegistry`) counts each skipped file
    as ``archive.torn_results`` — torn tails become a visible counter at
    ``/metrics`` instead of silent absence.
    """
    root = pathlib.Path(root)
    directories = (
        [root / _slug(provider)] if provider is not None
        else sorted(p for p in root.iterdir() if p.is_dir())
    )
    for directory in directories:
        if not directory.is_dir():
            continue
        for path in sorted(directory.glob("*.json")):
            if path.name == _VERDICTS:
                continue
            try:
                yield read_vantage_point_results(path)
            except (ValueError, KeyError, TypeError):
                if strict:
                    raise
                if metrics is not None:
                    metrics.inc("archive.torn_results")


def _merge_manifests(manifests: list[dict]) -> dict:
    """Structurally merge study manifests, in canonical key order.

    Provider-name sets union; the ``geoip`` table sums per database; the
    ``redirects`` table unions providers/countries per destination and
    re-sorts by the monolithic path's ``(-provider count, destination)``
    rule.  Because every aggregate is re-derived from its parts rather
    than last-source-wins, the merge is order-independent and — when the
    sources partition one study — byte-identical to the manifest the
    unsharded run writes.  Non-canonical keys are carried over last-wins,
    after the canonical ones.
    """
    merged: dict = {}
    name_sets: dict[str, set] = {
        key: set()
        for key in (
            "providers", "intercepting", "failing_open", "misrepresenting"
        )
    }
    geoip: dict[str, dict] = {}
    redirects: dict[str, dict] = {}
    extras: dict = {}
    for manifest in manifests:
        for key, bucket in name_sets.items():
            bucket.update(manifest.get(key, ()))
        for row in manifest.get("geoip", ()):
            agg = geoip.setdefault(
                row["database"],
                {
                    "database": row["database"],
                    "compared": 0,
                    "estimates": 0,
                    "agreements": 0,
                },
            )
            for counter in ("compared", "estimates", "agreements"):
                agg[counter] += row[counter]
        for row in manifest.get("redirects", ()):
            agg = redirects.setdefault(
                row["destination"],
                {
                    "destination": row["destination"],
                    "providers": set(),
                    "countries": set(),
                },
            )
            agg["providers"].update(row.get("providers", ()))
            agg["countries"].update(row.get("countries", ()))
        for key, value in manifest.items():
            if key not in _MANIFEST_KEYS:
                extras[key] = value
    present = set()
    for manifest in manifests:
        present.update(manifest)
    for key in _MANIFEST_KEYS:
        if key not in present:
            continue
        if key in name_sets:
            merged[key] = sorted(name_sets[key])
        elif key == "geoip":
            merged[key] = sorted(
                geoip.values(), key=lambda row: row["database"]
            )
        else:
            merged[key] = [
                {
                    "destination": row["destination"],
                    "providers": sorted(row["providers"]),
                    "countries": sorted(row["countries"]),
                }
                for row in sorted(
                    redirects.values(),
                    key=lambda row: (
                        -len(row["providers"]), row["destination"]
                    ),
                )
            ]
    merged.update(extras)
    return merged


def merge_archives(
    sources: list[str | pathlib.Path], dest: str | pathlib.Path
) -> pathlib.Path:
    """Merge study/checkpoint archive directories into *dest*.

    Per-vantage-point results and per-provider verdicts are copied (later
    sources win on conflicts — results are deterministic, so conflicting
    files are normally identical anyway); manifests merge *structurally*
    via :func:`_merge_manifests`, so merging the per-shard archives of a
    sharded run reproduces the monolithic manifest byte for byte, in any
    shard order.  Lets partial archives — shard outputs, two snapshot
    halves, or a checkpoint plus a finishing run — combine into one
    readable archive.
    """
    dest = pathlib.Path(dest)
    dest.mkdir(parents=True, exist_ok=True)
    manifests: list[dict] = []
    for source in sources:
        source = pathlib.Path(source)
        if not source.is_dir():
            raise FileNotFoundError(f"archive directory not found: {source}")
        source_manifest = source / _MANIFEST
        if source_manifest.exists():
            manifests.append(json.loads(source_manifest.read_text()))
        for path in sorted(source.rglob("*.json")):
            if path == source_manifest:
                continue
            relative = path.relative_to(source)
            target = dest / relative
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_bytes(path.read_bytes())
    if manifests:
        (dest / _MANIFEST).write_text(
            json.dumps(_merge_manifests(manifests), indent=2)
        )
    return dest


@dataclass
class ArchivedVerdicts:
    """Per-provider verdicts loaded back from disk."""

    provider: str
    subscription: str
    client_type: str
    injection: bool
    proxy: bool
    tls_interception: bool
    dns_leak: bool
    ipv6_leak: bool
    webrtc_leak: bool
    fails_open: Optional[bool]
    misrepresents_locations: bool
    full_vantage_points: list[str] = field(default_factory=list)
    swept_vantage_points: list[str] = field(default_factory=list)


@dataclass
class ArchivedStudy:
    """A study read back from an archive directory."""

    manifest: dict
    verdicts: dict[str, ArchivedVerdicts] = field(default_factory=dict)

    @property
    def providers(self) -> list[str]:
        return list(self.manifest["providers"])


def read_study_archive(root: str | pathlib.Path) -> ArchivedStudy:
    root = pathlib.Path(root)
    manifest = json.loads((root / _MANIFEST).read_text())
    study = ArchivedStudy(manifest=manifest)
    for name in manifest["providers"]:
        directory = root / _slug(name)
        verdict_file = directory / _VERDICTS
        if not verdict_file.exists():
            continue
        raw = json.loads(verdict_file.read_text())
        study.verdicts[name] = ArchivedVerdicts(**raw)
    return study
