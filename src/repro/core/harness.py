"""The test harness.

:class:`TestSuite` orchestrates the paper's methodology (Section 5.2):

- pick ~5 vantage points per provider for the full 45-minute suite,
  maximising geographic diversity (manual testing in the paper);
- run the complete battery at each: metadata, manipulation tests,
  infrastructure tests, leakage tests (leakage only for providers shipping
  their own clients, as in Section 6.5), the P2P scan, and tunnel failure
  last (it intentionally wrecks the tunnel);
- sweep *all* vantage points with the lightweight infrastructure probes
  (ping vectors + geolocation) — the paper's automated collection that let
  it analyse 148 HideMyAss endpoints;
- aggregate everything into a :class:`StudyReport` with the Section 6
  analyses attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.core.analysis.colocation import (
    ColocationAnalysis,
    ColocationReport,
    VantagePointEvidence,
)
from repro.core.analysis.geoip_compare import GeoIpComparison
from repro.core.analysis.redirects import RedirectAnalysis
from repro.core.analysis.shared_infra import SharedInfraAnalysis
from repro.core.infrastructure.dns_origin import DnsOriginTest
from repro.core.infrastructure.geolocation import GeolocationTest
from repro.core.infrastructure.ping_traceroute import PingTracerouteTest
from repro.core.leakage.dns_leakage import PROBE_QUERIES, DnsLeakageTest
from repro.core.leakage.ipv6_leakage import Ipv6LeakageTest
from repro.core.leakage.tunnel_failure import TunnelFailureTest
from repro.core.leakage.webrtc_leakage import WebRtcLeakageTest
from repro.core.manipulation.dns_manipulation import (
    DEFAULT_PROBE_HOSTS,
    DnsManipulationTest,
)
from repro.core.manipulation.dom_collection import DomCollectionTest
from repro.core.manipulation.proxy_detection import ProxyDetectionTest
from repro.core.manipulation.tls_interception import TlsInterceptionTest
from repro.core.metadata import MetadataTest
from repro.core.p2p import P2pDetection
from repro.core.results import VantagePointResults
from repro.runtime.retry import RetryPolicy
from repro.vpn.client import VpnClient
from repro.vpn.provider import ClientType, VantagePoint, VpnProvider
from repro.web.browser import Browser
from repro.web.dom import Document
from repro.world import World

if TYPE_CHECKING:
    from repro.obs.config import ObsConfig
    from repro.obs.evidence import EvidenceCollector
    from repro.runtime.units import AuditUnit, StudyPlan


class TestContext:
    """Everything a single test needs, bound to one connected session."""

    __test__ = False  # not a pytest class, despite the name

    def __init__(
        self,
        world: World,
        provider: VpnProvider,
        vantage_point: VantagePoint,
        vpn_client: Optional[VpnClient],
        suite: "TestSuite",
    ) -> None:
        self.world = world
        self.provider = provider
        self.vantage_point = vantage_point
        self.vpn_client = vpn_client
        self._suite = suite
        self.issued_query_names: set[str] = set(self._expected_query_names())

    @property
    def client(self):
        return self.world.client

    @property
    def provider_slug(self) -> str:
        return self.provider.name.lower().replace(" ", "").replace(".", "")

    @property
    def vantage_point_slug(self) -> str:
        return self.vantage_point.hostname.split(".")[0]

    def browser(self) -> Browser:
        return Browser(
            self.world.client, self.world.trust_store, self.world.chain_registry
        )

    def ground_truth_pages(self) -> dict[str, Document]:
        return self._suite.ground_truth_pages()

    def ground_truth_certificates(self) -> dict[str, str]:
        return self._suite.ground_truth_certificates()

    def world_ipv6_targets(self) -> list[tuple[str, str]]:
        return list(self.world.ipv6_sites)

    def _expected_query_names(self) -> set[str]:
        """Every hostname the suite itself may legitimately resolve."""
        from repro.world import HEADER_ECHO_DOMAIN, PROBE_DOMAIN

        names: set[str] = set(DEFAULT_PROBE_HOSTS)
        names.update(PROBE_QUERIES)
        names.add(HEADER_ECHO_DOMAIN)
        for site in self.world.sites:
            names.add(site.domain)
            names.add(f"www.{site.domain}")
        names.add(PROBE_DOMAIN)
        return names

    def note_query(self, qname: str) -> None:
        self.issued_query_names.add(qname.lower().rstrip("."))

    def evidence(self, verdict: str) -> "EvidenceCollector":
        """An evidence collector for the test currently running.

        Bound to the open test span; inert (``chain()`` returns None) when
        tracing is off or no unit is open, so tests can record evidence
        unconditionally without checking observability state.
        """
        from repro.obs.evidence import EvidenceCollector

        return EvidenceCollector(
            self._suite.obs,
            verdict=verdict,
            vantage=self.vantage_point.hostname,
        )


@dataclass
class ProviderReport:
    """All results for one provider."""

    provider: str
    subscription: str
    client_type: str
    full_results: list[VantagePointResults] = field(default_factory=list)
    sweep_results: list[VantagePointResults] = field(default_factory=list)
    colocation: Optional[ColocationReport] = None
    connect_failures: list[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Convenience verdicts
    # ------------------------------------------------------------------
    @property
    def injection_detected(self) -> bool:
        return any(
            r.dom_collection is not None and r.dom_collection.injection_detected
            for r in self.full_results
        )

    @property
    def proxy_detected(self) -> bool:
        return any(
            r.proxy is not None and r.proxy.proxy_detected
            for r in self.full_results
        )

    @property
    def tls_interception_detected(self) -> bool:
        return any(
            r.tls is not None and r.tls.interception_detected
            for r in self.full_results
        )

    @property
    def dns_leak_detected(self) -> bool:
        return any(
            r.dns_leakage is not None and r.dns_leakage.leaked
            for r in self.full_results
        )

    @property
    def ipv6_leak_detected(self) -> bool:
        return any(
            r.ipv6_leakage is not None and r.ipv6_leakage.leaked
            for r in self.full_results
        )

    @property
    def webrtc_leak_detected(self) -> bool:
        return any(
            r.webrtc is not None and r.webrtc.leaked
            for r in self.full_results
        )

    @property
    def fails_open(self) -> Optional[bool]:
        applicable = [
            r.tunnel_failure for r in self.full_results
            if r.tunnel_failure is not None
        ]
        if not applicable:
            return None
        return any(t.fails_open for t in applicable)

    @property
    def misrepresents_locations(self) -> bool:
        return bool(self.colocation and self.colocation.misrepresents_locations)

    def summary(self) -> str:
        lines = [
            f"Provider: {self.provider} ({self.subscription}, "
            f"{self.client_type} client)",
            f"  vantage points fully tested : {len(self.full_results)}",
            f"  vantage points swept        : {len(self.sweep_results)}",
            f"  content injection           : "
            f"{'DETECTED' if self.injection_detected else 'none'}",
            f"  transparent proxy           : "
            f"{'DETECTED' if self.proxy_detected else 'none'}",
            f"  TLS interception            : "
            f"{'DETECTED' if self.tls_interception_detected else 'none'}",
            f"  DNS leakage                 : "
            f"{'LEAKED' if self.dns_leak_detected else 'none'}",
            f"  IPv6 leakage                : "
            f"{'LEAKED' if self.ipv6_leak_detected else 'none'}",
            f"  WebRTC address exposure     : "
            f"{'LEAKED' if self.webrtc_leak_detected else 'none'}",
        ]
        if self.fails_open is None:
            lines.append("  tunnel failure              : not applicable")
        else:
            lines.append(
                "  tunnel failure              : "
                + ("FAILS OPEN" if self.fails_open else "fails closed")
            )
        lines.append(
            "  location misrepresentation  : "
            + ("DETECTED" if self.misrepresents_locations else "none")
        )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Evidence (what makes the verdicts above explainable)
    # ------------------------------------------------------------------
    def evidence_chains(self) -> dict:
        """hostname -> {test-field name -> EvidenceChain}, non-empty only.

        Chains exist when the study ran with tracing enabled; each links a
        verdict to the trace spans of its incriminating packets.  The
        study archive never carries them (fingerprint stability) — this
        accessor and :meth:`to_dict` are how they travel.
        """
        out = {}
        for results in self.full_results + self.sweep_results:
            chains = results.evidence_chains()
            if chains:
                out[results.hostname] = chains
        return out

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        from repro.core.results import _jsonable

        out = _jsonable(self)
        evidence = {
            hostname: {
                name: chain.to_dict() for name, chain in chains.items()
            }
            for hostname, chains in self.evidence_chains().items()
        }
        if evidence:
            out["evidence"] = evidence
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "ProviderReport":
        from repro.core.results import _hydrate
        from repro.obs.evidence import EvidenceChain

        report = _hydrate(cls, data)
        by_hostname = {
            results.hostname: results
            for results in report.full_results + report.sweep_results
        }
        for hostname, chains in (data.get("evidence") or {}).items():
            results = by_hostname.get(hostname)
            if results is not None:
                results.attach_evidence(
                    {
                        name: EvidenceChain.from_dict(raw)
                        for name, raw in chains.items()
                    }
                )
        return report


@dataclass
class StudyReport:
    """The full 62-provider study with cross-provider analyses."""

    providers: dict[str, ProviderReport] = field(default_factory=dict)
    redirects: RedirectAnalysis = field(default_factory=RedirectAnalysis)
    geoip: GeoIpComparison = field(default_factory=GeoIpComparison)
    shared_infra: SharedInfraAnalysis = field(default_factory=SharedInfraAnalysis)

    @property
    def providers_intercepting_or_manipulating(self) -> set[str]:
        out = set()
        for name, report in self.providers.items():
            if (
                report.injection_detected
                or report.proxy_detected
                or report.tls_interception_detected
            ):
                out.add(name)
        return out

    @property
    def providers_failing_open(self) -> set[str]:
        return {
            name
            for name, report in self.providers.items()
            if report.fails_open
        }

    @property
    def providers_misrepresenting_locations(self) -> set[str]:
        return {
            name
            for name, report in self.providers.items()
            if report.misrepresents_locations
        }

    def summary(self) -> str:
        total = len(self.providers)
        lines = [
            f"Study over {total} providers",
            f"  intercept/manipulate traffic : "
            f"{len(self.providers_intercepting_or_manipulating)} "
            f"({sorted(self.providers_intercepting_or_manipulating)})",
            f"  fail open on tunnel failure  : "
            f"{len(self.providers_failing_open)}",
            f"  misrepresent locations       : "
            f"{len(self.providers_misrepresenting_locations)} "
            f"({sorted(self.providers_misrepresenting_locations)})",
        ]
        for row in self.geoip.rows():
            lines.append(
                f"  geo-IP {row.database:18s}: {row.agreements}/{row.estimates}"
                f" agree ({row.agreement_rate:.0%})"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Serialisation: a stable dict form that round-trips exactly
    # (``StudyReport.from_dict(report.to_dict())`` re-serialises to the
    # same dict), so a whole study can be archived and reloaded as one
    # typed object rather than via the per-file archive format only.
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "providers": {
                name: report.to_dict()
                for name, report in self.providers.items()
            },
            "redirects": self.redirects.to_dict(),
            "geoip": self.geoip.to_dict(),
            "shared_infra": self.shared_infra.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StudyReport":
        study = cls()
        for name, raw in data.get("providers", {}).items():
            study.providers[name] = ProviderReport.from_dict(raw)
        study.redirects = RedirectAnalysis.from_dict(
            data.get("redirects", {})
        )
        study.geoip = GeoIpComparison.from_dict(data.get("geoip", {}))
        study.shared_infra = SharedInfraAnalysis.from_dict(
            data.get("shared_infra", {})
        )
        return study


class TestSuite:
    """Runs the measurement battery over a world."""

    __test__ = False  # not a pytest class, despite the name

    def __init__(
        self,
        world: World,
        max_vantage_points: Optional[int] = 5,
        dom_sites: Optional[int] = None,
        tls_hosts: Optional[int] = None,
        tunnel_failure_attempts: int = 12,
        retry_policy: Optional[RetryPolicy] = None,
        obs_config: Optional["ObsConfig"] = None,
    ) -> None:
        self.world = world
        self.max_vantage_points = max_vantage_points
        # Observability session (or None — the zero-overhead default).
        # Built per suite so each worker records into its own buffers.
        self.obs = (
            obs_config.build(world.seed) if obs_config is not None else None
        )
        if self.obs is not None:
            self.obs.attach(world)
        # Flaky-endpoint handling (§5.2): formerly a hard-coded single
        # inline retry around the connect call; now a shared policy that
        # also covers mid-battery drops during the leakage tests.
        self.retry_policy = retry_policy or RetryPolicy.single_retry()
        self._dom_test = DomCollectionTest(max_sites=dom_sites)
        self._tls_test = TlsInterceptionTest(max_hosts=tls_hosts)
        self._dns_manip = DnsManipulationTest()
        self._proxy_test = ProxyDetectionTest()
        self._dns_origin = DnsOriginTest()
        self._ping_test = PingTracerouteTest()
        self._geo_test = GeolocationTest()
        self._dns_leak = DnsLeakageTest()
        self._ipv6_leak = Ipv6LeakageTest()
        self._tunnel_failure = TunnelFailureTest(
            attempts=tunnel_failure_attempts
        )
        self._webrtc = WebRtcLeakageTest()
        # Flaky-endpoint reconnects performed across the whole run (§5.2).
        self.connect_retries = 0
        self._metadata = MetadataTest()
        self._p2p = P2pDetection()
        self._gt_pages: Optional[dict[str, Document]] = None
        self._gt_certs: Optional[dict[str, str]] = None

    # ------------------------------------------------------------------
    # Ground truth (collected from the university host, Section 5.3.1)
    # ------------------------------------------------------------------
    def ground_truth_pages(self) -> dict[str, Document]:
        if self._gt_pages is None:
            with self._gt_collection():
                browser = Browser(
                    self.world.university,
                    self.world.trust_store,
                    self.world.chain_registry,
                )
                pages: dict[str, Document] = {}
                for site in self.world.sites.dom_test_sites():
                    load = browser.load_page(site.http_url)
                    if load.document is not None:
                        pages[site.domain] = load.document
                self._gt_pages = pages
        return self._gt_pages

    def ground_truth_certificates(self) -> dict[str, str]:
        if self._gt_certs is None:
            with self._gt_collection():
                browser = Browser(
                    self.world.university,
                    self.world.trust_store,
                    self.world.chain_registry,
                )
                certs: dict[str, str] = {}
                for site in self.world.sites.tls_test_sites():
                    probe = browser.tls_probe(site.domain)
                    if probe.ok and probe.handshake is not None:
                        certs[site.domain] = probe.handshake.leaf_fingerprint
                self._gt_certs = certs
        return self._gt_certs

    def _gt_collection(self):
        """Suspend observability around lazy ground-truth collection.

        Ground truth is collected once per suite, inside whichever unit
        first needs it — which worker that is depends on scheduling.  Its
        packets and clock advance must therefore stay out of the obs
        stream, or traces and metrics would differ across worker counts.
        Results are unaffected: they consume only clock deltas.
        """
        from contextlib import nullcontext

        return self.obs.suspended() if self.obs is not None else nullcontext()

    # ------------------------------------------------------------------
    # Vantage-point selection (Section 5.2: ~5, geographically diverse)
    # ------------------------------------------------------------------
    # Countries the paper deliberately probed when a provider claimed them
    # (censored/filtered regions whose claims want validating, §4/§6.1.1).
    SENSITIVE_COUNTRIES = ("TR", "KR", "RU", "NL", "TH", "CN", "IR", "SA", "KP")

    def select_vantage_points(
        self, provider: VpnProvider
    ) -> list[VantagePoint]:
        points = provider.vantage_points
        if self.max_vantage_points is None or len(points) <= self.max_vantage_points:
            return list(points)
        # First claim one endpoint per sensitive country the provider
        # advertises (the paper explicitly validated censored-region
        # claims), then fill the remaining budget with greedy
        # farthest-point selection on claimed locations for diversity.
        chosen: list[VantagePoint] = []
        for country in self.SENSITIVE_COUNTRIES:
            if len(chosen) >= self.max_vantage_points:
                break
            candidate = next(
                (vp for vp in points if vp.claimed_country == country), None
            )
            if candidate is not None and candidate not in chosen:
                chosen.append(candidate)
        remaining = [vp for vp in points if vp not in chosen]
        if not chosen and remaining:
            chosen.append(remaining.pop(0))
        while len(chosen) < self.max_vantage_points and remaining:
            best = max(
                remaining,
                key=lambda vp: min(
                    vp.claimed_location.distance_km(c.claimed_location)
                    for c in chosen
                ),
            )
            chosen.append(best)
            remaining.remove(best)
        return chosen

    # ------------------------------------------------------------------
    # Per-vantage-point execution
    # ------------------------------------------------------------------
    def run_vantage_point(
        self,
        provider: VpnProvider,
        vantage_point: VantagePoint,
        full: bool = True,
    ) -> VantagePointResults:
        """Connect, run the battery, disconnect.

        ``full=False`` runs only the lightweight infrastructure sweep
        (pings + geolocation), mirroring the paper's automated collection.
        """
        client_host = self.world.client
        vpn_client = VpnClient(client_host, provider)
        results = VantagePointResults(
            provider=provider.name,
            hostname=vantage_point.hostname,
            egress_address=str(vantage_point.address),
            claimed_country=vantage_point.claimed_country,
        )
        physical = client_host.primary_interface()
        if physical is not None:
            physical.capture.clear()
        if not self._connect_with_retry(vpn_client, vantage_point):
            results.connected = False
            return results

        context = TestContext(
            world=self.world,
            provider=provider,
            vantage_point=vantage_point,
            vpn_client=vpn_client,
            suite=self,
        )
        observed = self._observed
        vantage = vantage_point.hostname
        try:
            results.ping_traceroute = observed(
                "ping_traceroute", vantage,
                lambda: self._ping_test.run(context))
            results.geolocation = observed(
                "geolocation", vantage, lambda: self._geo_test.run(context))
            if full:
                results.metadata = observed(
                    "metadata", vantage, lambda: self._metadata.run(context))
                results.dns_manipulation = observed(
                    "dns_manipulation", vantage,
                    lambda: self._dns_manip.run(context))
                results.dom_collection = observed(
                    "dom_collection", vantage,
                    lambda: self._dom_test.run(context))
                results.tls = observed(
                    "tls_interception", vantage,
                    lambda: self._tls_test.run(context))
                results.proxy = observed(
                    "proxy_detection", vantage,
                    lambda: self._proxy_test.run(context))
                results.dns_origin = observed(
                    "dns_origin", vantage,
                    lambda: self._dns_origin.run(context))
                context.note_query(results.dns_origin.probe_hostname)
                is_custom = (
                    provider.profile.client_type is ClientType.CUSTOM
                )
                if is_custom:
                    # Leakage tests need the provider's own client software
                    # (Section 6.5: disabled for automated OpenVPN testing).
                    # Each leakage test runs under the retry policy: a
                    # flaky endpoint dropping the session mid-battery is
                    # reconnected and the test re-run, where the seed
                    # harness only ever retried the initial connect.
                    results.dns_leakage = observed(
                        "dns_leakage", vantage,
                        lambda: self._run_leakage_test(
                            context, lambda: self._dns_leak.run(context),
                            name="dns_leakage",
                        ))
                    results.ipv6_leakage = observed(
                        "ipv6_leakage", vantage,
                        lambda: self._run_leakage_test(
                            context, lambda: self._ipv6_leak.run(context),
                            name="ipv6_leakage",
                        ))
                webrtc = observed(
                    "webrtc_leakage", vantage,
                    lambda: self._run_leakage_test(
                        context, lambda: self._webrtc.run(context),
                        name="webrtc_leakage",
                    ))
                from repro.core.results import WebRtcSummary

                results.webrtc = WebRtcSummary(
                    leaked=webrtc.leaked,
                    exposed_local_addresses=webrtc.exposed_local_addresses,
                    reflexive_address=webrtc.reflexive_address,
                    reflexive_is_vpn_egress=webrtc.reflexive_is_vpn_egress,
                    evidence=getattr(webrtc, "evidence", None),
                )
                results.p2p = observed(
                    "p2p_detection", vantage, lambda: self._p2p.run(context))
                if is_custom:
                    # Last: deliberately wrecks the tunnel.
                    results.tunnel_failure = observed(
                        "tunnel_failure", vantage,
                        lambda: self._run_leakage_test(
                            context,
                            lambda: self._tunnel_failure.run(context),
                            name="tunnel_failure",
                        ))
        finally:
            vpn_client.disconnect()
        return results

    def _observed(self, name: str, vantage: str, run: Callable):
        """Run one test, inside a ``test`` span when observability is on.

        While the span is still open, results that support evidence but
        recorded none themselves get a default chain (anchored to the test
        span, carrying the result's incriminating observations as notes) —
        so in a traced study *every* verdict is explainable, not only the
        ones from tests that build packet-level chains.
        """
        obs = self.obs
        if obs is None:
            return run()
        with obs.test_span(name, vantage=vantage):
            result = run()
            from repro.obs.evidence import attach_default_evidence

            attach_default_evidence(obs, name, vantage, result)
            return result

    # ------------------------------------------------------------------
    # Flaky-endpoint handling (§5.2) via the shared retry policy
    # ------------------------------------------------------------------
    def _connect_with_retry(
        self, vpn_client: VpnClient, vantage_point: VantagePoint
    ) -> bool:
        """Connect under the retry policy; False when attempts run out."""
        from repro.vpn.client import TunnelConnectionError

        obs = self.obs
        attempt = 0
        while True:
            attempt += 1
            try:
                vpn_client.connect(vantage_point)
                return True
            except TunnelConnectionError:
                if not self.retry_policy.should_retry(attempt):
                    if obs is not None:
                        obs.flight_dump(
                            "connect_exhausted",
                            vantage=vantage_point.hostname,
                            attempts=attempt,
                        )
                    return False
                self.connect_retries += 1
                if obs is not None:
                    obs.retry("connect")
            except Exception:  # pragma: no cover - defensive
                return False

    def _run_leakage_test(
        self, context: TestContext, run: Callable, name: str = "leakage"
    ):
        """Run a leakage test, reconnecting and re-running on a dropped
        session (the §5.2 flaky endpoints are not limited to connect time).
        """
        from repro.vpn.client import ConnectionState, TunnelConnectionError

        obs = self.obs
        attempt = 0
        while True:
            attempt += 1
            try:
                vpn_client = context.vpn_client
                if (
                    vpn_client is not None
                    and vpn_client.state is ConnectionState.DISCONNECTED
                ):
                    vpn_client.connect(context.vantage_point)
                return run()
            except TunnelConnectionError:
                if not self.retry_policy.should_retry(attempt):
                    if obs is not None:
                        obs.flight_dump(
                            "retry_exhausted",
                            test=name,
                            vantage=context.vantage_point.hostname,
                            attempts=attempt,
                        )
                    raise
                self.connect_retries += 1
                if obs is not None:
                    obs.retry(name)

    # ------------------------------------------------------------------
    # Per-unit entry points (what the runtime executor schedules)
    # ------------------------------------------------------------------
    def run_unit(self, unit: "AuditUnit") -> list[VantagePointResults]:
        """Execute one work unit of the study.

        A FULL unit is the complete battery at its single endpoint; a SWEEP
        unit is the lightweight infrastructure pass over the provider's
        remaining endpoints.  Units are independent: results do not depend
        on which other units ran before them, in this world or any other
        built from the same seed — that is what makes parallel execution
        bit-for-bit reproducible.
        """
        from repro.dns.resolver import reset_txids
        from repro.runtime.units import UnitKind

        # RTTs are clock deltas; rebasing the clock per unit keeps the
        # float arithmetic (and thus the archived bytes) independent of
        # how much this particular world instance has already simulated.
        # Txids and ephemeral ports are rebased for the same reason: they
        # end up in packet payloads, which feed the jitter hash — resetting
        # them makes every unit's packet bytes (and the obs trace of them)
        # a pure function of the unit.
        self.world.internet.clock_ms = 0.0
        reset_txids()
        self.world.client.reset_ephemeral_ports()
        engine = self.world.internet.engine
        if engine is not None:
            # Flow plans and firewall verdicts are identity-keyed and pin
            # their key objects; resetting per unit bounds those pin sets
            # and keeps every unit's engine state a pure function of the
            # unit (plans are recompiled from the same world state, so
            # delivery bytes are unaffected).
            engine.begin_unit()
        if self.obs is not None:
            self.obs.begin_unit(unit)
        provider = self.world.provider(unit.provider)
        full = unit.kind is UnitKind.FULL
        return [
            self.run_vantage_point(
                provider, provider.vantage_point(hostname), full=full
            )
            for hostname in unit.hostnames
        ]

    def plan_study(self) -> "StudyPlan":
        """The study as an explicit work-unit graph (in sequential order)."""
        from repro.runtime.units import decompose_study

        return decompose_study(self)

    # ------------------------------------------------------------------
    # Assembly: unit results -> provider/study reports
    # ------------------------------------------------------------------
    def assemble_provider(
        self,
        name: str,
        full_results: list[VantagePointResults],
        sweep_results: list[VantagePointResults],
    ) -> ProviderReport:
        provider = self.world.provider(name)
        report = ProviderReport(
            provider=name,
            subscription=provider.profile.subscription.value,
            client_type=provider.profile.client_type.value,
            full_results=full_results,
            sweep_results=sweep_results,
        )
        report.colocation = self._colocation_for(provider, report)
        return report

    def assemble_study(
        self,
        plan: "StudyPlan",
        unit_results: dict[str, list[VantagePointResults]],
    ) -> StudyReport:
        """Aggregate per-unit results into a :class:`StudyReport`.

        Iterates in plan order, so the report (and its archived bytes) is
        independent of the order in which units actually executed.  Units
        missing from *unit_results* (failed or timed out) are recorded in
        the provider's ``connect_failures``.

        Profiled as the ``analysis`` phase (the executor publishes it as
        one extra metrics delta after assembly, since it runs outside any
        unit).
        """
        obs = self.obs
        profile = obs.profile if obs is not None else None
        if profile is None:
            return self._assemble_study(plan, unit_results)
        with profile.phase("analysis"):
            return self._assemble_study(plan, unit_results)

    def assemble_provider_from_plan(
        self,
        plan: "StudyPlan",
        name: str,
        unit_results: dict[str, list[VantagePointResults]],
    ) -> ProviderReport:
        """One provider's report from its unit results, in plan order.

        Units missing from *unit_results* (failed or timed out) become the
        provider's ``connect_failures``.  The provider must exist in this
        suite's world — under sharded execution that means calling this on
        the suite of the provider's shard.
        """
        from repro.runtime.units import UnitKind

        full_results: list[VantagePointResults] = []
        sweep_results: list[VantagePointResults] = []
        for unit in plan.units:
            if unit.provider != name:
                continue
            results = unit_results.get(unit.unit_id)
            if results is None:
                continue
            if unit.kind is UnitKind.FULL:
                full_results.extend(results)
            else:
                sweep_results.extend(results)
        report = self.assemble_provider(name, full_results, sweep_results)
        measured = {r.hostname for r in full_results + sweep_results}
        report.connect_failures.extend(
            hostname
            for unit in plan.units
            if unit.provider == name
            for hostname in unit.hostnames
            if hostname not in measured
        )
        return report

    def ingest_provider_aggregates(
        self, study: StudyReport, name: str, report: ProviderReport
    ) -> None:
        """Fold one provider's results into the study-wide analyses."""
        provider = self.world.provider(name)
        for results in report.full_results:
            if results.dom_collection is not None:
                study.redirects.ingest(
                    name, results.claimed_country, results.dom_collection
                )
        for results in report.full_results + report.sweep_results:
            if results.geolocation is not None:
                study.geoip.ingest(name, results.geolocation)
        for vantage_point in provider.vantage_points:
            study.shared_infra.ingest(
                provider=name,
                address=str(vantage_point.address),
                block=str(vantage_point.block),
                asn=vantage_point.spec.asn,
            )

    def _assemble_study(
        self,
        plan: "StudyPlan",
        unit_results: dict[str, list[VantagePointResults]],
    ) -> StudyReport:
        study = StudyReport()
        for name in plan.providers:
            report = self.assemble_provider_from_plan(plan, name, unit_results)
            study.providers[name] = report
            self.ingest_provider_aggregates(study, name, report)
        return study

    # ------------------------------------------------------------------
    # Provider- and study-level drivers
    # ------------------------------------------------------------------
    def audit_provider(self, name: str) -> ProviderReport:
        provider = self.world.provider(name)
        selected = self.select_vantage_points(provider)
        selected_names = {vp.hostname for vp in selected}
        full_results = [
            self.run_vantage_point(provider, vantage_point, full=True)
            for vantage_point in selected
        ]
        sweep_results = [
            self.run_vantage_point(provider, vantage_point, full=False)
            for vantage_point in provider.vantage_points
            if vantage_point.hostname not in selected_names
        ]
        return self.assemble_provider(name, full_results, sweep_results)

    def _colocation_for(
        self, provider: VpnProvider, report: ProviderReport
    ) -> ColocationReport:
        anchor_locations = {
            anchor.address: anchor.location for anchor in self.world.anchors
        }
        evidence: list[VantagePointEvidence] = []
        by_hostname = {
            vp.hostname: vp for vp in provider.vantage_points
        }
        for results in report.full_results + report.sweep_results:
            if results.ping_traceroute is None:
                continue
            vantage_point = by_hostname[results.hostname]
            evidence.append(
                VantagePointEvidence(
                    provider=provider.name,
                    hostname=results.hostname,
                    claimed_country=results.claimed_country,
                    claimed_location=vantage_point.claimed_location,
                    rtt_vector=results.ping_traceroute.rtt_vector(),
                    anchor_locations=anchor_locations,
                    tunnel_base_rtt_ms=(
                        results.ping_traceroute.tunnel_base_rtt_ms
                    ),
                )
            )
        return ColocationAnalysis().analyse_provider(evidence)

    def run_study(self) -> StudyReport:
        """Run the full study sequentially, in plan order.

        This is the single-worker reference path; the runtime executor
        (:mod:`repro.runtime.executor`) runs the same plan on a worker
        pool and assembles an identical report.
        """
        plan = self.plan_study()
        unit_results = {
            unit.unit_id: self.run_unit(unit) for unit in plan.units
        }
        return self.assemble_study(plan, unit_results)
