"""Passive capture analysis (paper Section 5.3.4).

The suite "collects packet captures on the hardware interface" and
"subsequently analyze[s] this traffic to detect non-VPN-traversing leakage,
and to detect whether the VPN service is providing our IP address as an
additional vantage point".  This module is that post-processing step: a
capture summary with tunnel/plaintext accounting, per-protocol breakdowns,
plaintext DNS extraction and per-destination tallies — the raw material
both for the leakage verdicts and for manual anomaly investigation.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.net.capture import Capture
from repro.net.packet import innermost_payload


@dataclass
class CaptureSummary:
    """Aggregate view of one interface capture."""

    interface: str
    total_packets: int = 0
    tunnel_packets: int = 0
    plaintext_packets: int = 0
    tunnel_bytes: int = 0
    plaintext_bytes: int = 0
    protocols: Counter = field(default_factory=Counter)
    plaintext_protocols: Counter = field(default_factory=Counter)
    plaintext_dns_queries: list[str] = field(default_factory=list)
    plaintext_destinations: Counter = field(default_factory=Counter)
    ipv6_plaintext_packets: int = 0
    first_timestamp_ms: float = 0.0
    last_timestamp_ms: float = 0.0

    @property
    def tunnel_fraction(self) -> float:
        if self.total_packets == 0:
            return 0.0
        return self.tunnel_packets / self.total_packets

    @property
    def duration_ms(self) -> float:
        return max(0.0, self.last_timestamp_ms - self.first_timestamp_ms)

    def describe(self) -> str:
        lines = [
            f"capture on {self.interface}: {self.total_packets} packets "
            f"over {self.duration_ms:.0f} ms",
            f"  tunnelled : {self.tunnel_packets} "
            f"({self.tunnel_fraction:.0%}), {self.tunnel_bytes} bytes",
            f"  plaintext : {self.plaintext_packets}, "
            f"{self.plaintext_bytes} bytes "
            f"({self.ipv6_plaintext_packets} IPv6)",
        ]
        if self.plaintext_dns_queries:
            lines.append(
                f"  plaintext DNS: {len(self.plaintext_dns_queries)} queries "
                f"({sorted(set(self.plaintext_dns_queries))[:4]}...)"
            )
        return "\n".join(lines)


def summarise_capture(capture: Capture) -> CaptureSummary:
    """Post-process one capture into a :class:`CaptureSummary`."""
    summary = CaptureSummary(interface=capture.interface)
    for index, entry in enumerate(capture.entries):
        packet = entry.packet
        if index == 0:
            summary.first_timestamp_ms = entry.timestamp_ms
        summary.last_timestamp_ms = entry.timestamp_ms
        summary.total_packets += 1
        kind = packet.payload.kind
        summary.protocols[kind] += 1
        if kind == "tunnel":
            summary.tunnel_packets += 1
            summary.tunnel_bytes += packet.size
            continue
        summary.plaintext_packets += 1
        summary.plaintext_bytes += packet.size
        summary.plaintext_protocols[kind] += 1
        if entry.direction == "tx":
            summary.plaintext_destinations[str(packet.dst)] += 1
        if packet.version == 6:
            summary.ipv6_plaintext_packets += 1
        payload = innermost_payload(packet)
        if (
            payload is not None
            and payload.kind == "dns"
            and not payload.is_response  # type: ignore[union-attr]
            and entry.direction == "tx"
        ):
            summary.plaintext_dns_queries.append(payload.qname)  # type: ignore[union-attr]
    return summary


def compare_sessions(
    connected: CaptureSummary, baseline: CaptureSummary
) -> dict[str, object]:
    """Contrast a VPN-connected capture with a no-VPN baseline.

    Used in investigations: a healthy session moves (nearly) all traffic
    into the tunnel; plaintext traffic that persists while connected is
    leak material.
    """
    return {
        "tunnel_fraction_connected": connected.tunnel_fraction,
        "tunnel_fraction_baseline": baseline.tunnel_fraction,
        "plaintext_while_connected": connected.plaintext_packets,
        "plaintext_dns_while_connected": len(
            connected.plaintext_dns_queries
        ),
        "suspicious": (
            connected.plaintext_dns_queries != []
            or connected.ipv6_plaintext_packets > 0
        ),
    }
