"""A headless browser bound to a host.

:class:`Browser` plays the role of the paper's Selenium-driven Chrome: it
resolves hostnames through the host's configured resolvers, issues HTTP
requests with a characteristic header block, follows redirect chains,
captures the final DOM, and enumerates subresource loads.  It also exposes
the direct TLS probe used by the interception test.

Everything goes through ``Host.send``, so tunnel routing, kill switches and
egress behaviours all apply — a page loaded while connected to a VPN sees
whatever the VPN does to traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.dns.resolver import StubResolver
from repro.net.host import Host
from repro.net.packet import Packet, TcpSegment, TlsPayload
from repro.web.dom import Document
from repro.web.http import (
    HeaderSet,
    HttpRequest,
    HttpResponse,
    default_request_headers,
)
from repro.web.tls import ChainRegistry, TlsHandshake, TrustStore
from repro.web.url import Url

MAX_REDIRECTS = 10


@dataclass(frozen=True)
class RedirectHop:
    """One hop in a redirect chain."""

    url: str
    status: int
    location: Optional[str]


@dataclass(frozen=True)
class ResourceLoad:
    """A subresource referenced by a loaded page."""

    url: str
    initiator: str  # the page URL that referenced it


@dataclass
class FetchResult:
    """One HTTP exchange (no redirect following)."""

    request: HttpRequest
    response: Optional[HttpResponse]
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.response is not None


@dataclass
class PageLoad:
    """A full page load: redirect chain, final document, resources."""

    requested_url: str
    hops: list[RedirectHop] = field(default_factory=list)
    final_response: Optional[HttpResponse] = None
    document: Optional[Document] = None
    resources: list[ResourceLoad] = field(default_factory=list)
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.final_response is not None and self.final_response.status == 200

    @property
    def final_url(self) -> str:
        return self.hops[-1].url if self.hops else self.requested_url

    @property
    def was_redirected(self) -> bool:
        return len(self.hops) > 1


@dataclass
class TlsProbe:
    """Result of directly negotiating TLS with a hostname (Section 5.3.1)."""

    hostname: str
    resolved_address: Optional[str]
    handshake: Optional[TlsHandshake]
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.handshake is not None and self.handshake.completed


class Browser:
    """A headless page loader bound to one host."""

    def __init__(
        self,
        host: Host,
        trust_store: TrustStore,
        chain_registry: ChainRegistry,
    ) -> None:
        self.host = host
        self.trust_store = trust_store
        self.chain_registry = chain_registry
        self.resolver = StubResolver(host)

    def _profiler(self):
        """The active phase profiler, or None (the zero-overhead path)."""
        internet = self.host.internet
        obs = internet.obs if internet is not None else None
        return obs.profile if obs is not None else None

    # ------------------------------------------------------------------
    # Resolution and raw fetching
    # ------------------------------------------------------------------
    def _resolve(self, hostname: str) -> Optional[str]:
        # IP literals bypass DNS.
        parts = hostname.split(".")
        if len(parts) == 4 and all(p.isdigit() for p in parts):
            return hostname
        if ":" in hostname:
            return hostname
        return self.resolver.resolve_address(hostname)

    def fetch(
        self,
        url: str | Url,
        headers: HeaderSet | None = None,
        method: str = "GET",
    ) -> FetchResult:
        """One HTTP(S) exchange without following redirects.

        Profiled as the ``browser`` phase; the DNS resolution and packet
        delivery underneath bill to their own phases (exclusive
        accounting), so this phase is the HTTP/emulation work itself.
        """
        profile = self._profiler()
        if profile is None:
            return self._fetch(url, headers, method)
        profile.enter("browser")
        try:
            return self._fetch(url, headers, method)
        finally:
            profile.leave()

    def _fetch(
        self,
        url: str | Url,
        headers: HeaderSet | None = None,
        method: str = "GET",
    ) -> FetchResult:
        parsed = Url.parse(url) if isinstance(url, str) else url
        header_set = headers.copy() if headers else default_request_headers(parsed.host)
        header_set.set("Host", parsed.host)
        request = HttpRequest(
            method=method, url=str(parsed), headers=header_set.as_tuple()
        )

        address = self._resolve(parsed.host)
        if address is None:
            return FetchResult(request=request, response=None, error="dns-failure")

        socket = self.host.open_socket("tcp")
        try:
            route = self.host.routing.lookup(_parse(address))
            if route is None:
                return FetchResult(request=request, response=None, error="no-route")
            interface = self.host.interfaces.get(route.interface)
            if interface is None or not interface.up:
                return FetchResult(
                    request=request, response=None, error="interface-down"
                )
            src = interface.address_for_version(_parse(address).version)
            if src is None:
                return FetchResult(
                    request=request, response=None, error="no-source-address"
                )
            packet = Packet(
                src=src,
                dst=_parse(address),
                payload=TcpSegment(
                    src_port=socket.port,
                    dst_port=parsed.port,
                    payload=request.to_payload(),
                ),
            )
            outcome = self.host.send(packet)
            if not outcome.ok:
                return FetchResult(
                    request=request, response=None, error=outcome.status
                )
            for reply in outcome.responses:
                payload = reply.payload
                if isinstance(payload, TcpSegment) and getattr(
                    payload.payload, "kind", ""
                ) == "http":
                    return FetchResult(
                        request=request,
                        response=HttpResponse.from_payload(payload.payload),  # type: ignore[arg-type]
                    )
            return FetchResult(request=request, response=None, error="no-response")
        finally:
            socket.close()

    # ------------------------------------------------------------------
    # Page loading with redirects (the DOM-collection primitive)
    # ------------------------------------------------------------------
    def load_page(self, url: str) -> PageLoad:
        profile = self._profiler()
        if profile is None:
            return self._load_page(url)
        profile.enter("browser")
        try:
            return self._load_page(url)
        finally:
            profile.leave()

    def _load_page(self, url: str) -> PageLoad:
        load = PageLoad(requested_url=url)
        current = url
        for _hop in range(MAX_REDIRECTS):
            result = self.fetch(current)
            if not result.ok:
                load.error = result.error
                return load
            response = result.response
            assert response is not None
            load.hops.append(
                RedirectHop(
                    url=current, status=response.status, location=response.location
                )
            )
            if response.is_redirect:
                assert response.location is not None
                current = str(Url.parse(current).join(response.location))
                continue
            load.final_response = response
            break
        else:
            load.error = "too-many-redirects"
            return load

        response = load.final_response
        if response is not None and response.status == 200 and response.body:
            try:
                load.document = Document.deserialise(response.body)
            except (ValueError, KeyError):
                load.document = None
            if load.document is not None:
                for resource in load.document.resource_urls():
                    load.resources.append(
                        ResourceLoad(url=resource, initiator=load.final_url)
                    )
        return load

    # ------------------------------------------------------------------
    # Direct TLS negotiation (the TLS-interception primitive)
    # ------------------------------------------------------------------
    def tls_probe(self, hostname: str) -> TlsProbe:
        profile = self._profiler()
        if profile is None:
            return self._tls_probe(hostname)
        profile.enter("tls")
        try:
            return self._tls_probe(hostname)
        finally:
            profile.leave()

    def _tls_probe(self, hostname: str) -> TlsProbe:
        address = self._resolve(hostname)
        if address is None:
            return TlsProbe(
                hostname=hostname,
                resolved_address=None,
                handshake=None,
                error="dns-failure",
            )
        socket = self.host.open_socket("tcp")
        try:
            target = _parse(address)
            route = self.host.routing.lookup(target)
            if route is None:
                return TlsProbe(hostname, address, None, error="no-route")
            interface = self.host.interfaces.get(route.interface)
            if interface is None or not interface.up:
                return TlsProbe(hostname, address, None, error="interface-down")
            src = interface.address_for_version(target.version)
            if src is None:
                return TlsProbe(hostname, address, None, error="no-source-address")
            hello = Packet(
                src=src,
                dst=target,
                payload=TcpSegment(
                    src_port=socket.port,
                    dst_port=443,
                    payload=TlsPayload(sni=hostname, record="client_hello"),
                ),
            )
            outcome = self.host.send(hello)
            if not outcome.ok:
                return TlsProbe(hostname, address, None, error=outcome.status)
            for reply in outcome.responses:
                payload = reply.payload
                if isinstance(payload, TcpSegment) and isinstance(
                    payload.payload, TlsPayload
                ):
                    record = payload.payload
                    if record.record != "server_hello":
                        continue
                    chain = self.chain_registry.lookup(
                        record.certificate_fingerprint
                    )
                    if chain is None:
                        handshake = TlsHandshake(
                            hostname=hostname,
                            presented_chain=None,
                            validation=None,
                            completed=False,
                        )
                    else:
                        handshake = TlsHandshake(
                            hostname=hostname,
                            presented_chain=chain,
                            validation=self.trust_store.validate(chain, hostname),
                            completed=True,
                        )
                    return TlsProbe(hostname, address, handshake)
            return TlsProbe(hostname, address, None, error="no-server-hello")
        finally:
            socket.close()


def _parse(address: str):
    from repro.net.addresses import parse_address

    return parse_address(address)
