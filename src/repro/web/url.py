"""URLs and registered domains.

The URL-redirection analysis (paper Section 6.1.1) classifies a redirect as
suspicious when it crosses *registered domains*: two subdomains are related
if they share a registered domain under the public suffix list, or if their
registered domains differ only by public suffix (``a.example.com`` →
``b.example.org``).  We carry a compact public-suffix table sufficient for
the simulated namespace.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache
# A compact public-suffix set: generic TLDs plus the multi-label suffixes the
# site catalogue and block pages use. Real PSL semantics (longest match wins).
PUBLIC_SUFFIXES: frozenset[str] = frozenset(
    {
        "com", "org", "net", "edu", "gov", "mil", "int", "info", "biz",
        "io", "me", "tv", "cc", "ru", "de", "uk", "fr", "nl", "se", "no",
        "fi", "dk", "pl", "cz", "ch", "at", "be", "it", "es", "pt", "ie",
        "kr", "jp", "cn", "hk", "tw", "sg", "my", "th", "vn", "in", "pk",
        "ir", "sa", "ae", "tr", "eg", "za", "ng", "ke", "br", "ar", "cl",
        "mx", "ca", "au", "nz", "us", "pa", "bz", "sc", "lu",
        "co.uk", "org.uk", "ac.uk", "gov.uk",
        "or.kr", "co.kr", "go.kr",
        "com.tr", "gov.tr", "org.tr",
        "com.br", "com.cn", "com.au", "co.jp", "co.za",
        "com.mx", "com.ar", "co.in", "com.sg", "com.my",
    }
)


def public_suffix(host: str) -> str:
    """The public suffix of *host* (longest matching suffix rule)."""
    host = host.lower().rstrip(".")
    labels = host.split(".")
    best = labels[-1] if labels else ""
    for i in range(len(labels) - 1, -1, -1):
        candidate = ".".join(labels[i:])
        if candidate in PUBLIC_SUFFIXES:
            best = candidate
    return best


def registered_domain(host: str) -> str:
    """The registrable domain: one label below the public suffix.

    For IP-literal hosts the literal itself is returned.
    """
    host = host.lower().rstrip(".")
    if _is_ip_literal(host):
        return host
    suffix = public_suffix(host)
    if host == suffix:
        return host
    prefix = host[: -(len(suffix) + 1)]
    last_label = prefix.split(".")[-1]
    return f"{last_label}.{suffix}"


def same_registered_domain(host_a: str, host_b: str) -> bool:
    return registered_domain(host_a) == registered_domain(host_b)


def domains_related(host_a: str, host_b: str) -> bool:
    """The paper's relatedness test for redirect classification.

    Related iff same registered domain, or registered domains differ only by
    public suffix (same registrable label).
    """
    reg_a, reg_b = registered_domain(host_a), registered_domain(host_b)
    if reg_a == reg_b:
        return True
    if _is_ip_literal(reg_a) or _is_ip_literal(reg_b):
        return False
    label_a = reg_a[: -(len(public_suffix(reg_a)) + 1)]
    label_b = reg_b[: -(len(public_suffix(reg_b)) + 1)]
    return bool(label_a) and label_a == label_b


def _is_ip_literal(host: str) -> bool:
    if ":" in host:
        return True
    parts = host.split(".")
    return len(parts) == 4 and all(p.isdigit() for p in parts)


@dataclass(frozen=True)
class Url:
    """A parsed absolute URL."""

    scheme: str
    host: str
    port: int
    path: str = "/"

    @classmethod
    def parse(cls, text: str) -> "Url":
        # Urls are frozen, so parses are interned: browsers, origin servers
        # and the analysis passes all re-parse the same few site URLs.
        return _parse_url(text)

    @classmethod
    def _parse(cls, text: str) -> "Url":
        text = text.strip()
        scheme, sep, rest = text.partition("://")
        if not sep:
            raise ValueError(f"URL missing scheme: {text!r}")
        scheme = scheme.lower()
        if scheme not in ("http", "https"):
            raise ValueError(f"unsupported scheme in {text!r}")
        hostport, slash, path = rest.partition("/")
        path = "/" + path if slash else "/"
        if hostport.startswith("["):  # IPv6 literal
            host, _, port_part = hostport[1:].partition("]")
            port_text = port_part.lstrip(":")
        else:
            host, _, port_text = hostport.partition(":")
        if not host:
            raise ValueError(f"URL missing host: {text!r}")
        if port_text:
            port = int(port_text)
        else:
            port = 443 if scheme == "https" else 80
        return cls(scheme=scheme, host=host.lower(), port=port, path=path)

    @property
    def origin(self) -> str:
        default = 443 if self.scheme == "https" else 80
        if self.port == default:
            return f"{self.scheme}://{self.host}"
        return f"{self.scheme}://{self.host}:{self.port}"

    @property
    def is_https(self) -> bool:
        return self.scheme == "https"

    def join(self, reference: str) -> "Url":
        """Resolve *reference* (absolute URL or absolute path) against self."""
        if "://" in reference:
            return Url.parse(reference)
        if reference.startswith("/"):
            return replace(self, path=reference)
        # Relative path: resolve against the directory of the current path.
        base_dir = self.path.rsplit("/", 1)[0]
        return replace(self, path=f"{base_dir}/{reference}")

    def with_scheme(self, scheme: str) -> "Url":
        port = 443 if scheme == "https" else 80
        return replace(self, scheme=scheme, port=port)

    def __str__(self) -> str:
        return f"{self.origin}{self.path}"


@lru_cache(maxsize=4096)
def _parse_url(text: str) -> Url:
    return Url._parse(text)


def urls_related(url_a: str | Url, url_b: str | Url) -> bool:
    """Relatedness of two URLs by their hosts (paper Section 6.1.1)."""
    host_a = url_a.host if isinstance(url_a, Url) else Url.parse(url_a).host
    host_b = url_b.host if isinstance(url_b, Url) else Url.parse(url_b).host
    return domains_related(host_a, host_b)
