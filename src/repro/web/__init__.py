"""HTTP / TLS / browser substrate.

Everything the manipulation tests need: a URL model with registered-domain
logic (public-suffix style), HTTP messages, a certificate/TLS model with
chain validation, a minimal DOM, a catalogue of test sites (including the two
honeysites), origin web servers, censorship block pages, and a headless
browser that loads pages through a host's network stack.
"""

from repro.web.browser import Browser, PageLoad, ResourceLoad, TlsProbe
from repro.web.dom import Document, DomElement
from repro.web.http import HeaderSet, HttpRequest, HttpResponse
from repro.web.server import (
    BlockPageServer,
    HeaderEchoServer,
    OriginWebServer,
    install_web_service,
)
from repro.web.sites import (
    HONEYSITE_AD,
    HONEYSITE_STATIC,
    Site,
    SiteCatalog,
    default_catalog,
)
from repro.web.tls import (
    Certificate,
    CertificateAuthority,
    CertificateStore,
    TlsHandshake,
    TrustStore,
)
from repro.web.url import Url, registered_domain, same_registered_domain, urls_related

__all__ = [
    "Browser",
    "PageLoad",
    "ResourceLoad",
    "TlsProbe",
    "Document",
    "DomElement",
    "HeaderSet",
    "HttpRequest",
    "HttpResponse",
    "BlockPageServer",
    "HeaderEchoServer",
    "OriginWebServer",
    "install_web_service",
    "HONEYSITE_AD",
    "HONEYSITE_STATIC",
    "Site",
    "SiteCatalog",
    "default_catalog",
    "Certificate",
    "CertificateAuthority",
    "CertificateStore",
    "TlsHandshake",
    "TrustStore",
    "Url",
    "registered_domain",
    "same_registered_domain",
    "urls_related",
]
