"""Web servers.

Three services, installed on simulated hosts:

- :class:`OriginWebServer` — serves one catalogue site on HTTP/HTTPS,
  including the HTTPS upgrade redirect and the 403 that VPN-range-blocking
  services return (paper Section 6.1.2);
- :class:`HeaderEchoServer` — returns the request headers it received as the
  response body; the transparent-proxy detection test (Section 6.2.1)
  compares them with what the client sent;
- :class:`BlockPageServer` — the country-censorship destinations of Table 4.
"""

from __future__ import annotations

import json
from typing import Callable, Optional

from repro.net.host import Host
from repro.net.packet import Packet, TcpSegment, TlsPayload
from repro.web.dom import Document
from repro.web.http import HttpRequest, HttpResponse
from repro.web.sites import Site, generate_document
from repro.web.tls import CertificateChain, CertificateStore
from repro.web.url import Url

# Predicate the world provides: is this source address a known VPN egress?
VpnRangePredicate = Callable[[str], bool]


def _never_vpn(_addr: str) -> bool:
    """Default predicate when no world-level blacklist is wired in.

    A module-level function (not a lambda) so that worlds embedding a
    server remain picklable — snapshot cloning depends on it.
    """
    return False


def _http_reply(
    packet: Packet, segment: TcpSegment, response: HttpResponse
) -> list[Packet]:
    return [
        Packet(
            src=packet.dst,
            dst=packet.src,
            payload=TcpSegment(
                src_port=segment.dst_port,
                dst_port=segment.src_port,
                flags="PA",
                payload=response.to_payload(),
            ),
        )
    ]


def _tls_reply(
    packet: Packet, segment: TcpSegment, chain: CertificateChain, sni: str
) -> list[Packet]:
    return [
        Packet(
            src=packet.dst,
            dst=packet.src,
            payload=TcpSegment(
                src_port=segment.dst_port,
                dst_port=segment.src_port,
                flags="PA",
                payload=TlsPayload(
                    sni=sni,
                    record="server_hello",
                    certificate_fingerprint=chain.leaf.fingerprint,
                    size=1420,
                ),
            ),
        )
    ]


class OriginWebServer:
    """Serves one site's ground-truth content on ports 80 and 443."""

    def __init__(
        self,
        site: Site,
        cert_store: CertificateStore,
        is_vpn_address: VpnRangePredicate | None = None,
    ) -> None:
        self.site = site
        self.cert_store = cert_store
        self.is_vpn_address = is_vpn_address or _never_vpn
        self.document: Document = generate_document(site)
        self.request_log: list[HttpRequest] = []

    # ------------------------------------------------------------------
    def handle_http(self, packet: Packet, host: Host) -> Optional[list[Packet]]:
        segment = packet.payload
        if not isinstance(segment, TcpSegment):
            return None
        payload = segment.payload
        if not hasattr(payload, "status") or payload.kind != "http":
            return None
        request = HttpRequest.from_payload(payload)  # type: ignore[arg-type]
        self.request_log.append(request)
        response = self.respond(request, source_address=str(packet.src))
        return _http_reply(packet, segment, response)

    def handle_https(self, packet: Packet, host: Host) -> Optional[list[Packet]]:
        segment = packet.payload
        if not isinstance(segment, TcpSegment):
            return None
        payload = segment.payload
        if isinstance(payload, TlsPayload) and payload.record == "client_hello":
            chain = self.cert_store.chain_for(self.site.domain)
            return _tls_reply(packet, segment, chain, payload.sni)
        if getattr(payload, "kind", "") == "http":
            request = HttpRequest.from_payload(payload)  # type: ignore[arg-type]
            self.request_log.append(request)
            response = self.respond(
                request, source_address=str(packet.src), https=True
            )
            return _http_reply(packet, segment, response)
        return None

    # ------------------------------------------------------------------
    def respond(
        self, request: HttpRequest, source_address: str, https: bool = False
    ) -> HttpResponse:
        url = Url.parse(request.url)
        if url.host != self.site.domain:
            return HttpResponse.not_found(request.url)
        if self.site.blocks_vpn_ranges and self.is_vpn_address(source_address):
            # Active VPN discrimination: 403 on the initial page load.
            return HttpResponse.forbidden(
                request.url, body="Access from VPN/proxy ranges is not permitted."
            )
        if self.site.upgrades_https and not https:
            return HttpResponse.redirect(
                request.url, str(url.with_scheme("https")), status=301
            )
        document = self.document
        serialised = document.serialise()
        return HttpResponse(
            status=200,
            url=request.url,
            headers=(
                ("Content-Type", "text/html"),
                ("Server", "origin/1.0"),
            ),
            body=serialised,
            body_label=f"page:{self.site.domain}",
        )


class HeaderEchoServer:
    """Echoes received request headers back as a JSON body.

    The proxy-detection test sends a request with a characteristic header
    block and compares what came back — any in-path device that parsed and
    regenerated the request (even without injecting) shows up as reordered
    or re-cased headers.
    """

    def __init__(self, domain: str = "header-echo-probe.net") -> None:
        self.domain = domain

    def handle_http(self, packet: Packet, host: Host) -> Optional[list[Packet]]:
        segment = packet.payload
        if not isinstance(segment, TcpSegment):
            return None
        payload = segment.payload
        if getattr(payload, "kind", "") != "http" or payload.status != 0:
            return None
        request = HttpRequest.from_payload(payload)  # type: ignore[arg-type]
        body = json.dumps(
            {
                "observed_headers": [list(h) for h in request.headers],
                "source": str(packet.src),
                "method": request.method,
            },
            separators=(",", ":"),
        )
        response = HttpResponse(
            status=200,
            url=request.url,
            headers=(("Content-Type", "application/json"),),
            body=body,
            body_label="header-echo",
        )
        return _http_reply(packet, segment, response)


# Table 4's redirect destinations, keyed by a short block-page id.
BLOCK_PAGES: dict[str, tuple[str, str]] = {
    # id -> (destination URL, country)
    "tr-telecom": ("http://195.175.254.2", "TR"),
    "kr-warning": ("http://www.warning.or.kr", "KR"),
    "ru-ttk": ("http://fz139.ttk.ru", "RU"),
    "ru-zapret": ("http://zapret.hoztnode.net", "RU"),
    "ru-rt": ("http://warning.rt.ru", "RU"),
    "ru-mts": ("http://blocked.mts.ru", "RU"),
    "ru-dtln": ("http://block.dtln.ru", "RU"),
    "ru-beeline": ("http://blackhole.beeline.ru", "RU"),
    "nl-ziggo": ("https://www.ziggo.nl", "NL"),
    "nl-ip": ("http://213.46.185.10", "NL"),
    "th-ip": ("http://103.77.116.101", "TH"),
}


class BlockPageServer:
    """Serves a national block page (the destination of Table 4 redirects)."""

    def __init__(self, block_page_id: str) -> None:
        if block_page_id not in BLOCK_PAGES:
            raise ValueError(f"unknown block page {block_page_id!r}")
        self.block_page_id = block_page_id
        self.url, self.country = BLOCK_PAGES[block_page_id]

    def handle_http(self, packet: Packet, host: Host) -> Optional[list[Packet]]:
        segment = packet.payload
        if not isinstance(segment, TcpSegment):
            return None
        payload = segment.payload
        if getattr(payload, "kind", "") != "http" or payload.status != 0:
            return None
        body = (
            f"Access to the requested resource has been restricted by order "
            f"of the competent authority. ({self.block_page_id})"
        )
        response = HttpResponse(
            status=200,
            url=payload.url,
            headers=(("Content-Type", "text/html"),),
            body=body,
            body_label=f"blockpage:{self.block_page_id}",
        )
        return _http_reply(packet, segment, response)

    # HTTPS block pages (ziggo) present their own certificate.
    def handle_https(
        self, cert_store: CertificateStore
    ) -> Callable[[Packet, Host], Optional[list[Packet]]]:
        # A picklable callable object, not a nested closure: the handler
        # ends up bound inside hosts that world snapshotting pickles.
        return _BlockPageHttpsHandler(server=self, cert_store=cert_store)


class _BlockPageHttpsHandler:
    """TLS-aware service handler for a :class:`BlockPageServer`."""

    def __init__(
        self, server: BlockPageServer, cert_store: CertificateStore
    ) -> None:
        self.server = server
        self.cert_store = cert_store

    def __call__(self, packet: Packet, host: Host) -> Optional[list[Packet]]:
        segment = packet.payload
        if not isinstance(segment, TcpSegment):
            return None
        payload = segment.payload
        if isinstance(payload, TlsPayload) and payload.record == "client_hello":
            destination_host = Url.parse(self.server.url).host
            chain = self.cert_store.chain_for(destination_host)
            return _tls_reply(packet, segment, chain, payload.sni)
        return self.server.handle_http(packet, host)


def install_web_service(
    host: Host,
    http_handler: Callable[[Packet, Host], Optional[list[Packet]]],
    https_handler: Callable[[Packet, Host], Optional[list[Packet]]] | None = None,
) -> None:
    """Bind HTTP (and optionally HTTPS) services on a host."""
    host.bind("tcp", 80, http_handler)
    if https_handler is not None:
        host.bind("tcp", 443, https_handler)
