"""A minimal DOM.

Pages in the simulation are flat lists of elements — enough structure for the
DOM-collection test to diff a page loaded through a VPN against the
known-unmodified ground truth and spot injected scripts/overlays, which is
exactly how the paper caught Seed4.me's ad injection (Section 6.1.3).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass


@dataclass(frozen=True)
class DomElement:
    """One element: tag, attributes, text content."""

    tag: str
    attrs: tuple[tuple[str, str], ...] = ()
    text: str = ""

    def attr(self, name: str) -> str | None:
        for key, value in self.attrs:
            if key == name:
                return value
        return None

    def describe(self) -> str:
        attrs = " ".join(f'{k}="{v}"' for k, v in self.attrs)
        inner = self.text[:40]
        return f"<{self.tag}{' ' + attrs if attrs else ''}>{inner}"


@dataclass(frozen=True)
class Document:
    """A loaded page: URL, title, elements."""

    url: str
    title: str
    elements: tuple[DomElement, ...] = ()

    def scripts(self) -> list[DomElement]:
        return [e for e in self.elements if e.tag == "script"]

    def external_scripts(self) -> list[str]:
        return [
            src
            for e in self.scripts()
            if (src := e.attr("src")) is not None
        ]

    def resource_urls(self) -> list[str]:
        """All externally loaded resources (script src, img src, iframes)."""
        urls: list[str] = []
        for element in self.elements:
            if element.tag in ("script", "img", "iframe", "link"):
                src = element.attr("src") or element.attr("href")
                if src:
                    urls.append(src)
        return urls

    def content_hash(self) -> str:
        return hashlib.sha256(self.serialise().encode()).hexdigest()[:32]

    def serialise(self) -> str:
        # Documents are frozen; origin servers serialise the same page on
        # every request, so the rendering is memoised on the instance.
        cached = self.__dict__.get("_serialised")
        if cached is None:
            cached = json.dumps(
                {
                    "url": self.url,
                    "title": self.title,
                    "elements": [
                        {"tag": e.tag, "attrs": list(e.attrs), "text": e.text}
                        for e in self.elements
                    ],
                },
                separators=(",", ":"),
                sort_keys=True,
            )
            object.__setattr__(self, "_serialised", cached)
        return cached

    @classmethod
    def deserialise(cls, data: str) -> "Document":
        raw = json.loads(data)
        return cls(
            url=raw["url"],
            title=raw["title"],
            elements=tuple(
                DomElement(
                    tag=e["tag"],
                    attrs=tuple((k, v) for k, v in e["attrs"]),
                    text=e["text"],
                )
                for e in raw["elements"]
            ),
        )

    def with_injected(self, element: DomElement) -> "Document":
        """A copy with one extra element appended (injection primitive)."""
        return Document(
            url=self.url,
            title=self.title,
            elements=self.elements + (element,),
        )


def diff_documents(expected: Document, observed: Document) -> list[str]:
    """Human-readable differences between two versions of a page.

    Returns descriptions of elements added/removed relative to *expected*.
    The comparison is set-based: ordering changes alone are not manipulation.
    """
    expected_set = set(expected.elements)
    observed_set = set(observed.elements)
    differences: list[str] = []
    for element in observed.elements:
        if element not in expected_set:
            differences.append(f"added: {element.describe()}")
    for element in expected.elements:
        if element not in observed_set:
            differences.append(f"removed: {element.describe()}")
    return differences
