"""STUN and ICE candidate gathering — the WebRTC leak surface.

The paper's related work (Al-Fannah) shows the WebRTC API can reveal a
range of client addresses to any visited website even when a VPN is in
use, and the authors state they systematically audit this vulnerability.
The mechanism:

- *host candidates*: the browser enumerates local interface addresses and
  exposes them to page JavaScript directly — the VPN never sees this;
- *server-reflexive candidates*: a STUN binding request discovers the
  address the outside world sees; routed through the tunnel this is the
  VPN egress, but a client that fails to force WebRTC through the tunnel
  (or to block it) exposes the real public address.

:class:`StunServer` is a UDP service answering binding requests with the
observed source address; :func:`gather_ice_candidates` mimics the
browser's gathering phase on a host.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.addresses import parse_address
from repro.net.host import Host
from repro.net.packet import Packet, RawPayload, UdpDatagram

STUN_PORT = 3478
_BINDING_REQUEST = "stun:binding-request"
_BINDING_PREFIX = "stun:mapped="


class StunServer:
    """Answers binding requests with the source address it observed."""

    def __init__(self, name: str = "stun") -> None:
        self.name = name
        self.requests_served = 0

    def handle(self, packet: Packet, host: Host) -> Optional[list[Packet]]:
        datagram = packet.payload
        if not isinstance(datagram, UdpDatagram):
            return None
        payload = datagram.payload
        if not isinstance(payload, RawPayload):
            return None
        if payload.label != _BINDING_REQUEST:
            return None
        self.requests_served += 1
        mapped = f"{_BINDING_PREFIX}{packet.src}"
        return [
            Packet(
                src=packet.dst,
                dst=packet.src,
                payload=UdpDatagram(
                    src_port=datagram.dst_port,
                    dst_port=datagram.src_port,
                    payload=RawPayload(label=mapped, size=len(mapped)),
                ),
            )
        ]


def install_stun_service(host: Host, server: StunServer) -> None:
    host.bind("udp", STUN_PORT, server.handle)


@dataclass(frozen=True)
class IceCandidate:
    """One ICE candidate as exposed to page JavaScript."""

    candidate_type: str  # "host" | "srflx"
    address: str
    interface: str = ""


def gather_ice_candidates(
    host: Host, stun_server_address: str
) -> list[IceCandidate]:
    """The browser's gathering phase on *host*.

    Host candidates enumerate every up interface address (including tunnel
    addresses); the server-reflexive candidate is whatever the STUN server
    reports back, routed like any other traffic.
    """
    candidates: list[IceCandidate] = []
    for interface in host.interfaces.values():
        if not interface.up:
            continue
        for address in (interface.ipv4, interface.ipv6):
            if address is not None:
                candidates.append(
                    IceCandidate(
                        candidate_type="host",
                        address=str(address),
                        interface=interface.name,
                    )
                )

    reflexive = _stun_binding(host, stun_server_address)
    if reflexive is not None:
        candidates.append(
            IceCandidate(candidate_type="srflx", address=reflexive)
        )
    return candidates


def _stun_binding(host: Host, server_address: str) -> Optional[str]:
    target = parse_address(server_address)
    route = host.routing.lookup(target)
    if route is None:
        return None
    interface = host.interfaces.get(route.interface)
    if interface is None or not interface.up:
        return None
    source = interface.address_for_version(target.version)
    if source is None:
        return None
    socket = host.open_socket("udp")
    try:
        request = Packet(
            src=source,
            dst=target,
            payload=UdpDatagram(
                src_port=socket.port,
                dst_port=STUN_PORT,
                payload=RawPayload(
                    label=_BINDING_REQUEST, size=len(_BINDING_REQUEST)
                ),
            ),
        )
        outcome = host.send(request)
        if not outcome.ok:
            return None
        for response in outcome.responses:
            datagram = response.payload
            if not isinstance(datagram, UdpDatagram):
                continue
            payload = datagram.payload
            if isinstance(payload, RawPayload) and payload.label.startswith(
                _BINDING_PREFIX
            ):
                return payload.label[len(_BINDING_PREFIX):]
        return None
    finally:
        socket.close()
