"""HTTP message model.

Requests and responses with ordered, case-preserving headers.  Header
*identity* (exact name casing and ordering) matters: the header-based proxy
detection test (paper Section 6.2.1) works by comparing the headers a client
sent against the headers the origin actually received — transparent proxies
that parse and regenerate requests normalise casing/ordering and so betray
themselves without injecting anything.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Iterator, Optional

from repro.net.packet import HttpPayload

REDIRECT_STATUSES = frozenset({301, 302, 303, 307, 308})


class HeaderSet:
    """An ordered, case-preserving multimap of HTTP headers."""

    def __init__(self, items: Iterable[tuple[str, str]] = ()) -> None:
        self._items: list[tuple[str, str]] = list(items)

    def add(self, name: str, value: str) -> None:
        self._items.append((name, value))

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        lowered = name.lower()
        for key, value in self._items:
            if key.lower() == lowered:
                return value
        return default

    def get_all(self, name: str) -> list[str]:
        lowered = name.lower()
        return [v for k, v in self._items if k.lower() == lowered]

    def set(self, name: str, value: str) -> None:
        """Replace all instances of *name* (first position kept)."""
        lowered = name.lower()
        replaced = False
        out: list[tuple[str, str]] = []
        for key, val in self._items:
            if key.lower() == lowered:
                if not replaced:
                    out.append((name, value))
                    replaced = True
            else:
                out.append((key, val))
        if not replaced:
            out.append((name, value))
        self._items = out

    def remove(self, name: str) -> None:
        lowered = name.lower()
        self._items = [(k, v) for k, v in self._items if k.lower() != lowered]

    def items(self) -> list[tuple[str, str]]:
        return list(self._items)

    def as_tuple(self) -> tuple[tuple[str, str], ...]:
        return tuple(self._items)

    def __contains__(self, name: object) -> bool:
        if not isinstance(name, str):
            return False
        return self.get(name) is not None

    def __iter__(self) -> Iterator[tuple[str, str]]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, HeaderSet):
            return self._items == other._items
        return NotImplemented

    def copy(self) -> "HeaderSet":
        return HeaderSet(self._items)

    def normalised(self) -> "HeaderSet":
        """The form a parsing-and-regenerating proxy would emit.

        Title-Case names, sorted order — a typical proxy library's output.
        This is used by the transparent-proxy *behaviour*; the detection test
        never calls it, it just observes the result.
        """
        canonical = [
            ("-".join(part.capitalize() for part in k.split("-")), v)
            for k, v in self._items
        ]
        canonical.sort(key=lambda kv: kv[0])
        return HeaderSet(canonical)


@dataclass(frozen=True)
class HttpRequest:
    """An HTTP request as issued by a client."""

    method: str
    url: str
    headers: tuple[tuple[str, str], ...] = ()
    body: str = ""

    @property
    def header_set(self) -> HeaderSet:
        return HeaderSet(self.headers)

    def with_headers(self, headers: HeaderSet) -> "HttpRequest":
        return replace(self, headers=headers.as_tuple())

    def to_payload(self) -> HttpPayload:
        return HttpPayload(
            method=self.method,
            url=self.url,
            status=0,
            headers=self.headers,
            body=self.body,
            body_size=len(self.body),
        )

    @classmethod
    def from_payload(cls, payload: HttpPayload) -> "HttpRequest":
        return cls(
            method=payload.method,
            url=payload.url,
            headers=payload.headers,
            body=payload.body,
        )


@dataclass(frozen=True)
class HttpResponse:
    """An HTTP response."""

    status: int
    url: str
    headers: tuple[tuple[str, str], ...] = ()
    body: str = ""
    body_label: str = ""

    @property
    def header_set(self) -> HeaderSet:
        return HeaderSet(self.headers)

    @property
    def is_redirect(self) -> bool:
        return self.status in REDIRECT_STATUSES and self.location is not None

    @property
    def location(self) -> Optional[str]:
        return self.header_set.get("Location")

    def to_payload(self) -> HttpPayload:
        return HttpPayload(
            method="",
            url=self.url,
            status=self.status,
            headers=self.headers,
            body=self.body,
            body_label=self.body_label,
            body_size=len(self.body),
        )

    @classmethod
    def from_payload(cls, payload: HttpPayload) -> "HttpResponse":
        return cls(
            status=payload.status,
            url=payload.url,
            headers=payload.headers,
            body=payload.body,
            body_label=payload.body_label,
        )

    @classmethod
    def redirect(cls, url: str, location: str, status: int = 302) -> "HttpResponse":
        return cls(
            status=status,
            url=url,
            headers=(("Location", location),),
            body="",
            body_label=f"redirect:{location}",
        )

    @classmethod
    def not_found(cls, url: str) -> "HttpResponse":
        return cls(status=404, url=url, body="not found", body_label="404")

    @classmethod
    def forbidden(cls, url: str, body: str = "") -> "HttpResponse":
        return cls(status=403, url=url, body=body, body_label="403")


def default_request_headers(host: str) -> HeaderSet:
    """The browser's characteristic header block.

    Deliberately mixed casing ('sec-ch-ua' style lowercase next to
    Title-Case) so that regenerating proxies produce a detectable diff.
    """
    return HeaderSet(
        [
            ("Host", host),
            ("User-Agent", "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_13) "
                           "AppleWebKit/537.36 Chrome/65.0 Safari/537.36"),
            ("Accept", "text/html,application/xhtml+xml,*/*;q=0.8"),
            ("accept-language", "en-US,en;q=0.9"),
            ("ACCEPT-ENCODING", "gzip, deflate"),
            ("x-measurement-nonce", "vpn-test-suite"),
            ("Connection", "keep-alive"),
        ]
    )
