"""The test-site catalogue.

The paper's DOM-collection test loads 55 HTTP-only sites chosen across
sensitive categories, two of which are 'honeysites' serving fully static
content (one carrying ad-inclusion markup with invalid publisher IDs); the
TLS test covers those plus 150+ additional hosts (Section 5.3.1).

This module synthesises that catalogue deterministically: each
:class:`Site` has a domain, a category, whether it upgrades HTTP→HTTPS, a
generated :class:`~repro.web.dom.Document`, and a flag for sites that
actively block known-VPN source ranges (the paper found dozens of 403s from
such services, Section 6.1.2).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from repro.web.dom import Document, DomElement

# Categories mirror Section 5.3.1: "politics, pornography, government
# websites, defense contracting, etc."
DOM_SITE_CATEGORIES: dict[str, list[str]] = {
    "news": [
        "daily-herald-news.com", "globe-wire.com", "metro-times-online.com",
        "evening-dispatch.net", "world-report-news.org", "capital-press.com",
        "sunrise-bulletin.com", "open-newsdesk.org",
    ],
    "politics": [
        "policy-debate-forum.org", "civic-action-now.org",
        "liberty-voices.net", "electoral-watchdog.org",
        "parliament-monitor.net", "reform-caucus.org",
    ],
    "pornography": [
        "adult-site-alpha.com", "adult-site-bravo.com", "adult-site-charlie.net",
        "adult-site-delta.com", "adult-site-echo.net", "adult-site-foxtrot.com",
    ],
    "government": [
        "city-permits.gov", "national-statistics.gov", "tax-filing-portal.gov",
        "public-records.gov", "customs-declarations.gov",
    ],
    "defense": [
        "aero-defense-systems.com", "maritime-contracting.net",
        "secure-avionics.com", "ordnance-logistics.com",
    ],
    "filesharing": [
        "torrent-index-one.net", "magnet-links-hub.net", "file-bay-mirror.org",
        "seedbox-search.net", "p2p-tracker-list.org",
    ],
    "health": [
        "clinic-finder-online.com", "mental-health-answers.org",
        "std-testing-info.org", "pharma-price-check.com",
    ],
    "religion": [
        "interfaith-dialogue.org", "scripture-study-group.org", "jw-mirror.org",
    ],
    "gambling": [
        "lucky-slots-palace.com", "sports-odds-central.net",
        "poker-room-live.com",
    ],
    "social": [
        "micro-blog-central.com", "photo-share-stream.net",
        "forum-underground.net", "encrypted-chat-web.org",
    ],
    "shopping": [
        "discount-megastore.com", "auction-corner.net", "gadget-outlet.com",
    ],
    "reference": [
        "wiki-mirror-project.org", "open-encyclopedia.net",
        "language-dictionary.net",
    ],
    "vpn-blocked-streaming": [
        "stream-flix-video.com", "sports-live-stream.net", "tv-catchup-now.com",
    ],
}

# Two honeysites (Section 5.3.1): static DOM content to give manipulators an
# easy target; one carries ad slots with invalid publisher identifiers.
HONEYSITE_STATIC = "static-content-probe.org"
HONEYSITE_AD = "ad-bait-probe.com"

# Domains that actively 403 known VPN source ranges (Section 6.1.2 found
# "more than a dozen instances" across "dozens of VPN providers").
VPN_BLOCKING_SITES = frozenset(
    {
        "stream-flix-video.com",
        "sports-live-stream.net",
        "tv-catchup-now.com",
        "auction-corner.net",
        "poker-room-live.com",
        "sports-odds-central.net",
    }
)

# Sites censored per country (Table 4): category -> censoring countries.
CENSORED_CATEGORIES: dict[str, tuple[str, ...]] = {
    "pornography": ("TR", "KR", "TH", "RU"),
    "filesharing": ("TR", "RU", "NL"),
    "reference": ("TR",),       # Turkey blocked Wikipedia
    "religion": ("RU",),        # Russia blocked jw.org
    "social": ("RU",),          # Russia blocked linkedin.com (social)
}


@dataclass(frozen=True)
class Site:
    """One catalogue entry."""

    domain: str
    category: str
    upgrades_https: bool
    in_dom_set: bool           # part of the 55-site DOM collection
    is_honeysite: bool = False
    blocks_vpn_ranges: bool = False

    @property
    def http_url(self) -> str:
        return f"http://{self.domain}/"

    @property
    def https_url(self) -> str:
        return f"https://{self.domain}/"


def _page_seed(domain: str) -> int:
    return int.from_bytes(
        hashlib.sha256(domain.encode("ascii")).digest()[:4], "big"
    )


def generate_document(site: Site) -> Document:
    """The deterministic ground-truth page for a site."""
    seed = _page_seed(site.domain)
    elements: list[DomElement] = [
        DomElement(tag="h1", text=f"Welcome to {site.domain}"),
        DomElement(
            tag="p",
            text=f"Category: {site.category}. Page token {seed:08x}.",
        ),
        DomElement(
            tag="script",
            attrs=(("src", f"http://{site.domain}/static/app.js"),),
        ),
        DomElement(
            tag="img",
            attrs=(("src", f"http://{site.domain}/static/logo.png"),),
        ),
        DomElement(
            tag="link",
            attrs=(
                ("rel", "stylesheet"),
                ("href", f"http://{site.domain}/static/style.css"),
            ),
        ),
    ]
    for index in range(seed % 3 + 1):
        elements.append(
            DomElement(
                tag="p", text=f"Article paragraph {index} ({(seed >> index) & 0xFF})."
            )
        )
    if site.domain == HONEYSITE_AD:
        # Ad-inclusion markup with deliberately invalid publisher IDs.
        elements.append(
            DomElement(
                tag="script",
                attrs=(
                    ("src", "http://cdn.major-ad-network.com/show_ads.js"),
                    ("data-publisher-id", "pub-0000000000000000"),
                ),
            )
        )
        elements.append(
            DomElement(
                tag="div",
                attrs=(("class", "ad-slot"), ("data-slot", "banner-top")),
            )
        )
    return Document(
        url=site.http_url,
        title=f"{site.domain} — home",
        elements=tuple(elements),
    )


class SiteCatalog:
    """All sites in the simulated web plus lookup helpers."""

    def __init__(self, sites: list[Site]) -> None:
        self._by_domain = {site.domain: site for site in sites}
        if len(self._by_domain) != len(sites):
            raise ValueError("duplicate domains in catalogue")

    def __iter__(self):
        return iter(self._by_domain.values())

    def __len__(self) -> int:
        return len(self._by_domain)

    def get(self, domain: str) -> Optional[Site]:
        return self._by_domain.get(domain.lower())

    def dom_test_sites(self) -> list[Site]:
        """The 55-site DOM-collection set (incl. the two honeysites)."""
        return [s for s in self if s.in_dom_set]

    def honeysites(self) -> list[Site]:
        return [s for s in self if s.is_honeysite]

    def tls_test_sites(self) -> list[Site]:
        """The DOM set plus the 150+ additional TLS hosts."""
        return list(self)

    def sites_in_category(self, category: str) -> list[Site]:
        return [s for s in self if s.category == category]

    def censored_domains_for_country(self, country: str) -> list[str]:
        """Domains upstream-censored when egressing in *country* (Table 4)."""
        domains: list[str] = []
        for category, countries in CENSORED_CATEGORIES.items():
            if country in countries:
                domains.extend(
                    s.domain for s in self.sites_in_category(category)
                )
        return sorted(domains)


def default_catalog() -> SiteCatalog:
    """Build the full catalogue: 55 DOM sites + 2 honeysites + TLS extras."""
    sites: list[Site] = []
    dom_budget = 53  # + 2 honeysites = 55 in the DOM set
    dom_count = 0
    for category, domains in DOM_SITE_CATEGORIES.items():
        for domain in domains:
            in_dom = dom_count < dom_budget
            if in_dom:
                dom_count += 1
            # The DOM set deliberately avoids HTTPS-upgrading sites
            # ("we specifically chose domains which do not upgrade requests
            # to HTTPS"); the extra TLS hosts mostly do upgrade.
            sites.append(
                Site(
                    domain=domain,
                    category=category,
                    upgrades_https=not in_dom,
                    in_dom_set=in_dom,
                    blocks_vpn_ranges=domain in VPN_BLOCKING_SITES,
                )
            )
    sites.append(
        Site(
            domain=HONEYSITE_STATIC,
            category="honeysite",
            upgrades_https=False,
            in_dom_set=True,
            is_honeysite=True,
        )
    )
    sites.append(
        Site(
            domain=HONEYSITE_AD,
            category="honeysite",
            upgrades_https=False,
            in_dom_set=True,
            is_honeysite=True,
        )
    )
    # 150+ additional TLS-only hosts (Section 5.3.1's "more than 150
    # additional hosts").
    for index in range(155):
        domain = f"tls-host-{index:03d}.example-services.com"
        sites.append(
            Site(
                domain=domain,
                category="tls-extra",
                upgrades_https=True,
                in_dom_set=False,
            )
        )
    return SiteCatalog(sites)
