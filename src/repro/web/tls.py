"""Certificates and the TLS handshake model.

Real crypto is out of scope (DESIGN.md §7); what the TLS-interception test
needs is the *trust structure*: certificates with subjects, SANs, issuers and
stable fingerprints; chains up to a root; validation against a trust store;
and a handshake that returns the chain the *network path* presented — which
an interception middlebox can substitute.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Certificate:
    """An X.509-style certificate, identity only."""

    subject: str
    issuer: str
    san: tuple[str, ...] = ()
    serial: int = 1
    is_ca: bool = False

    @property
    def fingerprint(self) -> str:
        material = "|".join(
            [self.subject, self.issuer, ",".join(self.san), str(self.serial),
             str(self.is_ca)]
        )
        return hashlib.sha256(material.encode("ascii")).hexdigest()[:32]

    def matches_hostname(self, hostname: str) -> bool:
        """SAN match with single-label wildcard support."""
        hostname = hostname.lower().rstrip(".")
        names = self.san or (self.subject,)
        for name in names:
            name = name.lower().rstrip(".")
            if name == hostname:
                return True
            if name.startswith("*."):
                suffix = name[2:]
                head, dot, tail = hostname.partition(".")
                if dot and tail == suffix and head:
                    return True
        return False


@dataclass(frozen=True)
class CertificateChain:
    """Leaf-first chain of certificates."""

    certificates: tuple[Certificate, ...]

    @property
    def leaf(self) -> Certificate:
        return self.certificates[0]

    @property
    def root(self) -> Certificate:
        return self.certificates[-1]

    def __len__(self) -> int:
        return len(self.certificates)


class CertificateAuthority:
    """Issues certificates chained to its root."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.root = Certificate(
            subject=f"CN={name} Root",
            issuer=f"CN={name} Root",
            is_ca=True,
            serial=0,
        )
        self._serial = 0

    def issue(self, subject_host: str, san: tuple[str, ...] = ()) -> CertificateChain:
        self._serial += 1
        leaf = Certificate(
            subject=f"CN={subject_host}",
            issuer=self.root.subject,
            san=san or (subject_host, f"*.{subject_host}"),
            serial=self._serial,
        )
        return CertificateChain(certificates=(leaf, self.root))


class TrustStore:
    """The client's set of trusted root certificates."""

    # Phase-profiler hook, wired by Observability.attach (the store has no
    # path back to the internet's `obs` slot); None costs one check.
    profile = None

    def __init__(self, roots: list[Certificate] | None = None) -> None:
        self._roots: dict[str, Certificate] = {}
        for root in roots or []:
            self.add_root(root)

    def add_root(self, root: Certificate) -> None:
        if not root.is_ca:
            raise ValueError("only CA certificates can be trust anchors")
        self._roots[root.fingerprint] = root

    def trusts(self, root: Certificate) -> bool:
        return root.fingerprint in self._roots

    def validate(
        self, chain: CertificateChain, hostname: str
    ) -> "ValidationResult":
        """Validate chain structure, trust anchor, and hostname."""
        profile = self.profile
        if profile is None:
            return self._validate(chain, hostname)
        profile.enter("tls")
        try:
            return self._validate(chain, hostname)
        finally:
            profile.leave()

    def _validate(
        self, chain: CertificateChain, hostname: str
    ) -> "ValidationResult":
        if len(chain) == 0:
            return ValidationResult(valid=False, reason="empty chain")
        for cert, issuer in zip(chain.certificates, chain.certificates[1:]):
            if cert.issuer != issuer.subject:
                return ValidationResult(
                    valid=False, reason=f"broken chain at {cert.subject}"
                )
            if not issuer.is_ca:
                return ValidationResult(
                    valid=False, reason=f"issuer {issuer.subject} is not a CA"
                )
        if not self.trusts(chain.root):
            return ValidationResult(valid=False, reason="untrusted root")
        if not chain.leaf.matches_hostname(hostname):
            return ValidationResult(
                valid=False,
                reason=f"hostname {hostname} not in SAN {chain.leaf.san}",
            )
        return ValidationResult(valid=True, reason="")


@dataclass(frozen=True)
class ValidationResult:
    valid: bool
    reason: str


class ChainRegistry:
    """Maps leaf fingerprints back to full chains.

    In a real handshake the server sends its certificate bytes; in the
    simulation only the leaf fingerprint travels in the
    :class:`~repro.net.packet.TlsPayload`, and the client recovers the full
    chain from this registry — including chains registered by interception
    middleboxes, so a MITM's substituted certificate is fully inspectable.
    """

    def __init__(self) -> None:
        self._by_fingerprint: dict[str, CertificateChain] = {}

    def register(self, chain: CertificateChain) -> CertificateChain:
        self._by_fingerprint[chain.leaf.fingerprint] = chain
        return chain

    def lookup(self, fingerprint: str) -> Optional[CertificateChain]:
        return self._by_fingerprint.get(fingerprint)


class CertificateStore:
    """The ground-truth mapping domain -> legitimate certificate chain.

    Built once when the world is constructed; the measurement suite's
    periodically collected 'groundtruth from a university IP' is a read of
    this store.  Issued chains are auto-registered in the chain registry.
    """

    def __init__(
        self, ca: CertificateAuthority, registry: ChainRegistry | None = None
    ) -> None:
        self.ca = ca
        self.registry = registry or ChainRegistry()
        self._chains: dict[str, CertificateChain] = {}

    def chain_for(self, host: str) -> CertificateChain:
        host = host.lower()
        if host not in self._chains:
            self._chains[host] = self.registry.register(self.ca.issue(host))
        return self._chains[host]

    def known_hosts(self) -> list[str]:
        return sorted(self._chains)


@dataclass(frozen=True)
class TlsHandshake:
    """The result of negotiating TLS with (whatever answered for) a host."""

    hostname: str
    presented_chain: Optional[CertificateChain]
    validation: Optional[ValidationResult]
    completed: bool

    @property
    def leaf_fingerprint(self) -> str:
        if self.presented_chain is None:
            return ""
        return self.presented_chain.leaf.fingerprint
