"""``python -m repro`` entry point."""

import os
import sys

from repro.cli import main

try:
    code = main()
    # Flush explicitly so a closed downstream pipe surfaces here, where
    # it can be handled, rather than as a traceback during shutdown.
    sys.stdout.flush()
except BrokenPipeError:
    # Downstream closed early (e.g. ``repro trace query ... | head``).
    # Point stdout at devnull so interpreter shutdown doesn't re-raise.
    os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    code = 0
sys.exit(code)
