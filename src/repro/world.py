"""World construction.

:class:`World` assembles the full simulated environment the measurement
suite runs against:

- the :class:`~repro.net.internet.Internet` with its latency model;
- origin web servers for the whole site catalogue (plus the header-echo
  service and the national block pages of Table 4);
- the DNS fabric: authoritative zone registry, public anycast resolvers
  (Google / Quad9 analogues), five root servers, and the tagged-hostname
  logging nameserver the recursive-origin test uses;
- 50 RIPE-Atlas-style anchors with known locations (ping references);
- the client and ground-truth ('university') measurement hosts;
- every requested VPN provider realised into vantage-point hosts at their
  *physical* locations, with per-provider resolvers and egress behaviours.

The build is deterministic in ``seed``; the default seed regenerates the
paper's numbers.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.dns.server import (
    LoggingNameserver,
    RecursiveResolverServer,
    install_dns_service,
)
from repro.dns.zone import ZoneRegistry
from repro.geoip import standard_databases
from repro.geoip.database import GeoIpDatabase
from repro.net.addresses import (
    IPv4Address,
    IPv4Network,
    NetworkSet,
    parse_address,
)
from repro.net.geo import CITY_COORDINATES, GeoPoint, city_location
from repro.net.host import Host
from repro.net.interface import Interface
from repro.net.internet import Internet
from repro.vpn.behaviors import (
    AdInjectionBehavior,
    CountryCensorshipBehavior,
    EgressBehavior,
    TransparentProxyBehavior,
)
from repro.vpn.catalog import provider_profiles
from repro.vpn.provider import (
    ProviderProfile,
    VantagePoint,
    VpnProvider,
)
from repro.vpn.server import VantagePointServer
from repro.web.server import (
    BLOCK_PAGES,
    BlockPageServer,
    HeaderEchoServer,
    OriginWebServer,
    install_web_service,
)
from repro.web.sites import SiteCatalog, default_catalog
from repro.web.tls import (
    CertificateAuthority,
    CertificateStore,
    ChainRegistry,
    TrustStore,
)
from repro.web.url import Url

# Well-known addresses in the simulation.
GOOGLE_DNS = "8.8.8.8"
GOOGLE_DNS_2 = "8.8.4.4"
QUAD9_DNS = "9.9.9.9"
ROOT_SERVERS = {
    "d.root-servers.net": "199.7.91.13",
    "e.root-servers.net": "192.203.230.10",
    "f.root-servers.net": "192.5.5.241",
    "j.root-servers.net": "192.58.128.30",
    "l.root-servers.net": "199.7.83.42",
}
PROBE_DOMAIN = "vpn-audit-probe.net"
HEADER_ECHO_DOMAIN = "header-echo-probe.net"
HEADER_ECHO_ADDRESS = "23.10.0.1"
STUN_SERVER_ADDRESS = "23.10.0.2"
STUN_SERVER_DOMAIN = "stun.webrtc-probe.net"
LAN_RESOLVER = "192.168.1.1"
CLIENT_ADDRESS = "192.168.1.2"
CLIENT_V6 = "2001:db8:100::2"
UNIVERSITY_ADDRESS = "192.168.2.2"

# Cities hosting the origin web servers, round-robin.
_SITE_CITIES = [
    "Ashburn", "New York", "Chicago", "Dallas", "Los Angeles", "Seattle",
    "London", "Frankfurt", "Amsterdam", "Paris", "Stockholm", "Singapore",
    "Tokyo", "Sydney", "Toronto", "Sao Paulo",
]

# The 50 RIPE-anchor cities (ping references with known locations).
_ANCHOR_CITIES = [
    "New York", "Los Angeles", "Chicago", "Miami", "Seattle", "Dallas",
    "Denver", "Toronto", "Montreal", "Vancouver", "Mexico City",
    "Sao Paulo", "Buenos Aires", "Santiago", "Bogota", "London",
    "Manchester", "Paris", "Frankfurt", "Berlin", "Amsterdam", "Brussels",
    "Luxembourg", "Zurich", "Vienna", "Prague", "Warsaw", "Bucharest",
    "Athens", "Rome", "Madrid", "Lisbon", "Dublin", "Stockholm", "Oslo",
    "Copenhagen", "Helsinki", "Moscow", "Istanbul", "Tel Aviv", "Dubai",
    "Johannesburg", "Nairobi", "Tokyo", "Seoul", "Hong Kong", "Singapore",
    "Mumbai", "Sydney", "Auckland",
]


@dataclass
class Anchor:
    """A ping reference host with a known location."""

    name: str
    address: str
    location: GeoPoint
    host: Host


class World:
    """The assembled simulation."""

    def __init__(self, seed: int = 2018) -> None:
        self.seed = seed
        self.internet = Internet()
        self.zones = ZoneRegistry()
        self.ca = CertificateAuthority("GlobalTrust")
        self.chain_registry = ChainRegistry()
        self.cert_store = CertificateStore(self.ca, self.chain_registry)
        self.trust_store = TrustStore([self.ca.root])
        self.sites: SiteCatalog = default_catalog()
        self.geoip_databases: list[GeoIpDatabase] = standard_databases()
        self.providers: dict[str, VpnProvider] = {}
        self.anchors: list[Anchor] = []
        self.site_servers: dict[str, OriginWebServer] = {}
        self.probe_nameserver: Optional[LoggingNameserver] = None
        self.public_resolvers: dict[str, RecursiveResolverServer] = {}
        self.client: Host = None  # type: ignore[assignment]
        self.university: Host = None  # type: ignore[assignment]
        self.ipv6_sites: list[tuple[str, str]] = []  # (domain, AAAA address)
        from repro.net.whois import WhoisRegistry

        self.whois = WhoisRegistry()
        self._vp_by_address: dict[str, VantagePoint] = {}
        self._vpn_blocks: list[IPv4Network] = []
        # Prefix-length-bucketed view of the same blocks; membership tests
        # are O(#distinct prefix lengths) instead of O(#blocks).
        self._vpn_block_set = NetworkSet()
        self._host_counter = itertools.count()

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        seed: int = 2018,
        provider_names: Optional[list[str]] = None,
        profiles: Optional[list[ProviderProfile]] = None,
    ) -> "World":
        """Build a world hosting either catalogue or caller-supplied providers.

        ``provider_names`` selects a catalogue subset (None = all 62);
        ``profiles`` instead realises the given ground-truth profiles
        verbatim — the path generated ecosystems
        (:mod:`repro.ecosystem.generate`) use, so a shard's world carries
        only that shard's providers.
        """
        if provider_names is not None and profiles is not None:
            raise ValueError(
                "pass provider_names or profiles, not both"
            )
        world = cls(seed=seed)
        world._build_whois_baseline()
        world._build_sites()
        world._build_dns_fabric()
        world._build_anchors()
        world._build_block_pages()
        world._build_measurement_hosts()
        if profiles is not None:
            for profile in profiles:
                world.add_provider(profile)
        else:
            world._build_providers(provider_names)
        return world

    def _build_whois_baseline(self) -> None:
        """Registrations for infrastructure and hosting space."""
        self.whois.register("23.32.0.0/16", "Origin Hosting Co", "US", 16625)
        self.whois.register("23.10.0.0/24", "Probe Services", "US", 64500)
        self.whois.register("8.8.8.0/24", "Public DNS Operator", "US", 15169)
        self.whois.register("9.9.9.0/24", "Quad9 Operator", "CH", 19281)
        self.whois.register(
            "198.51.100.0/24", "Anchor Measurement Net", "NL", 12654
        )
        self.whois.register(
            "203.0.113.0/24", "Anchor Measurement Net 2", "NL", 12654
        )
        from repro.vpn.catalog import HOSTING_POOLS

        hoster_names = {
            14061: "Digital Ocean-like",
            60781: "LeaseWeb-like",
            36351: "SoftLayer-like",
            20473: "Choopa-like",
            16276: "OVH-like",
            8100: "QuadraNet-like",
        }
        for prefix, asn in HOSTING_POOLS:
            self.whois.register(
                prefix, hoster_names.get(asn, f"Hosting AS{asn}"), "US", asn
            )

    # ------------------------------------------------------------------
    # Infrastructure hosts
    # ------------------------------------------------------------------
    def _make_host(
        self,
        name: str,
        city: str,
        address: str,
        network: str | None = None,
        capture: bool = False,
        country: str | None = None,
    ) -> Host:
        location = city_location(city)
        if country is not None:
            location = GeoPoint(
                lat=location.lat, lon=location.lon, country=country,
                city=location.city,
            )
        host = Host(name=name, location=location)
        interface = Interface(name="eth0")
        if ":" in address:
            interface.assign_ipv6(address, network)
        else:
            interface.assign_ipv4(address, network)
        interface.capture.enabled = capture
        host.add_interface(interface)
        host.routing.add_prefix("0.0.0.0/0", "eth0", metric=10)
        host.routing.add_prefix("::/0", "eth0", metric=10)
        self.internet.attach(host)
        return host

    def _build_sites(self) -> None:
        """One origin server host per catalogue site; some get IPv6."""
        v4_pool = IPv4Network.parse("23.32.0.0/16")
        v6_base = 0x2001_0DB8_2000 << 80
        for index, site in enumerate(self.sites):
            address = str(v4_pool.address_at(index + 1))
            city = _SITE_CITIES[index % len(_SITE_CITIES)]
            host = self._make_host(f"site:{site.domain}", city, address)
            server = OriginWebServer(
                site, self.cert_store, is_vpn_address=self.is_vpn_address
            )
            install_web_service(host, server.handle_http, server.handle_https)
            self.site_servers[site.domain] = server
            self.zones.register_host_record(site.domain, address)
            self.zones.register_host_record(f"www.{site.domain}", address)
            # The first eight DOM-set sites are dual-stack: these are the
            # "popular websites with IPv6 addresses" the IPv6-leakage test
            # contacts (Section 5.3.3).
            if site.in_dom_set and index < 8:
                v6 = str(
                    parse_address(
                        f"2001:db8:2000::{index + 1:x}"
                    )
                )
                iface = host.interfaces["eth0"]
                iface.assign_ipv6(v6, "2001:db8:2000::/64")
                self.internet.register_address(parse_address(v6), host)
                self.zones.register_host_record(site.domain, v6)
                self.ipv6_sites.append((site.domain, v6))

        # Header-echo service.
        echo_host = self._make_host(
            "svc:header-echo", "Ashburn", HEADER_ECHO_ADDRESS
        )
        echo = HeaderEchoServer(HEADER_ECHO_DOMAIN)
        install_web_service(echo_host, echo.handle_http)
        self.zones.register_host_record(HEADER_ECHO_DOMAIN, HEADER_ECHO_ADDRESS)

        # STUN service (the WebRTC leak test's reflexive-address oracle).
        from repro.web.stun import StunServer, install_stun_service

        stun_host = self._make_host(
            "svc:stun", "Ashburn", STUN_SERVER_ADDRESS
        )
        self.stun_server = StunServer()
        install_stun_service(stun_host, self.stun_server)
        self.zones.register_host_record(
            STUN_SERVER_DOMAIN, STUN_SERVER_ADDRESS
        )

    def _build_dns_fabric(self) -> None:
        # Public anycast resolvers. (Anycast collapses to a single
        # well-connected instance each; placement at major hubs.)
        for name, address, city in (
            ("google-public-dns", GOOGLE_DNS, "Ashburn"),
            ("google-public-dns-2", GOOGLE_DNS_2, "Frankfurt"),
            ("quad9", QUAD9_DNS, "Zurich"),
        ):
            host = self._make_host(f"dns:{name}", city, address)
            resolver = RecursiveResolverServer(
                self.zones, name=name, identity=address
            )
            install_dns_service(host, resolver)
            self.public_resolvers[address] = resolver

        # Root servers: ping/traceroute references only, but they also run
        # a resolver so probes to udp/53 are answerable.
        root_cities = ["Ashburn", "Amsterdam", "San Jose", "Ashburn", "London"]
        for (name, address), city in zip(ROOT_SERVERS.items(), root_cities):
            host = self._make_host(f"dns:{name}", city, address)
            resolver = RecursiveResolverServer(self.zones, name=name)
            install_dns_service(host, resolver)

        # The probe domain's logging authoritative server (Section 5.3.2).
        probe_host = self._make_host("dns:probe", "Chicago", "192.0.2.10")
        zone = self.zones.zone(PROBE_DOMAIN)
        self.probe_nameserver = LoggingNameserver(zone)
        install_dns_service(probe_host, self.probe_nameserver)
        # Recursive resolvers walk to the logging server for this domain,
        # revealing their identity in its query log (Section 5.3.2).
        self.zones.delegate(PROBE_DOMAIN, self.probe_nameserver)
        self.zones.register_host_record(
            f"ns1.{PROBE_DOMAIN}", "192.0.2.10"
        )

    def _build_anchors(self) -> None:
        pool = IPv4Network.parse("198.51.100.0/24")
        extra_pool = IPv4Network.parse("203.0.113.0/24")
        for index, city in enumerate(_ANCHOR_CITIES):
            if index < 254:
                source = pool if index < 127 else extra_pool
                address = str(source.address_at((index % 127) + 1))
            host = self._make_host(f"anchor:{city}", city, address)
            self.anchors.append(
                Anchor(
                    name=f"anchor-{index:02d}-{city.lower().replace(' ', '-')}",
                    address=address,
                    location=host.location,
                    host=host,
                )
            )
            self.zones.register_host_record(
                f"anchor-{index:02d}.{PROBE_DOMAIN}", address
            )

    def _build_block_pages(self) -> None:
        block_cities = {
            "TR": "Ankara", "KR": "Seoul", "RU": "Moscow",
            "NL": "Amsterdam", "TH": "Bangkok",
        }
        allocated = itertools.count(1)
        for block_id, (url_text, country) in BLOCK_PAGES.items():
            url = Url.parse(url_text)
            if _is_ip_literal(url.host):
                address = url.host
            else:
                address = f"203.0.113.{200 + next(allocated)}"
                self.zones.register_host_record(url.host, address)
                if url.host.startswith("www."):
                    self.zones.register_host_record(url.host[4:], address)
            host = self._make_host(
                f"blockpage:{block_id}", block_cities[country], address
            )
            server = BlockPageServer(block_id)
            install_web_service(
                host, server.handle_http, server.handle_https(self.cert_store)
            )

    def _build_measurement_hosts(self) -> None:
        # The LAN resolver the client uses before any VPN is connected
        # (and during a DNS leak: it is on-link, bypassing tunnel routes).
        lan_dns = self._make_host("lan-resolver", "Chicago", LAN_RESOLVER)
        resolver = RecursiveResolverServer(
            self.zones, name="lan-resolver", identity=LAN_RESOLVER
        )
        install_dns_service(lan_dns, resolver)
        self.public_resolvers[LAN_RESOLVER] = resolver

        self.client = self._client_host("client", CLIENT_ADDRESS, CLIENT_V6)
        self.university = self._client_host(
            "university", UNIVERSITY_ADDRESS, "2001:db8:101::2"
        )

    def _client_host(self, name: str, v4: str, v6: str) -> Host:
        host = Host(name=name, location=city_location("Chicago"))
        interface = Interface(name="en0")
        interface.assign_ipv4(v4, "192.168.0.0/16")
        interface.assign_ipv6(v6, "2001:db8:100::/48")
        interface.capture.enabled = True
        host.add_interface(interface)
        host.routing.add_prefix("192.168.0.0/16", "en0", metric=0)
        host.routing.add_prefix("0.0.0.0/0", "en0", metric=10)
        host.routing.add_prefix("::/0", "en0", metric=10)
        host.set_dns_servers([LAN_RESOLVER])
        self.internet.attach(host)
        return host

    # ------------------------------------------------------------------
    # Providers
    # ------------------------------------------------------------------
    def _build_providers(self, names: Optional[list[str]]) -> None:
        profiles = provider_profiles()
        if names is not None:
            wanted = set(names)
            profiles = [p for p in profiles if p.name in wanted]
            missing = wanted - {p.name for p in profiles}
            if missing:
                raise KeyError(f"unknown providers: {sorted(missing)}")
        for profile in profiles:
            self.providers[profile.name] = self._realise_provider(profile)

    def add_provider(self, profile: ProviderProfile) -> VpnProvider:
        """Realise an extra (e.g. synthetic) provider into this world.

        Used by tests and extensions to study providers beyond the
        catalogue — dual-stack tunnels, P2P relays, custom behaviours.
        """
        if profile.name in self.providers:
            raise ValueError(f"provider {profile.name!r} already exists")
        provider = self._realise_provider(profile)
        self.providers[profile.name] = provider
        return provider

    def _realise_provider(self, profile: ProviderProfile) -> VpnProvider:
        provider = VpnProvider(profile=profile)
        resolver = RecursiveResolverServer(
            self.zones, name=f"resolver:{profile.name}"
        )
        for spec in profile.vantage_points:
            address = parse_address(spec.address)
            existing = self.internet.host_for(address)
            if existing is not None:
                # Shared physical server (Boxpn/Anonine resell the same
                # machines): reuse the host and its tunnel service.
                host = existing
                server = getattr(host, "_vantage_server")
            else:
                host = Host(
                    name=f"vp{next(self._host_counter)}:{spec.hostname}",
                    location=self._physical_location(spec),
                )
                interface = Interface(name="eth0")
                interface.assign_ipv4(spec.address, spec.block)
                interface.capture.enabled = False
                host.add_interface(interface)
                host.routing.add_prefix("0.0.0.0/0", "eth0", metric=10)
                egress_v6 = None
                if profile.capabilities.tunnels_ipv6:
                    # Dual-stack vantage point: deterministic v6 egress.
                    v6_text = (
                        "2001:db8:3000::" + spec.address.replace(".", ":")
                    )
                    interface.assign_ipv6(v6_text, "2001:db8:3000::/48")
                    host.routing.add_prefix("::/0", "eth0", metric=10)
                    egress_v6 = parse_address(v6_text)
                self.internet.attach(host)
                behaviors = self._behaviors_for(profile, spec)
                server = VantagePointServer(
                    host=host,
                    egress_address=address,
                    provider_name=profile.name,
                    claimed_country=spec.claimed_country,
                    resolver=resolver,
                    resolver_address=provider.dns_resolver_address,
                    behaviors=behaviors,
                    egress_address_v6=egress_v6,
                )
                host._vantage_server = server  # type: ignore[attr-defined]
            self.zones.register_host_record(spec.hostname, spec.address)
            # WHOIS: the endpoint address is SWIPed to the provider (or,
            # for virtual endpoints, registered to the advertised country —
            # part of the geo-spoofing game). The enclosing block stays
            # registered to the hosting company, so providers sharing a
            # /24 don't clobber each other's records.
            self.whois.register(
                f"{spec.address}/32",
                organisation=f"{profile.name} Networks",
                country=(
                    spec.registered_country or
                    self._physical_location(spec).country
                ),
                asn=spec.asn,
            )
            vantage_point = VantagePoint(
                spec=spec,
                provider_name=profile.name,
                address=address,  # type: ignore[arg-type]
                block=IPv4Network.parse(spec.block),
                host=host,
                server=server,
                physical_location=host.location,
                claimed_location=self._claimed_location(spec),
            )
            provider.vantage_points.append(vantage_point)
            self._vp_by_address[spec.address] = vantage_point
            self._vpn_blocks.append(vantage_point.block)
            self._vpn_block_set.add(vantage_point.block)
        return provider

    def _physical_location(self, spec) -> GeoPoint:
        point = CITY_COORDINATES.get(spec.physical_city)
        if point is None:
            from repro.net.geo import country_centroid

            point = country_centroid(spec.claimed_country)
        return point

    def _claimed_location(self, spec) -> GeoPoint:
        point = CITY_COORDINATES.get(spec.claimed_city)
        if point is not None:
            # The advertised location keeps the advertised country even when
            # the city name collides across countries.
            return GeoPoint(
                lat=point.lat, lon=point.lon,
                country=spec.claimed_country, city=point.city,
            )
        from repro.net.geo import country_centroid

        return country_centroid(spec.claimed_country)

    def _behaviors_for(self, profile: ProviderProfile, spec) -> list[EgressBehavior]:
        behaviors: list[EgressBehavior] = []
        if spec.censorship is not None:
            block_url, _country = BLOCK_PAGES[spec.censorship]
            censored = set(
                self.sites.censored_domains_for_country(spec.claimed_country)
            )
            behaviors.append(
                CountryCensorshipBehavior(block_url, censored)
            )
        if profile.behaviors.transparent_proxy:
            behaviors.append(TransparentProxyBehavior())
        if profile.behaviors.ad_injection:
            behaviors.append(AdInjectionBehavior(profile.website_domain))
        if profile.behaviors.tls_interception:
            from repro.vpn.behaviors import TlsInterceptionBehavior

            behaviors.append(
                TlsInterceptionBehavior(
                    f"{profile.name} Root", self.chain_registry
                )
            )
        if profile.behaviors.tls_stripping:
            from repro.vpn.behaviors import TlsStrippingBehavior

            behaviors.append(TlsStrippingBehavior())
        return behaviors

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def provider(self, name: str) -> VpnProvider:
        return self.providers[name]

    def vantage_point_for(self, address: str) -> Optional[VantagePoint]:
        return self._vp_by_address.get(address)

    def is_vpn_address(self, address: str) -> bool:
        """Whether an address falls in a known VPN egress block.

        This is the blacklist web services use to discriminate against VPN
        users (Section 6.1.2: "Such IP blocks are therefore easy to
        blacklist").
        """
        try:
            parsed = parse_address(address)
        except ValueError:
            return False
        if not isinstance(parsed, IPv4Address):
            return False
        return parsed in self._vpn_block_set


def _is_ip_literal(host: str) -> bool:
    parts = host.split(".")
    return len(parts) == 4 and all(p.isdigit() for p in parts)
