"""Evidence chains: machine-readable provenance for audit verdicts.

A flagged verdict in a :class:`~repro.core.harness.ProviderReport` used to
be a bare boolean — ``LEAKED`` with no pointer to the packets that prove
it.  An :class:`EvidenceChain` closes that gap: while a test runs inside
its trace span, the harness and the leakage tests record the span IDs of
the incriminating trace records (the ``packet_send`` events of leaked
packets, plus free-form notes for observations that are not packets), so
every verdict links to the exact records in the JSONL trace that justify
it.  ``repro report explain <provider>`` renders the chains with the
referenced records resolved.

Two invariants keep evidence honest:

- **Span IDs always resolve.**  Every ID in a chain is either the test's
  own span or a ``packet_send`` event recorded by the same tracer in the
  same unit, so looking the chain up in the study's trace always succeeds
  (asserted in ``tests/test_evidence.py``).
- **Emission is untouched.**  Evidence is *consumption*: chains are built
  from span IDs the tracer already assigned.  The JSONL trace bytes and
  the study archive bytes are identical with and without this module —
  chains ride on the in-memory result objects and in
  ``ProviderReport.to_dict()``, never in the per-vantage-point archive
  files (the golden fingerprint in ``tests/test_determinism.py`` pins
  this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:
    from repro.net.packet import Packet
    from repro.obs.session import Observability
    from repro.obs.trace import TraceRecord


@dataclass
class EvidenceLink:
    """One incriminating trace record, by span ID."""

    span_id: str
    kind: str  # the linked record's kind, e.g. "packet_send"
    note: str = ""

    def to_dict(self) -> dict:
        return {"span_id": self.span_id, "kind": self.kind, "note": self.note}

    @classmethod
    def from_dict(cls, data: dict) -> "EvidenceLink":
        return cls(
            span_id=data["span_id"],
            kind=data["kind"],
            note=data.get("note", ""),
        )


@dataclass
class EvidenceChain:
    """Why one test reached its verdict, as resolvable trace pointers.

    ``test_span_id`` anchors the chain to the test's own span (always
    present, so even a clean verdict documents *what was checked*);
    ``links`` point at the incriminating leaf records; ``notes`` carry
    observations with no packet of their own (an exposed WebRTC host
    candidate, an injected header name).
    """

    verdict: str  # which verdict this justifies, e.g. "dns_leakage"
    vantage: str  # vantage-point hostname the test ran at
    test_span_id: str
    links: list[EvidenceLink] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def span_ids(self) -> list[str]:
        """Every span ID the chain references (test span first)."""
        return [self.test_span_id] + [link.span_id for link in self.links]

    def resolve(
        self, records: Iterable["TraceRecord"]
    ) -> dict[str, Optional["TraceRecord"]]:
        """Map each referenced span ID to its trace record (or None)."""
        wanted = set(self.span_ids)
        found: dict[str, Optional["TraceRecord"]] = dict.fromkeys(wanted)
        for record in records:
            span = record.get("span_id")
            if span in wanted:
                found[span] = record
        return found

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "verdict": self.verdict,
            "vantage": self.vantage,
            "test_span_id": self.test_span_id,
            "links": [link.to_dict() for link in self.links],
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EvidenceChain":
        return cls(
            verdict=data["verdict"],
            vantage=data["vantage"],
            test_span_id=data["test_span_id"],
            links=[
                EvidenceLink.from_dict(raw) for raw in data.get("links", [])
            ],
            notes=list(data.get("notes", [])),
        )

    # ------------------------------------------------------------------
    def render(
        self, records: Optional[Iterable["TraceRecord"]] = None
    ) -> str:
        """Human-readable chain; resolves IDs when *records* is given."""
        resolved = self.resolve(records) if records is not None else {}
        lines = [f"{self.verdict} @ {self.vantage}  [span {self.test_span_id}]"]
        for link in self.links:
            line = f"  -> {link.kind} {link.span_id}"
            if link.note:
                line += f"  {link.note}"
            record = resolved.get(link.span_id)
            if record is not None:
                attrs = record.get("attrs") or {}
                summary = " ".join(
                    f"{key}={attrs[key]}"
                    for key in ("host", "status", "protocol", "dst")
                    if key in attrs
                )
                if summary:
                    line += f"  ({summary})"
            lines.append(line)
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


class EvidenceCollector:
    """Gathers evidence links while a test span is open.

    Built through :meth:`TestContext.evidence`; inert when observability
    or tracing is off, or when no unit span is open (the plain
    ``repro audit`` path) — then :meth:`chain` returns ``None`` and the
    result serialises exactly as before.  Packet links resolve through
    the session's per-unit packet→span map
    (:meth:`~repro.obs.session.Observability.span_for_packet`), so a test
    can point at a captured packet object and get the span ID of the
    ``packet_send`` event the tracer recorded for it.
    """

    def __init__(
        self,
        session: "Optional[Observability]",
        verdict: str,
        vantage: str,
    ) -> None:
        self._session = session
        self.verdict = verdict
        self.vantage = vantage
        self._span: Optional[str] = (
            session.current_test_span_id if session is not None else None
        )
        self._links: list[EvidenceLink] = []
        self._seen: set[str] = set()
        self._notes: list[str] = []

    @property
    def enabled(self) -> bool:
        return self._span is not None

    def packet(self, packet: "Packet", note: str = "") -> bool:
        """Link the ``packet_send`` record of *packet*; True when linked."""
        if self._span is None:
            return False
        assert self._session is not None
        span = self._session.span_for_packet(packet)
        if span is None:
            # Packet events disabled (trace_packets=False): keep the fact
            # as a note so the chain still explains the verdict.
            if note:
                self.note(note)
            return False
        if span not in self._seen:
            self._seen.add(span)
            self._links.append(EvidenceLink(span, "packet_send", note))
        return True

    def link(self, span_id: str, kind: str, note: str = "") -> None:
        if self._span is None or span_id in self._seen:
            return
        self._seen.add(span_id)
        self._links.append(EvidenceLink(span_id, kind, note))

    def note(self, text: str) -> None:
        if self._span is not None:
            self._notes.append(text)

    def chain(self) -> Optional[EvidenceChain]:
        """The finished chain, or None when collection was disabled."""
        if self._span is None:
            return None
        return EvidenceChain(
            verdict=self.verdict,
            vantage=self.vantage,
            test_span_id=self._span,
            links=list(self._links),
            notes=list(self._notes),
        )


# ----------------------------------------------------------------------
# Harness-side default evidence for results that did not record their own
# ----------------------------------------------------------------------
def _incriminating_notes(result: object) -> list[str]:
    """Duck-typed extraction of what a result found suspicious."""
    notes: list[str] = []
    # TLS interception / downgrade observations.
    for obs in getattr(result, "observations", ()):
        if getattr(obs, "matches_ground_truth", None) is False:
            notes.append(
                f"certificate mismatch for {obs.hostname}: "
                f"saw {obs.certificate_fingerprint}"
            )
        if getattr(obs, "downgraded", False):
            notes.append(f"https downgraded for {obs.hostname}")
    # Transparent-proxy header tampering.
    for header in getattr(result, "headers_injected", ()):
        notes.append(f"header injected: {header}")
    for header in getattr(result, "headers_dropped", ()):
        notes.append(f"header dropped: {header}")
    if getattr(result, "headers_modified", False):
        style = getattr(result, "modification_style", "")
        notes.append(
            "headers modified" + (f" ({style})" if style else "")
        )
    # DOM injection.
    for page in getattr(result, "pages", ()):
        for element in getattr(page, "injected_elements", ()):
            notes.append(f"injected into {page.url}: {element}")
    # DNS manipulation.
    for entry in getattr(result, "entries", ()):
        if getattr(entry, "suspicious", False):
            notes.append(
                f"suspicious answers for {entry.hostname}: "
                f"{list(entry.vpn_answers)} vs "
                f"{list(entry.reference_answers)}"
            )
    return notes


def attach_default_evidence(
    session: "Optional[Observability]",
    name: str,
    vantage: str,
    result: object,
) -> None:
    """Give *result* a chain if it supports one and recorded none itself.

    Called by the harness inside the test span.  Leakage tests build
    richer chains (with packet links) themselves; this covers the
    manipulation/interception results, whose incriminating material is
    observational (certificates, headers, DOM diffs) rather than a
    captured packet.
    """
    if getattr(result, "evidence", False) is not None:
        return  # no evidence field, or the test already recorded a chain
    collector = EvidenceCollector(session, verdict=name, vantage=vantage)
    if not collector.enabled:
        return
    for note in _incriminating_notes(result):
        collector.note(note)
    result.evidence = collector.chain()  # type: ignore[attr-defined]


# ----------------------------------------------------------------------
def explain_document(report, trace_records=None) -> dict:
    """Machine-readable evidence view of one provider's audit.

    The single serialization path behind both ``repro report explain
    --json`` and the serve daemon's ``GET /results/{id}/evidence``: the
    verdict booleans, plus the evidence chains exactly as
    :meth:`repro.core.harness.ProviderReport.to_dict` emits them under
    ``"evidence"`` (hostname -> test field -> chain dict).  When
    *trace_records* is given, each chain gains a ``"spans"`` map resolving
    its span IDs to the underlying trace records, so the document is
    self-contained for scripts that never load the trace.
    """
    from repro.runtime.scheduler import VERDICT_FIELDS

    evidence = report.to_dict().get("evidence", {})
    document = {
        "provider": report.provider,
        "verdicts": {
            name: getattr(report, name) for name in VERDICT_FIELDS
        },
        "evidence": evidence,
    }
    if trace_records is not None:
        by_span = {
            record.get("span_id"): record
            for record in trace_records
            if record.get("span_id")
        }
        for chains in evidence.values():
            for chain in chains.values():
                span_ids = [chain["test_span_id"]] + [
                    link["span_id"] for link in chain.get("links", ())
                ]
                chain["spans"] = {
                    span_id: by_span.get(span_id) for span_id in span_ids
                }
    return document
