"""Runtime resource sampling and the run ledger.

Where :mod:`repro.obs.stages` answers "where does delivery time go?",
this module answers "what is the *machine* doing while the study runs?"
— resident set size, dispatch queue depth, in-flight units, how many
shard worlds each worker is holding, and how well the per-worker world
LRU is doing.

Two pieces:

- :class:`ResourceSampler` — a coordinator-side background ticker that
  calls a probe every ``interval_s`` and publishes the resulting
  :class:`~repro.runtime.events.ResourceSample` on the executor's event
  bus.  Worker-side numbers arrive separately: each completed unit
  carries a small resource payload home with its results, which the
  executor publishes as a :class:`~repro.runtime.events.WorkerSample`.

- :class:`RunLedger` — a bus subscriber that persists the telemetry
  stream as JSON Lines (``ledger.jsonl``), one timestamped record per
  event.  The ledger rides *alongside* the archive: it is ``.jsonl``
  precisely so :func:`repro.core.archive.archive_fingerprint` (which
  hashes ``*.json``) never sees it — a ledgered run stays byte-identical
  to an unledgered one.

Nothing here touches the simulation: samples are read from the OS and
the executor's own bookkeeping, never from world state, and none of it
flows into deterministic metric series (wall-clock-like, resource
series live under ``runtime.*`` gauges only).
"""

from __future__ import annotations

import json
import pathlib
import threading
import time
from typing import TYPE_CHECKING, Callable, Optional

from repro.runtime.events import event_to_dict

if TYPE_CHECKING:
    from repro.runtime.events import Event, EventBus

_PAGE_SIZE: Optional[int] = None


def rss_kb() -> int:
    """Current resident set size of this process, in kilobytes.

    Reads ``/proc/self/statm`` (current RSS) where available; falls back
    to ``getrusage`` peak RSS elsewhere.  Returns 0 when neither source
    works — telemetry must never take a run down.
    """
    global _PAGE_SIZE
    try:
        with open("/proc/self/statm", "rb") as handle:
            pages = int(handle.read().split()[1])
        if _PAGE_SIZE is None:
            import resource

            _PAGE_SIZE = resource.getpagesize()
        return pages * _PAGE_SIZE // 1024
    except (OSError, ValueError, IndexError, ImportError):
        pass
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports kilobytes, macOS bytes.
        return peak // 1024 if peak > 1 << 32 else peak
    except Exception:  # pragma: no cover - exotic platforms
        return 0


class ResourceSampler:
    """Background ticker publishing resource samples onto an event bus.

    ``probe(elapsed_s)`` builds the sample event (the executor's probe
    reads its own live queue/in-flight counters plus :func:`rss_kb`);
    the sampler only owns the cadence.  :meth:`stop` publishes one final
    sample before joining, so even a run shorter than ``interval_s``
    lands at least one record in the ledger.
    """

    def __init__(
        self,
        bus: "EventBus",
        probe: Callable[[float], "Event"],
        interval_s: float = 0.5,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        self.bus = bus
        self.probe = probe
        self.interval_s = interval_s
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started_at = 0.0

    def _sample_once(self) -> None:
        try:
            event = self.probe(time.monotonic() - self._started_at)
        except Exception:  # noqa: BLE001 - telemetry must not kill the run
            return
        self.bus.publish(event)

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self._sample_once()

    def start(self) -> None:
        if self._thread is not None:
            return
        self._started_at = time.monotonic()
        self._thread = threading.Thread(
            target=self._run, name="repro-resource-sampler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the ticker; always emits one final sample."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        self._sample_once()


class RunLedger:
    """Persist the telemetry event stream as JSON Lines.

    Subscribes to the executor's bus and appends one record per
    telemetry-relevant event — study lifecycle, per-unit completion,
    coordinator resource samples, worker samples — each stamped with
    seconds elapsed since the ledger opened.  Rendered back by
    ``repro ledger show`` (:func:`render_ledger`).
    """

    #: Event class names worth persisting.  Per-packet noise (UnitMetrics
    #: snapshots) stays off the ledger; it has its own channel.
    RECORDED = frozenset(
        {
            "StudyStarted",
            "StudyFinished",
            "StudyHalted",
            "UnitFinished",
            "UnitFailed",
            "ResourceSample",
            "WorkerSample",
        }
    )

    def __init__(self, path: str | pathlib.Path, bus: "EventBus") -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("w", encoding="utf-8")
        self._lock = threading.Lock()
        self._t0 = time.monotonic()
        self.bus = bus
        bus.subscribe(self._handle_event, replay=True)

    def _handle_event(self, event: "Event") -> None:
        if type(event).__name__ not in self.RECORDED:
            return
        data = event_to_dict(event)
        if data is None:
            return
        record = {"t": round(time.monotonic() - self._t0, 3)}
        record.update(data)
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            if self._handle.closed:
                return
            self._handle.write(line + "\n")

    def close(self) -> None:
        self.bus.unsubscribe(self._handle_event)
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
                self._handle.close()


def read_ledger(path: str | pathlib.Path) -> list[dict]:
    """Read a ledger back; corrupt (torn) lines are skipped."""
    entries: list[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                entries.append(record)
    return entries


def ledger_summary(entries: list[dict]) -> dict:
    """Aggregate a ledger into the numbers the renderer (and CI) checks."""
    coordinator = [e for e in entries if e.get("event") == "ResourceSample"]
    workers = [e for e in entries if e.get("event") == "WorkerSample"]
    units = [e for e in entries if e.get("event") == "UnitFinished"]
    finished = next(
        (e for e in entries if e.get("event") == "StudyFinished"), None
    )

    def peak(records: list[dict], key: str) -> float:
        return max((r.get(key) or 0 for r in records), default=0)

    worker_names = sorted({w.get("worker", "?") for w in workers})
    return {
        "samples": len(coordinator),
        "worker_samples": len(workers),
        "units_finished": len(units),
        "rss_peak_kb": int(
            max(peak(coordinator, "rss_kb"), peak(workers, "rss_kb"))
        ),
        "queue_depth_peak": int(peak(coordinator, "queue_depth")),
        "in_flight_peak": int(peak(coordinator, "in_flight")),
        "shards_resident_peak": int(
            max(
                peak(coordinator, "shards_resident"),
                peak(workers, "shards_resident"),
            )
        ),
        "suite_hits": int(
            max(peak(coordinator, "suite_hits"), peak(workers, "suite_hits"))
        ),
        "suite_misses": int(
            max(
                peak(coordinator, "suite_misses"),
                peak(workers, "suite_misses"),
            )
        ),
        "workers": worker_names,
        "wall_s": finished.get("wall_s") if finished else None,
    }


def render_ledger(entries: list[dict]) -> str:
    """Human-readable summary of one run ledger."""
    if not entries:
        return "ledger: empty"
    summary = ledger_summary(entries)
    hits, misses = summary["suite_hits"], summary["suite_misses"]
    lookups = hits + misses
    hit_rate = f"{hits / lookups * 100:.1f}%" if lookups else "-"
    lines = [
        "run ledger:",
        f"  coordinator samples     : {summary['samples']}",
        f"  worker samples          : {summary['worker_samples']}",
        f"  units finished          : {summary['units_finished']}",
        f"  peak RSS                : {summary['rss_peak_kb']:,} kB",
        f"  peak queue depth        : {summary['queue_depth_peak']}",
        f"  peak units in flight    : {summary['in_flight_peak']}",
        f"  peak shards resident    : {summary['shards_resident_peak']}",
        f"  world-suite LRU         : {hits} hits / {misses} misses"
        f" ({hit_rate})",
    ]
    if summary["workers"]:
        lines.append(
            f"  workers seen            : {', '.join(summary['workers'])}"
        )
    if summary["wall_s"] is not None:
        lines.append(f"  study wall              : {summary['wall_s']:.1f}s")
    tail = [e for e in entries if e.get("event") == "ResourceSample"][-5:]
    if tail:
        lines.append("  recent samples (t, rss kB, queue, in-flight):")
        for record in tail:
            lines.append(
                f"    {record.get('t', 0):8.2f}s"
                f"  {record.get('rss_kb', 0):>10,}"
                f"  {record.get('queue_depth', 0):>5}"
                f"  {record.get('in_flight', 0):>5}"
            )
    return "\n".join(lines)


__all__ = [
    "ResourceSampler",
    "RunLedger",
    "ledger_summary",
    "read_ledger",
    "render_ledger",
    "rss_kb",
]
