"""Trace analytics: flow reconstruction, a filter grammar, and run diffs.

Pure consumers of the JSONL trace (:mod:`repro.obs.trace`): nothing here
touches emission, so analytics can grow without ever perturbing the
byte-identical traces the determinism tests pin.

Three tools:

- :func:`reconstruct_flows` rebuilds per-packet *causal hop chains* from
  the flat event list.  The simulated internet emits a ``packet_send``
  event only after the destination host finished processing the packet,
  so nested deliveries — a tunnel forwarding the inner packet, a resolver
  recursing — appear in the trace *before* the hop that caused them.
  Walking each test span's events with a pending stack therefore recovers
  the causal tree exactly, with no packet IDs in the records.
- :func:`parse_query`/:func:`query_trace` implement the small
  deterministic filter grammar behind ``repro trace query``
  (``kind=packet_send status=leaked host=*client*``).
- :func:`diff_traces` aligns two runs by their seeded span IDs — the same
  config always derives the same IDs, so alignment is exact, not
  heuristic — and reports added/removed/attr-changed spans.  It turns the
  golden-fingerprint determinism test's "bytes differ" into "these three
  spans changed, here's how".
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from repro.obs.trace import TraceRecord

# ----------------------------------------------------------------------
# Flow reconstruction
# ----------------------------------------------------------------------


@dataclass
class Hop:
    """One packet's terminal fate, with the deliveries it caused nested."""

    record: TraceRecord
    children: list["Hop"] = field(default_factory=list)
    annotations: list[TraceRecord] = field(default_factory=list)

    @property
    def host(self) -> str:
        return str((self.record.get("attrs") or {}).get("host", "?"))

    @property
    def status(self) -> str:
        return str((self.record.get("attrs") or {}).get("status", "?"))

    def depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)


@dataclass
class TestFlows:
    """All reconstructed flows under one parent span."""

    unit: str
    test: str
    vantage: str
    span_id: str
    flows: list[Hop] = field(default_factory=list)

    @property
    def packet_count(self) -> int:
        def count(hop: Hop) -> int:
            return 1 + sum(count(child) for child in hop.children)

        return sum(count(flow) for flow in self.flows)


def _group_by_parent(
    records: Iterable[TraceRecord],
) -> dict[Optional[str], list[TraceRecord]]:
    grouped: dict[Optional[str], list[TraceRecord]] = {}
    for record in records:
        grouped.setdefault(record.get("parent_id"), []).append(record)
    return grouped


def _build_flows(events: list[TraceRecord]) -> list[Hop]:
    """Recover the causal hop tree from one span's events, in order.

    Two invariants drive the reconstruction:

    - **Inside-out emission** (from ``Internet.deliver``): a
      ``packet_send`` event is emitted after the destination finished
      processing, so the deliveries a hop *caused* (a vantage point
      forwarding a decapsulated query, a resolver recursing) appear in
      the trace immediately before the hop itself.
    - **One driving host per span**: tests are driven serially from the
      measurement client, so every outermost hop has the same source
      host — and since nothing after the span's final event could claim
      it, that final event is an outermost hop, which identifies the
      origin host without any out-of-band knowledge.

    An origin-host event is therefore a completed root claiming every
    pending hop as its causal subtree; any other host's event claims the
    trailing pending hops it nests above (stopping at its own host —
    consecutive same-host deliveries are siblings, not ancestors).
    ``dns_query`` events are emitted by the querying host after the
    answer arrived, so they annotate the hop that carried the query: the
    just-completed root (or the innermost pending hop mid-flow).
    """
    packet_events = [e for e in events if e.get("kind") == "packet_send"]
    origin: Optional[str] = None
    if packet_events:
        origin = str(
            (packet_events[-1].get("attrs") or {}).get("host", "?")
        )
    pending: list[Hop] = []
    roots: list[Hop] = []
    for event in events:
        kind = event.get("kind")
        if kind == "packet_send":
            host = str((event.get("attrs") or {}).get("host", "?"))
            if host == origin:
                roots.append(Hop(record=event, children=list(pending)))
                pending.clear()
            else:
                claimed: list[Hop] = []
                while pending and pending[-1].host != host:
                    claimed.append(pending.pop())
                claimed.reverse()
                pending.append(Hop(record=event, children=claimed))
        elif kind == "dns_query":
            if pending:
                pending[-1].annotations.append(event)
            elif roots:
                roots[-1].annotations.append(event)
            else:
                # A query with no observable packet (e.g. cache hit):
                # stands alone as an annotation-only hop.
                roots.append(Hop(record=event))
        else:
            # Other leaf kinds (flight_dump, ...) neither open nor claim.
            continue
    roots.extend(pending)
    return roots


def reconstruct_flows(records: list[TraceRecord]) -> list[TestFlows]:
    """Group packet/DNS events under their test spans as causal flows.

    Events recorded directly under a *unit* span (outside any test, e.g.
    connect-time traffic) are grouped under a pseudo-test named
    ``(unit)``.
    """
    by_parent = _group_by_parent(records)
    by_id = {r["span_id"]: r for r in records if "span_id" in r}
    flows: list[TestFlows] = []
    units = [r for r in records if r.get("kind") == "unit"]
    for unit in units:
        unit_events: list[TraceRecord] = []
        tests: list[TraceRecord] = []
        for child in by_parent.get(unit["span_id"], []):
            if child.get("kind") == "test":
                tests.append(child)
            elif child.get("kind") in ("packet_send", "dns_query"):
                unit_events.append(child)
        for test in tests:
            events = [
                r
                for r in by_parent.get(test["span_id"], [])
                if r.get("kind") in ("packet_send", "dns_query")
            ]
            if not events:
                continue
            flows.append(
                TestFlows(
                    unit=str(unit.get("name", "?")),
                    test=str(test.get("name", "?")),
                    vantage=str(
                        (test.get("attrs") or {}).get("vantage", "?")
                    ),
                    span_id=str(test["span_id"]),
                    flows=_build_flows(events),
                )
            )
        if unit_events:
            flows.append(
                TestFlows(
                    unit=str(unit.get("name", "?")),
                    test="(unit)",
                    vantage="?",
                    span_id=str(unit["span_id"]),
                    flows=_build_flows(unit_events),
                )
            )
    # Orphan test spans (damaged trace missing its unit record) still
    # deserve reconstruction rather than silent omission.
    seen_tests = {f.span_id for f in flows}
    for record in records:
        if record.get("kind") != "test":
            continue
        if record["span_id"] in seen_tests:
            continue
        if record.get("parent_id") in by_id:
            continue
        events = [
            r
            for r in by_parent.get(record["span_id"], [])
            if r.get("kind") in ("packet_send", "dns_query")
        ]
        if events:
            flows.append(
                TestFlows(
                    unit="?",
                    test=str(record.get("name", "?")),
                    vantage=str(
                        (record.get("attrs") or {}).get("vantage", "?")
                    ),
                    span_id=str(record["span_id"]),
                    flows=_build_flows(events),
                )
            )
    return flows


def _render_hop(hop: Hop, indent: int, lines: list[str]) -> None:
    attrs = hop.record.get("attrs") or {}
    pad = "  " * indent
    if hop.record.get("kind") == "dns_query":
        lines.append(
            f"{pad}? dns {attrs.get('qname', '?')}/{attrs.get('qtype', '?')}"
            f" via {attrs.get('resolver', '?')} -> {attrs.get('rcode', '?')}"
        )
        return
    detail = attrs.get("detail", "")
    lines.append(
        f"{pad}- {hop.host}: {attrs.get('protocol', '?')} -> "
        f"{attrs.get('dst', '?')} [{hop.status}]"
        + (f" ({detail})" if detail else "")
        + f"  span {hop.record.get('span_id')}"
    )
    for annotation in hop.annotations:
        a = annotation.get("attrs") or {}
        lines.append(
            f"{pad}    dns {a.get('qname', '?')}/{a.get('qtype', '?')}"
            f" via {a.get('resolver', '?')} -> {a.get('rcode', '?')}"
        )
    for child in hop.children:
        _render_hop(child, indent + 1, lines)


def render_flows(
    flows: list[TestFlows],
    test: Optional[str] = None,
    max_flows: Optional[int] = None,
) -> str:
    """Human-readable flow listing (``repro trace flows``)."""
    lines: list[str] = []
    shown = 0
    for group in flows:
        if test is not None and not fnmatch.fnmatchcase(group.test, test):
            continue
        lines.append(
            f"{group.unit} / {group.test} @ {group.vantage} "
            f"({group.packet_count} packets, {len(group.flows)} flows)"
        )
        for flow in group.flows:
            if max_flows is not None and shown >= max_flows:
                lines.append("  ... (truncated)")
                return "\n".join(lines)
            _render_hop(flow, 1, lines)
            shown += 1
    if not lines:
        lines.append("no flows matched")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Query grammar
# ----------------------------------------------------------------------
# Longest operators first so "<=" is not parsed as "<" + "=".
_OPERATORS = ("!=", "<=", ">=", "=", "<", ">")


@dataclass(frozen=True)
class QueryTerm:
    """One ``key OP value`` condition; terms AND together."""

    key: str
    op: str
    value: str

    def matches(self, record: TraceRecord) -> bool:
        actual = _lookup(record, self.key)
        if self.op in ("=", "!="):
            if actual is None:
                matched = False
            else:
                matched = fnmatch.fnmatchcase(_text(actual), self.value)
            return matched if self.op == "=" else not matched
        # Numeric comparisons: non-numeric sides never match.
        try:
            left = float(actual)  # type: ignore[arg-type]
            right = float(self.value)
        except (TypeError, ValueError):
            return False
        if self.op == "<":
            return left < right
        if self.op == ">":
            return left > right
        if self.op == "<=":
            return left <= right
        return left >= right


def _text(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _lookup(record: TraceRecord, key: str) -> Any:
    """Resolve *key* against a record: top-level first, then attrs.

    An explicit ``attrs.`` prefix skips the top level.
    """
    if key.startswith("attrs."):
        return (record.get("attrs") or {}).get(key[len("attrs."):])
    if key in record:
        return record[key]
    return (record.get("attrs") or {}).get(key)


def parse_query(expression: str) -> list[QueryTerm]:
    """Parse ``key=value status!=delivered t_ms>100`` into terms.

    Whitespace separates terms; every term must contain an operator.
    Raises ``ValueError`` on malformed terms so the CLI can exit cleanly.
    """
    terms: list[QueryTerm] = []
    for token in expression.split():
        for op in _OPERATORS:
            index = token.find(op)
            if index > 0:
                key, value = token[:index], token[index + len(op):]
                if not value:
                    raise ValueError(
                        f"query term {token!r} has an empty value"
                    )
                if op in ("<", ">", "<=", ">="):
                    try:
                        float(value)
                    except ValueError:
                        raise ValueError(
                            f"query term {token!r} compares against a "
                            f"non-numeric value"
                        ) from None
                terms.append(QueryTerm(key=key, op=op, value=value))
                break
        else:
            raise ValueError(
                f"query term {token!r} has no operator "
                f"(expected one of {', '.join(_OPERATORS)})"
            )
    if not terms:
        raise ValueError("empty query")
    return terms


def query_trace(
    records: Iterable[TraceRecord], expression: str
) -> list[TraceRecord]:
    """Records matching every term of *expression* (AND semantics)."""
    terms = parse_query(expression)
    return [
        record
        for record in records
        if all(term.matches(record) for term in terms)
    ]


# ----------------------------------------------------------------------
# Trace diff
# ----------------------------------------------------------------------


@dataclass
class SpanChange:
    """One span present in both runs whose record content differs."""

    span_id: str
    kind: str
    name: str
    changed: dict[str, tuple[Any, Any]]  # field -> (a_value, b_value)


@dataclass
class TraceDiff:
    """Span-level difference between two runs of (nominally) one config."""

    removed: list[TraceRecord] = field(default_factory=list)  # only in A
    added: list[TraceRecord] = field(default_factory=list)  # only in B
    changed: list[SpanChange] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not (self.removed or self.added or self.changed)

    def summary(self) -> str:
        return (
            f"{len(self.added)} added, {len(self.removed)} removed, "
            f"{len(self.changed)} changed"
        )


def _record_fields(record: TraceRecord) -> dict[str, Any]:
    flat: dict[str, Any] = {}
    for key, value in record.items():
        if key == "span_id":
            continue
        if key == "attrs" and isinstance(value, dict):
            for attr_key, attr_value in value.items():
                flat[f"attrs.{attr_key}"] = attr_value
        else:
            flat[key] = value
    return flat


def diff_traces(
    a: list[TraceRecord], b: list[TraceRecord]
) -> TraceDiff:
    """Align two traces by span ID and report the differences.

    Span IDs are seeded hashes of (seed, unit, parent, child index, name),
    so two runs of the same config produce the *same* IDs for the same
    logical spans — alignment is exact.  A span only in A is "removed", only
    in B "added"; a span in both with different fields (timestamps, attrs)
    is reported field-by-field.  Duplicate span IDs within one trace are
    compared positionally within the ID's occurrence list.
    """
    a_by_id: dict[str, list[TraceRecord]] = {}
    for record in a:
        a_by_id.setdefault(str(record.get("span_id")), []).append(record)
    b_by_id: dict[str, list[TraceRecord]] = {}
    for record in b:
        b_by_id.setdefault(str(record.get("span_id")), []).append(record)

    diff = TraceDiff()
    # Removed + changed, in A order (deterministic output).
    seen_pairs: set[tuple[str, int]] = set()
    index_in_a: dict[str, int] = {}
    for record in a:
        span = str(record.get("span_id"))
        occurrence = index_in_a.get(span, 0)
        index_in_a[span] = occurrence + 1
        matches = b_by_id.get(span, [])
        if occurrence >= len(matches):
            diff.removed.append(record)
            continue
        seen_pairs.add((span, occurrence))
        other = matches[occurrence]
        fields_a = _record_fields(record)
        fields_b = _record_fields(other)
        changed = {
            key: (fields_a.get(key), fields_b.get(key))
            for key in sorted(set(fields_a) | set(fields_b))
            if fields_a.get(key) != fields_b.get(key)
        }
        if changed:
            diff.changed.append(
                SpanChange(
                    span_id=span,
                    kind=str(record.get("kind", "?")),
                    name=str(record.get("name", "?")),
                    changed=changed,
                )
            )
    # Added, in B order.
    index_in_b: dict[str, int] = {}
    for record in b:
        span = str(record.get("span_id"))
        occurrence = index_in_b.get(span, 0)
        index_in_b[span] = occurrence + 1
        if (span, occurrence) not in seen_pairs:
            if occurrence >= len(a_by_id.get(span, [])):
                diff.added.append(record)
    return diff


def render_diff(
    diff: TraceDiff, max_entries: int = 50
) -> str:
    """Human-readable diff (``repro trace diff``)."""
    lines = [diff.summary()]

    def describe(record: TraceRecord) -> str:
        attrs = record.get("attrs") or {}
        extra = " ".join(
            f"{k}={attrs[k]}"
            for k in ("host", "status", "dst", "qname", "vantage")
            if k in attrs
        )
        return (
            f"{record.get('kind', '?')} {record.get('name', '?')} "
            f"[{record.get('span_id')}]" + (f" {extra}" if extra else "")
        )

    shown = 0
    for record in diff.removed:
        if shown >= max_entries:
            break
        lines.append(f"  - {describe(record)}")
        shown += 1
    for record in diff.added:
        if shown >= max_entries:
            break
        lines.append(f"  + {describe(record)}")
        shown += 1
    for change in diff.changed:
        if shown >= max_entries:
            break
        lines.append(
            f"  ~ {change.kind} {change.name} [{change.span_id}]"
        )
        for key, (old, new) in change.changed.items():
            lines.append(f"      {key}: {old!r} -> {new!r}")
        shown += 1
    total = len(diff.removed) + len(diff.added) + len(diff.changed)
    if total > shown:
        lines.append(f"  ... {total - shown} more")
    return "\n".join(lines)
