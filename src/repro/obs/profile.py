"""Phase-level wall-clock attribution.

ROADMAP item 1 ended with a finding, not a speedup: after the delivery
engine landed at parity, the remaining study wall-clock hides in the
*application emulation* layers — browser/DOM, TLS, DNS — not in packet
delivery.  Chasing that requires attribution the cProfile top-N cannot
give: per-unit, per-phase exclusive time that survives the executor's
snapshot-merging so ``workers=8`` reports the same shape as ``workers=1``.

:class:`PhaseProfiler` is that instrument.  Hook sites bracket the five
coarse phases (``dns``, ``browser``, ``tls``, ``delivery``, ``analysis``)
with :meth:`enter`/:meth:`leave`; accounting is **exclusive**: a phase's
recorded time excludes any nested phase, so DNS resolution inside a page
load bills to ``dns``, the packet delivery underneath bills to
``delivery``, and the phase totals sum to real wall-clock without double
counting.  Nested or recursive entries of the *same* phase (a tunnel
re-entering ``Host.send``, a TLS validation inside a TLS probe) are
likewise exact — the child's slice is subtracted from the parent frame
and re-attributed to the same phase.

The profiler is deliberately dumb and fast: a list-based stack, two
dicts, one ``perf_counter`` call per transition.  It is only ever
reached behind the existing ``internet.obs is None`` fast path, so a
study without ``--profile`` pays nothing (gated <= 3% in CI), and an
enabled profiler stays within the <= 5% gate in
``benchmarks/bench_profile.py``.

At every unit boundary :meth:`~repro.obs.session.Observability.drain_unit`
folds the accumulated totals into the ordinary metrics registry as
``phase.calls.<name>`` counters and one ``phase.wall_ms.<name>``
histogram observation per phase (the unit's total), so phase data rides
the existing :class:`~repro.runtime.events.UnitMetrics` events through
commutative snapshot merging — into ``repro study --profile``'s table,
``metrics.json``, and the daemon's ``GET /metrics``.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Iterator

#: The coarse phases the standard hook sites report, in display order.
STANDARD_PHASES = ("dns", "browser", "tls", "delivery", "analysis")


class PhaseProfiler:
    """Stack-based exclusive wall-clock accounting per named phase."""

    __slots__ = ("_stack", "_calls", "_wall_ms")

    def __init__(self) -> None:
        # Each frame: [phase name, start timestamp, nested child seconds].
        self._stack: list[list] = []
        self._calls: dict[str, int] = {}
        self._wall_ms: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Hot path: one append on enter, one pop + two dict updates on leave.
    # ------------------------------------------------------------------
    def enter(self, phase: str) -> None:
        self._stack.append([phase, perf_counter(), 0.0])

    def leave(self) -> None:
        name, started, child_s = self._stack.pop()
        elapsed = perf_counter() - started
        self._calls[name] = self._calls.get(name, 0) + 1
        self._wall_ms[name] = (
            self._wall_ms.get(name, 0.0) + (elapsed - child_s) * 1e3
        )
        stack = self._stack
        if stack:
            # The parent frame loses this whole slice (including our own
            # children, already subtracted from *our* total above).
            stack[-1][2] += elapsed

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context-manager convenience for non-hot-path sites."""
        self.enter(name)
        try:
            yield
        finally:
            self.leave()

    # ------------------------------------------------------------------
    # Unit boundaries
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Discard all accumulated state (unit start)."""
        self._stack.clear()
        self._calls.clear()
        self._wall_ms.clear()

    def drain(self) -> dict[str, tuple[int, float]]:
        """``{phase: (calls, exclusive wall ms)}`` since the last drain.

        Open frames (a drain mid-phase can only happen on an aborted
        unit) are discarded — a half-measured phase would attribute
        noise, and the retry re-measures it anyway.
        """
        out = {
            name: (self._calls[name], self._wall_ms.get(name, 0.0))
            for name in sorted(self._calls)
        }
        self.reset()
        return out


def fold_phases(profiler: PhaseProfiler, metrics) -> None:
    """Fold a drained profiler into *metrics* (one observation per phase).

    ``phase.calls.<name>`` counters stay deterministic (call counts are a
    pure function of the unit); ``phase.wall_ms.<name>`` histograms carry
    one observation per phase per unit, so their *counts* merge
    deterministically across backends even though wall-clock sums cannot.
    """
    for name, (calls, wall_ms) in profiler.drain().items():
        metrics.inc(f"phase.calls.{name}", calls)
        metrics.observe(f"phase.wall_ms.{name}", wall_ms)


def phase_breakdown(snapshot: dict) -> list[dict]:
    """Extract the per-phase rows from a metrics snapshot, largest first.

    Accepts the :meth:`repro.obs.metrics.MetricsRegistry.snapshot` shape
    and returns ``[{"phase", "calls", "wall_ms", "share", "units",
    "p50_ms", "p95_ms"}, ...]`` — the data behind the ``--profile`` table
    and the EXPERIMENTS.md attribution numbers.
    """
    counters = snapshot.get("counters", {})
    histograms = snapshot.get("histograms", {})
    rows = []
    for key, calls in counters.items():
        if not key.startswith("phase.calls."):
            continue
        name = key[len("phase.calls."):]
        histogram = histograms.get(f"phase.wall_ms.{name}", {})
        rows.append(
            {
                "phase": name,
                "calls": int(calls),
                "wall_ms": float(histogram.get("total", 0.0)),
                "units": int(histogram.get("count", 0)),
                "p50_ms": histogram.get("p50"),
                "p95_ms": histogram.get("p95"),
            }
        )
    total = sum(row["wall_ms"] for row in rows) or 1.0
    for row in rows:
        row["share"] = row["wall_ms"] / total
    rows.sort(key=lambda row: (-row["wall_ms"], row["phase"]))
    return rows


def render_phase_table(snapshot: dict) -> str:
    """The human-readable attribution table for ``repro study --profile``."""
    rows = phase_breakdown(snapshot)
    if not rows:
        return "phase attribution: no phases recorded (profiler off?)"
    lines = [
        "phase attribution (exclusive wall-clock):",
        f"  {'phase':<10s} {'calls':>8s} {'total ms':>10s} {'share':>7s} "
        f"{'unit p50':>9s} {'unit p95':>9s}",
    ]
    for row in rows:
        p50 = f"{row['p50_ms']:.1f}" if row["p50_ms"] is not None else "-"
        p95 = f"{row['p95_ms']:.1f}" if row["p95_ms"] is not None else "-"
        lines.append(
            f"  {row['phase']:<10s} {row['calls']:>8d} "
            f"{row['wall_ms']:>10.1f} {row['share']:>6.1%} "
            f"{p50:>9s} {p95:>9s}"
        )
    return "\n".join(lines)


__all__ = [
    "PhaseProfiler",
    "STANDARD_PHASES",
    "fold_phases",
    "phase_breakdown",
    "render_phase_table",
]
