"""Structured tracing: a deterministic span tree exported as JSONL.

The trace is the provenance layer the verdict tables lack: every study is
a tree of spans — ``study`` → ``unit`` → ``test`` — with leaf events
(``dns_query``, ``packet_send``, ``flight_dump``) attached to whichever
span was open when they happened.  Two properties make it auditable:

- **Seeded-deterministic span IDs.**  IDs are derived with the same
  process-independent hash the runtime uses for retry jitter:
  the study span from the study seed, unit spans from the unit seed, and
  child spans from ``(parent id, child index, name)``.  No randomness, no
  wall clock, no PIDs — the same study produces the same IDs on any
  worker of any run.
- **Simulation-clock timestamps.**  Spans carry ``t0_ms``/``t1_ms`` on the
  simulated internet clock (rebased per unit by the harness), never the
  host's wall clock, so two runs of the same :class:`~repro.config.
  StudyConfig` emit byte-identical JSONL across the sequential, thread
  and process backends — asserted in ``tests/test_obs.py``.

Workers record spans into a per-unit buffer; the executor collects the
buffers with each unit result and writes the merged trace in *plan* order
through a pluggable :class:`SpanSink`, so scheduling order never reaches
the file.
"""

from __future__ import annotations

import json
import pathlib
from collections import Counter as _Counter
from contextlib import contextmanager
from typing import Callable, Iterable, Iterator, Optional, Protocol

from repro.runtime.retry import stable_hash

TraceRecord = dict


def _hex_id(value: int) -> str:
    return f"{value & 0xFFFFFFFFFFFFFFFF:016x}"


def study_span_id(seed: int) -> str:
    """The root span ID for a study — derivable by every worker."""
    return _hex_id(stable_hash("span", "study", seed))


def unit_span_id(unit_seed: int, parent_id: str, unit_id: str) -> str:
    return _hex_id(stable_hash("span", "unit", unit_seed, parent_id, unit_id))


def child_span_id(parent_id: str, index: int, name: str) -> str:
    return _hex_id(stable_hash("span", "child", parent_id, index, name))


def study_record(
    seed: int,
    providers: Iterable[str],
    total_units: int,
    max_vantage_points: Optional[int],
) -> TraceRecord:
    """The root JSONL record.

    Deliberately excludes workers/backend/wall-clock: the trace must be a
    function of the study configuration, not of how it was scheduled.
    """
    return {
        "kind": "study",
        "span_id": study_span_id(seed),
        "parent_id": None,
        "name": "study",
        "seed": seed,
        "providers": list(providers),
        "total_units": total_units,
        "max_vantage_points": max_vantage_points,
    }


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
class SpanSink(Protocol):
    """Anything that can receive finished trace records."""

    def write(self, record: TraceRecord) -> None: ...

    def close(self) -> None: ...


class MemorySpanSink:
    """Collects records in memory (tests, programmatic consumers)."""

    def __init__(self) -> None:
        self.records: list[TraceRecord] = []

    def write(self, record: TraceRecord) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass


class JsonlSpanSink:
    """Writes one compact, key-sorted JSON record per line.

    Sorted keys and fixed separators make the byte stream canonical: equal
    record sequences produce equal files.
    """

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("w", encoding="utf-8")

    def write(self, record: TraceRecord) -> None:
        self._handle.write(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        )

    def close(self) -> None:
        self._handle.close()


def write_trace(
    records: Iterable[TraceRecord], sink: SpanSink
) -> None:
    """Drive *records* through *sink* and close it."""
    try:
        for record in records:
            sink.write(record)
    finally:
        sink.close()


def read_trace(
    path: str | pathlib.Path, metrics=None
) -> list[TraceRecord]:
    """Load a JSONL trace back into records.

    Streams line-by-line (a multi-gigabyte trace never has to fit in one
    string) and tolerates damage: blank lines are skipped silently, while
    corrupt or truncated lines — e.g. the tail of a run killed mid-write —
    are skipped with a stderr warning carrying the line number, so one bad
    byte does not make the rest of a trace unreadable.

    *metrics* (a :class:`~repro.obs.metrics.MetricsRegistry`) counts each
    skip as ``trace.corrupt_lines`` so silent data loss shows up at
    ``/metrics`` instead of only scrolling past on stderr.
    """
    import sys

    records: list[TraceRecord] = []
    with pathlib.Path(path).open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                print(
                    f"warning: {path}:{lineno}: skipping corrupt trace "
                    f"line ({exc.msg})",
                    file=sys.stderr,
                )
                if metrics is not None:
                    metrics.inc("trace.corrupt_lines")
                continue
            if not isinstance(record, dict):
                print(
                    f"warning: {path}:{lineno}: skipping non-object trace "
                    f"line",
                    file=sys.stderr,
                )
                if metrics is not None:
                    metrics.inc("trace.corrupt_lines")
                continue
            records.append(record)
    return records


# ----------------------------------------------------------------------
# The tracer
# ----------------------------------------------------------------------
class Tracer:
    """Collects the span tree for the unit currently executing.

    One tracer lives per worker (inside its
    :class:`~repro.obs.session.Observability`).  ``begin_unit`` resets all
    per-unit state — the record buffer, the span stack and the per-parent
    child counters — so the IDs and ordering of a unit's records are a
    pure function of the unit, never of which units this worker happened
    to execute before it.  ``drain`` appends the closing ``unit`` record
    and hands the buffer over for coordinator-side assembly.
    """

    def __init__(
        self, seed: int, clock: Optional[Callable[[], float]] = None
    ) -> None:
        self.seed = seed
        self.root_id = study_span_id(seed)
        self.clock: Callable[[], float] = clock or (lambda: 0.0)
        self._records: list[TraceRecord] = []
        self._stack: list[str] = [self.root_id]
        self._children: dict[str, int] = {}
        self._unit: Optional[tuple[str, str, float]] = None

    # ------------------------------------------------------------------
    @property
    def current_span_id(self) -> str:
        return self._stack[-1]

    def _next_child_id(self, name: str) -> str:
        parent = self._stack[-1]
        index = self._children.get(parent, 0)
        self._children[parent] = index + 1
        return child_span_id(parent, index, name)

    # ------------------------------------------------------------------
    def begin_unit(self, unit_id: str, unit_seed: int) -> str:
        """Open the unit span; returns its ID."""
        span = unit_span_id(unit_seed, self.root_id, unit_id)
        self._records = []
        self._stack = [self.root_id, span]
        self._children = {}
        self._unit = (span, unit_id, self.clock())
        return span

    @contextmanager
    def span(self, kind: str, name: str, **attrs: object) -> Iterator[str]:
        """Open a child span for the duration of the ``with`` body."""
        span = self._next_child_id(name)
        parent = self._stack[-1]
        t0 = self.clock()
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            record: TraceRecord = {
                "kind": kind,
                "span_id": span,
                "parent_id": parent,
                "name": name,
                "t0_ms": round(t0, 6),
                "t1_ms": round(self.clock(), 6),
            }
            if attrs:
                record["attrs"] = attrs
            self._records.append(record)

    def event(self, kind: str, name: str, **attrs: object) -> str:
        """Record a zero-duration leaf event; returns its span ID."""
        span = self._next_child_id(name)
        record: TraceRecord = {
            "kind": kind,
            "span_id": span,
            "parent_id": self._stack[-1],
            "name": name,
            "t_ms": round(self.clock(), 6),
        }
        if attrs:
            record["attrs"] = attrs
        self._records.append(record)
        return span

    def drain(self) -> list[TraceRecord]:
        """Close the unit (if one is open) and return its records."""
        records = self._records
        if self._unit is not None:
            span, unit_id, t0 = self._unit
            records.append(
                {
                    "kind": "unit",
                    "span_id": span,
                    "parent_id": self.root_id,
                    "name": unit_id,
                    "t0_ms": round(t0, 6),
                    "t1_ms": round(self.clock(), 6),
                }
            )
            self._unit = None
        self._records = []
        self._stack = [self.root_id]
        self._children = {}
        return records


# ----------------------------------------------------------------------
# Summaries (the `repro trace summarize` subcommand)
# ----------------------------------------------------------------------
def summarize_trace(records: list[TraceRecord]) -> str:
    """A human-readable digest of a trace record list."""
    by_kind = _Counter(r.get("kind", "?") for r in records)
    tests = _Counter(
        r.get("name", "?") for r in records if r.get("kind") == "test"
    )
    packets = _Counter(
        str((r.get("attrs") or {}).get("status", "?"))
        for r in records
        if r.get("kind") == "packet_send"
    )
    dumps = [r for r in records if r.get("kind") == "flight_dump"]
    units = [r for r in records if r.get("kind") == "unit"]
    lines = [f"{len(records)} trace records"]
    lines.append(
        "  kinds: "
        + ", ".join(f"{kind}={count}" for kind, count in sorted(by_kind.items()))
    )
    if units:
        walls = [r["t1_ms"] - r["t0_ms"] for r in units]
        lines.append(
            f"  units: {len(units)}  sim-clock total "
            f"{sum(walls):.1f} ms  max {max(walls):.1f} ms"
        )
    if tests:
        lines.append("  tests:")
        for name, count in sorted(tests.items()):
            lines.append(f"    {name:<24s} {count}")
    if packets:
        lines.append(
            "  packets: "
            + ", ".join(
                f"{status}={count}" for status, count in sorted(packets.items())
            )
        )
    if dumps:
        lines.append(f"  flight dumps: {len(dumps)}")
        for record in dumps:
            attrs = record.get("attrs") or {}
            lines.append(
                f"    {attrs.get('reason', '?')} "
                f"({len(attrs.get('events', []))} buffered packet events)"
            )
    return "\n".join(lines)
