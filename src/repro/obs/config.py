"""Observability configuration.

:class:`ObsConfig` is the single switchboard for the observability
subsystem: structured tracing (span tree exported as JSONL), the metrics
registry, and the packet flight recorder.  It is a frozen dataclass of
plain values so it can ride inside :class:`repro.config.StudyConfig`,
cross process boundaries in worker-pool ``initargs``, and participate in
config equality/hashing.

The cardinal rule is that a fully disabled config costs nothing: when
``enabled`` is False no :class:`~repro.obs.session.Observability` object is
built at all, so every instrumentation site in the packet hot path pays
exactly one attribute load and ``None`` check — measured in
``benchmarks/bench_hot_path.py`` and gated at <= 3% in CI.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from repro.obs.session import Observability


@dataclass(frozen=True)
class ObsConfig:
    """What to observe during a study.

    ``trace`` collects the span tree in memory (read it back from the
    executor's ``trace_records``); ``trace_path`` additionally writes it as
    JSONL, one record per line, and implies ``trace``.  ``trace_packets``
    controls whether individual ``packet_send`` events are recorded inside
    test spans (the bulk of an enabled trace).  ``metrics`` turns on the
    counters/gauges/histograms registry; ``metrics_path`` additionally
    writes the merged study snapshot as JSON and implies ``metrics``;
    ``flight_recorder`` keeps the last N packet events per host in a ring
    buffer that is dumped into the trace whenever a retry policy exhausts.
    ``profile`` arms the :class:`~repro.obs.profile.PhaseProfiler` — the
    per-unit dns/browser/tls/delivery/analysis wall-clock attribution —
    and implies ``metrics``, since phase totals travel as ordinary
    metrics (``phase.calls.*`` / ``phase.wall_ms.*``).  ``stage_profile``
    arms the finer :class:`~repro.obs.stages.StageProfiler` — per-packet
    stage attribution *inside* delivery — and likewise implies
    ``metrics``; ``stage_sample`` is its deterministic 1-in-N top-level
    send sampling period (1 = time every send).
    """

    trace: bool = False
    trace_path: Optional[str] = None
    trace_packets: bool = True
    metrics: bool = False
    metrics_path: Optional[str] = None
    flight_recorder: int = 0
    profile: bool = False
    stage_profile: bool = False
    stage_sample: int = 8

    def __post_init__(self) -> None:
        if self.flight_recorder < 0:
            raise ValueError("flight_recorder must be >= 0")
        if self.stage_sample < 1:
            raise ValueError("stage_sample must be >= 1")

    # ------------------------------------------------------------------
    @property
    def trace_enabled(self) -> bool:
        return self.trace or self.trace_path is not None

    @property
    def metrics_enabled(self) -> bool:
        return (
            self.metrics
            or self.metrics_path is not None
            or self.profile
            or self.stage_profile
        )

    @property
    def enabled(self) -> bool:
        """Whether *any* observability feature is on."""
        return (
            self.trace_enabled
            or self.metrics_enabled
            or self.flight_recorder > 0
        )

    def replace(self, **changes: object) -> "ObsConfig":
        return replace(self, **changes)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    def build(self, seed: int = 0) -> "Optional[Observability]":
        """Build the runtime session, or None when nothing is enabled.

        Returning ``None`` (rather than an inert object) is what keeps the
        disabled fast path to a single ``is not None`` check per event.
        """
        if not self.enabled:
            return None
        from repro.obs.session import Observability

        return Observability(self, seed=seed)

    @classmethod
    def disabled(cls) -> "ObsConfig":
        return cls()

    @classmethod
    def full(cls, trace_path: Optional[str] = None,
             flight_recorder: int = 64) -> "ObsConfig":
        """Everything on — the ``--trace --metrics --flight-recorder`` CLI."""
        return cls(
            trace=True,
            trace_path=trace_path,
            metrics=True,
            flight_recorder=flight_recorder,
        )
