"""The per-worker observability session.

One :class:`Observability` object lives in each executor worker (built by
``ObsConfig.build`` inside ``_build_suite``) and owns whichever components
the config enables: the :class:`~repro.obs.trace.Tracer`, the
:class:`~repro.obs.metrics.MetricsRegistry`, the
:class:`~repro.obs.flight.FlightRecorder` and the routing-memo stats.  It
is the single object the instrumented hot paths talk to: the simulated
:class:`~repro.net.internet.Internet` carries an ``obs`` attribute that is
either this session or ``None``, so the disabled cost at every event site
is one attribute load and one ``is not None`` check.

Determinism contract: all trace timestamps come from the simulation clock
(rebased to zero per unit by the harness), span IDs are seeded hashes, and
per-unit state is reset in :meth:`begin_unit` — so the obs payload drained
after a unit is a pure function of the unit, regardless of which worker
ran it or what ran before.  Wall-clock only ever enters *metrics
histograms* (per-test durations), whose counts stay deterministic even
though their sums cannot.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from typing import TYPE_CHECKING, ContextManager, Iterator, Optional

from repro.obs.config import ObsConfig
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry, RouteLookupStats
from repro.obs.profile import PhaseProfiler, fold_phases
from repro.obs.stages import StageProfiler, fold_stages
from repro.obs.trace import Tracer

if TYPE_CHECKING:
    from repro.net.internet import Internet
    from repro.net.packet import Packet
    from repro.runtime.units import AuditUnit
    from repro.web.tls import TrustStore
    from repro.world.factory import World


class Observability:
    """Everything the enabled observability features need, in one object."""

    def __init__(self, config: ObsConfig, seed: int = 0) -> None:
        self.config = config
        self.seed = seed
        self._internet: "Optional[Internet]" = None
        self.tracer: Optional[Tracer] = (
            Tracer(seed, clock=self._clock) if config.trace_enabled else None
        )
        self.metrics: Optional[MetricsRegistry] = (
            MetricsRegistry() if config.metrics_enabled else None
        )
        self.flight: Optional[FlightRecorder] = (
            FlightRecorder(config.flight_recorder)
            if config.flight_recorder > 0
            else None
        )
        self.route_stats: Optional[RouteLookupStats] = (
            RouteLookupStats() if config.metrics_enabled else None
        )
        # Phase attribution: hot-path hook sites reach this through
        # `internet.obs.profile`, so a metrics-only session costs those
        # sites one extra None check and a profiling one a stack push/pop.
        self.profile: Optional[PhaseProfiler] = (
            PhaseProfiler() if config.profile else None
        )
        # Per-packet stage attribution inside delivery; reached through
        # `internet.obs.stages` exactly like `profile`, so it goes dark
        # automatically under suspended() and costs disabled sessions
        # one None check at the send boundary.
        self.stages: Optional[StageProfiler] = (
            StageProfiler(seed=seed, sample_every=config.stage_sample)
            if config.stage_profile
            else None
        )
        self._trust_store: "Optional[TrustStore]" = None
        self._dumps: list[dict] = []
        self._unit_open = False
        # Per-unit side table: id(packet) -> span ID of its packet_send
        # record.  Lets evidence collectors resolve a captured packet
        # object back to the trace record that proves its fate, without
        # adding a single byte to the emitted records.  Safe against id()
        # reuse for the packets evidence cares about: PacketCapture holds
        # strong references to every tx/rx packet for the unit's lifetime.
        self._packet_spans: dict[int, str] = {}
        self._test_span_id: Optional[str] = None

    # ------------------------------------------------------------------
    def _clock(self) -> float:
        internet = self._internet
        return internet.clock_ms if internet is not None else 0.0

    def attach(self, world: "World") -> None:
        """Wire this session into *world*'s hot paths."""
        internet = world.internet
        self._internet = internet
        internet.obs = self
        if self.route_stats is not None:
            for host in internet.hosts():
                host.routing.stats = self.route_stats
        if self.profile is not None:
            # The trust store has no path back to the internet, so the
            # TLS-validation hook site is wired directly (and unwired in
            # suspended()/detach, mirroring `internet.obs`).
            self._trust_store = world.trust_store
            self._trust_store.profile = self.profile

    def detach(self) -> None:
        internet = self._internet
        if internet is None:
            return
        internet.obs = None
        for host in internet.hosts():
            host.routing.stats = None
        if self._trust_store is not None:
            self._trust_store.profile = None
            self._trust_store = None
        self._internet = None

    # ------------------------------------------------------------------
    # Hot-path hooks.  Callers have already paid the `obs is not None`
    # check; everything here is the enabled path.
    # ------------------------------------------------------------------
    def packet_event(
        self, host_name: str, packet: "Packet", status: str, detail: str = ""
    ) -> None:
        """One packet reached a terminal fate (delivered or otherwise)."""
        protocol = packet.payload.kind
        metrics = self.metrics
        if metrics is not None:
            metrics.inc("packets.total")
            metrics.inc(f"packets.{status}")
        flight = self.flight
        if flight is not None:
            flight.record(
                host_name,
                self._clock(),
                status,
                protocol,
                str(packet.dst),
                detail,
            )
        tracer = self.tracer
        if (
            tracer is not None
            and self.config.trace_packets
            and self._unit_open
        ):
            attrs = {
                "host": host_name,
                "status": status,
                "protocol": protocol,
                "dst": str(packet.dst),
            }
            if detail:
                attrs["detail"] = detail
            span = tracer.event("packet_send", "packet_send", **attrs)
            self._packet_spans[id(packet)] = span

    def dns_query(
        self, host_name: str, qname: str, qtype: str, resolver: str, rcode: str
    ) -> None:
        """One stub-resolver query completed (any rcode)."""
        metrics = self.metrics
        if metrics is not None:
            metrics.inc("dns.queries")
            if rcode != "NOERROR":
                metrics.inc("dns.failures")
        tracer = self.tracer
        if tracer is not None and self._unit_open:
            tracer.event(
                "dns_query",
                "dns_query",
                host=host_name,
                qname=qname,
                qtype=qtype,
                resolver=resolver,
                rcode=rcode,
            )

    def retry(self, key: str) -> None:
        if self.metrics is not None:
            self.metrics.inc("retries.total")
            self.metrics.inc(f"retries.{key}")

    def tunnel_carried(self) -> None:
        if self.metrics is not None:
            self.metrics.inc("tunnel.carried")

    def tunnel_leaked(self) -> None:
        if self.metrics is not None:
            self.metrics.inc("tunnel.leaked")

    # ------------------------------------------------------------------
    # Harness-level hooks
    # ------------------------------------------------------------------
    @property
    def current_test_span_id(self) -> Optional[str]:
        """Span ID of the test currently executing, if any.

        This is what anchors an :class:`~repro.obs.evidence.EvidenceChain`
        to the trace; ``None`` outside a traced test span (tracing off, or
        the plain ``repro audit`` path that never opens a unit), which
        disables evidence collection entirely.
        """
        return self._test_span_id

    def span_for_packet(self, packet: "Packet") -> Optional[str]:
        """Span ID of *packet*'s ``packet_send`` record in this unit."""
        return self._packet_spans.get(id(packet))

    def test_span(
        self, name: str, **attrs: object
    ) -> ContextManager[Optional[str]]:
        """A span around one measurement test (plus a wall-clock histogram)."""
        tracer = self.tracer
        span: ContextManager[Optional[str]]
        if tracer is not None and self._unit_open:
            span = self._tracked_test_span(tracer.span("test", name, **attrs))
        else:
            span = nullcontext()
        if self.metrics is None:
            return span
        return self._timed_span(name, span)

    @contextmanager
    def _tracked_test_span(
        self, span: ContextManager[str]
    ) -> Iterator[str]:
        with span as span_id:
            self._test_span_id = span_id
            try:
                yield span_id
            finally:
                self._test_span_id = None

    @contextmanager
    def _timed_span(
        self, name: str, span: ContextManager[Optional[str]]
    ) -> Iterator[Optional[str]]:
        import time

        started = time.perf_counter()
        with span as span_id:
            yield span_id
        assert self.metrics is not None
        self.metrics.observe(
            f"test.wall_ms.{name}", (time.perf_counter() - started) * 1e3
        )

    @contextmanager
    def suspended(self) -> Iterator[None]:
        """Temporarily blind the session (ground-truth collection).

        Ground-truth pages/certificates are collected lazily, once per
        worker suite, inside whichever unit happens to run first there —
        so their packets and clock advance must stay invisible or traces
        and metrics would depend on scheduling.  Results are unaffected
        by the clock restore because they only consume clock *deltas*.
        """
        from repro.dns.resolver import reset_txids, txid_state

        internet = self._internet
        if internet is None:
            yield
            return
        saved_clock = internet.clock_ms
        saved_txid = txid_state()
        internet.obs = None
        trust_store = self._trust_store
        if trust_store is not None:
            # Phase hooks that route through `internet.obs` go dark with
            # it; the directly wired TLS-validation hook must too, or
            # ground-truth probes would bill scheduling-dependent "tls"
            # calls to whichever unit triggered the collection.
            trust_store.profile = None
        try:
            yield
        finally:
            internet.obs = self
            internet.clock_ms = saved_clock
            reset_txids(saved_txid)
            if trust_store is not None:
                trust_store.profile = self.profile

    def flight_dump(self, reason: str, **attrs: object) -> None:
        """Dump the ring buffers into the evidence trail, then clear them."""
        flight = self.flight
        if flight is None:
            return
        events = flight.snapshot()
        flight.clear()
        dump = {"reason": reason, "events": events, **attrs}
        self._dumps.append(dump)
        if self.metrics is not None:
            self.metrics.inc("flight.dumps")
        tracer = self.tracer
        if tracer is not None and self._unit_open:
            tracer.event(
                "flight_dump", "flight_dump", reason=reason,
                events=events, **attrs,
            )

    # ------------------------------------------------------------------
    # Unit lifecycle (driven by the harness/executor)
    # ------------------------------------------------------------------
    def begin_unit(self, unit: "AuditUnit") -> None:
        if self.tracer is not None:
            self.tracer.begin_unit(unit.unit_id, unit.seed)
        if self.flight is not None:
            self.flight.clear()
        if self.profile is not None:
            self.profile.reset()
        if self.stages is not None:
            self.stages.reset()
        self._dumps = []
        self._packet_spans = {}
        self._test_span_id = None
        self._unit_open = True

    def drain_unit(self) -> Optional[dict]:
        """Collect this unit's obs payload (rides home in the UnitOutcome)."""
        if not self._unit_open:
            return None
        self._unit_open = False
        self._packet_spans = {}
        self._test_span_id = None
        payload: dict = {}
        if self.route_stats is not None and self.metrics is not None:
            hits, misses = self.route_stats.drain()
            if hits:
                self.metrics.inc("routing.memo_hits", hits)
            if misses:
                self.metrics.inc("routing.memo_misses", misses)
        if self.profile is not None:
            # config.profile implies metrics, so the registry exists;
            # phase totals ride the unit's ordinary metrics snapshot.
            fold_phases(self.profile, self.metrics)
        if self.stages is not None:
            # stage_profile implies metrics too; stage totals ride the
            # same snapshot and merge commutatively.
            fold_stages(self.stages, self.metrics)
        if self.tracer is not None:
            payload["trace"] = self.tracer.drain()
        if self.metrics is not None:
            payload["metrics"] = self.metrics.drain()
        if self._dumps:
            payload["flight_dumps"] = self._dumps
            self._dumps = []
        return payload or None

    def drain_phases(self) -> Optional[dict]:
        """Metrics snapshot of phases recorded *outside* any unit.

        The coordinator's suite runs study assembly after every unit is
        done; its ``analysis`` phase therefore never reaches
        :meth:`drain_unit`.  The executor calls this afterwards and
        publishes the result as one extra
        :class:`~repro.runtime.events.UnitMetrics` delta.
        """
        profile = self.profile
        if profile is None:
            return None
        phases = profile.drain()
        if not phases:
            return None
        metrics = self.metrics
        for name, (calls, wall_ms) in phases.items():
            metrics.inc(f"phase.calls.{name}", calls)
            metrics.observe(f"phase.wall_ms.{name}", wall_ms)
        if self.stages is not None:
            # Any delivery the analysis phase performed brackets stages
            # outside a unit; fold them into the same final delta.
            fold_stages(self.stages, metrics)
        return metrics.drain()
