"""repro.obs — tracing, metrics and the packet flight recorder.

The observability subsystem.  :class:`ObsConfig` picks features;
``ObsConfig.build()`` returns an :class:`Observability` session (or ``None``
when everything is off — the zero-overhead contract).  See DESIGN.md
§ Observability.
"""

from typing import TYPE_CHECKING

_EXPORTS = {
    "ObsConfig": ("repro.obs.config", "ObsConfig"),
    "Observability": ("repro.obs.session", "Observability"),
    "Tracer": ("repro.obs.trace", "Tracer"),
    "SpanSink": ("repro.obs.trace", "SpanSink"),
    "JsonlSpanSink": ("repro.obs.trace", "JsonlSpanSink"),
    "MemorySpanSink": ("repro.obs.trace", "MemorySpanSink"),
    "study_span_id": ("repro.obs.trace", "study_span_id"),
    "read_trace": ("repro.obs.trace", "read_trace"),
    "write_trace": ("repro.obs.trace", "write_trace"),
    "summarize_trace": ("repro.obs.trace", "summarize_trace"),
    "EvidenceChain": ("repro.obs.evidence", "EvidenceChain"),
    "EvidenceLink": ("repro.obs.evidence", "EvidenceLink"),
    "EvidenceCollector": ("repro.obs.evidence", "EvidenceCollector"),
    "reconstruct_flows": ("repro.obs.analyze", "reconstruct_flows"),
    "render_flows": ("repro.obs.analyze", "render_flows"),
    "TestFlows": ("repro.obs.analyze", "TestFlows"),
    "parse_query": ("repro.obs.analyze", "parse_query"),
    "query_trace": ("repro.obs.analyze", "query_trace"),
    "diff_traces": ("repro.obs.analyze", "diff_traces"),
    "render_diff": ("repro.obs.analyze", "render_diff"),
    "TraceDiff": ("repro.obs.analyze", "TraceDiff"),
    "MetricsRegistry": ("repro.obs.metrics", "MetricsRegistry"),
    "Counter": ("repro.obs.metrics", "Counter"),
    "Gauge": ("repro.obs.metrics", "Gauge"),
    "Histogram": ("repro.obs.metrics", "Histogram"),
    "RouteLookupStats": ("repro.obs.metrics", "RouteLookupStats"),
    "FlightRecorder": ("repro.obs.flight", "FlightRecorder"),
    "PhaseProfiler": ("repro.obs.profile", "PhaseProfiler"),
    "phase_breakdown": ("repro.obs.profile", "phase_breakdown"),
    "render_phase_table": ("repro.obs.profile", "render_phase_table"),
    "StageProfiler": ("repro.obs.stages", "StageProfiler"),
    "stage_breakdown": ("repro.obs.stages", "stage_breakdown"),
    "render_stage_table": ("repro.obs.stages", "render_stage_table"),
    "ResourceSampler": ("repro.obs.sample", "ResourceSampler"),
    "RunLedger": ("repro.obs.sample", "RunLedger"),
    "read_ledger": ("repro.obs.sample", "read_ledger"),
    "render_ledger": ("repro.obs.sample", "render_ledger"),
    "render_prometheus": ("repro.obs.export", "render_prometheus"),
    "parse_exposition": ("repro.obs.export", "parse_exposition"),
}

__all__ = list(_EXPORTS)

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from repro.obs.analyze import (
        TestFlows,
        TraceDiff,
        diff_traces,
        parse_query,
        query_trace,
        reconstruct_flows,
        render_diff,
        render_flows,
    )
    from repro.obs.config import ObsConfig
    from repro.obs.export import parse_exposition, render_prometheus
    from repro.obs.profile import (
        PhaseProfiler,
        phase_breakdown,
        render_phase_table,
    )
    from repro.obs.sample import (
        ResourceSampler,
        RunLedger,
        read_ledger,
        render_ledger,
    )
    from repro.obs.stages import (
        StageProfiler,
        render_stage_table,
        stage_breakdown,
    )
    from repro.obs.evidence import (
        EvidenceChain,
        EvidenceCollector,
        EvidenceLink,
    )
    from repro.obs.flight import FlightRecorder
    from repro.obs.metrics import (
        Counter,
        Gauge,
        Histogram,
        MetricsRegistry,
        RouteLookupStats,
    )
    from repro.obs.session import Observability
    from repro.obs.trace import (
        JsonlSpanSink,
        MemorySpanSink,
        SpanSink,
        Tracer,
        read_trace,
        study_span_id,
        summarize_trace,
        write_trace,
    )


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value


def __dir__() -> list:
    return sorted(set(globals()) | set(_EXPORTS))
