"""The packet flight recorder: a bounded ring of recent packet events.

A failed leakage test is only as convincing as the packets behind it.  The
flight recorder keeps the last *N* packet events per host in a
``deque(maxlen=N)`` — constant memory however long the study runs — and the
harness dumps the buffers into the trace the moment a test fails or a
:class:`~repro.runtime.retry.RetryPolicy` exhausts, so the evidence trail
is captured *at* the failure, not reconstructed after it.
"""

from __future__ import annotations

from collections import deque
from typing import Optional


class FlightRecorder:
    """Per-host ring buffers of the most recent packet events."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("FlightRecorder capacity must be positive")
        self.capacity = capacity
        self._buffers: dict[str, deque[dict]] = {}

    def record(
        self,
        host: str,
        clock_ms: float,
        status: str,
        protocol: str,
        dst: str,
        detail: str = "",
    ) -> None:
        buffer = self._buffers.get(host)
        if buffer is None:
            buffer = self._buffers[host] = deque(maxlen=self.capacity)
        event = {
            "t_ms": round(clock_ms, 6),
            "status": status,
            "protocol": protocol,
            "dst": dst,
        }
        if detail:
            event["detail"] = detail
        buffer.append(event)

    # ------------------------------------------------------------------
    def snapshot(self, host: Optional[str] = None) -> list[dict]:
        """The buffered events, oldest first.

        With *host*, just that host's buffer; otherwise every buffer,
        hosts in sorted order so dumps are deterministic.
        """
        if host is not None:
            buffer = self._buffers.get(host)
            return [dict(e, host=host) for e in buffer] if buffer else []
        events: list[dict] = []
        for name in sorted(self._buffers):
            events.extend(dict(e, host=name) for e in self._buffers[name])
        return events

    def clear(self) -> None:
        self._buffers.clear()

    def __len__(self) -> int:
        return sum(len(b) for b in self._buffers.values())
