"""Per-packet stage attribution inside the delivery phase.

The phase profiler (``repro.obs.profile``) answered *which phase* owns
study wall-clock and pointed at delivery (~81%, EXPERIMENTS.md).  This
module answers the next question — *where inside delivery* — by
bracketing the stages every packet traverses (routing lookup, firewall
verdict, capture append, latency/clock advance, receive-side dispatch,
tunnel encapsulation) with the same exclusive accounting, at packet
granularity.

Stage taxonomy (``STANDARD_STAGES``, display order):

``send``
    The per-send orchestration residue: everything inside ``Host.send``
    / ``DeliveryEngine.send`` not billed to a finer stage (result
    assembly, guard checks, plan-shape branching).  Because the frame
    opens at the top of every send, the stage totals sum to ~100% of the
    delivery phase by construction.
``route``
    Routing-table lookups (``RoutingTable.lookup``) and, on the engine
    path, the whole plan fetch/validate/compile region — bracketed as
    one frame per send so its *count* never depends on plan-cache
    warmth, which is scheduling-dependent.
``firewall``
    Rule evaluation (``Firewall.permits`` / the engine's verdict memo),
    only counted when the firewall is active — the inactive fast path
    stays a plain boolean check.
``capture``
    Capture-entry construction and append on tx/rx interfaces.
``latency``
    Jitter-sample derivation, RTT computation and simulation-clock
    advancement in ``Internet.deliver`` and its engine inlines.
``dispatch``
    The receive side: ``Host.receive`` / the engine's ``_dispatch`` —
    service handlers, echo replies, response tx recording.
``encap``
    Tunnel encapsulation/decapsulation (``TunnelEndpoint`` and the
    engine's tunnel inlines).

Determinism contract (the same one phases obey, tightened for
sampling): stage **call counts are exact and deterministic** — every
``enter`` bumps the counter, on every backend, engine on or off held
fixed.  Wall-clock is only measured for a deterministic 1-in-N sample
of *top-level sends*: :meth:`StageProfiler.begin_send` decides timing
from the per-unit send ordinal and the seed (``sends % sample_every ==
seed % sample_every``), and the decision holds for the whole nested
send tree, so timed enters and leaves always pair up and the sampled
frame counts (``stage.sampled.*``) are themselves byte-stable across
backends.  Sampling is what keeps the enabled overhead inside the ≤5%
``BENCH_stages.json`` gate: the unsampled path is two dict operations
per stage, no ``perf_counter`` calls.

At unit boundaries :func:`fold_stages` lands the totals in the metrics
registry (``stage.calls.*`` / ``stage.sampled.*`` counters and one
``stage.wall_ms.*`` histogram observation per stage), so stage data
rides :class:`~repro.runtime.events.UnitMetrics` through commutative
snapshot merging exactly like phases do.  The table renderer scales the
sampled wall-clock back up (``est_ms = wall_ms * calls / sampled``) for
the ``repro study --profile-stages`` view.

Note: engine-on and engine-off runs legitimately report *different*
stage counts (the engine collapses work the legacy path performs; the
legacy path brackets work the engine never does).  What is pinned is
that for a fixed engine setting the counts are identical across
sequential/thread/process backends — the same property
``phase.calls.delivery`` already pins.
"""

from __future__ import annotations

from time import perf_counter

#: Stages the standard hook sites report, in display order.
STANDARD_STAGES = (
    "send",
    "route",
    "firewall",
    "capture",
    "latency",
    "dispatch",
    "encap",
)

_CALLS_PREFIX = "stage.calls."
_SAMPLED_PREFIX = "stage.sampled."
_WALL_PREFIX = "stage.wall_ms."


class StageProfiler:
    """Exact stage counting with deterministically sampled self-time."""

    __slots__ = (
        "sample_every",
        "_offset",
        "_depth",
        "_sends",
        "_timing",
        "_stack",
        "_calls",
        "_sampled",
        "_wall_ms",
    )

    def __init__(self, seed: int = 0, sample_every: int = 8) -> None:
        self.sample_every = max(1, int(sample_every))
        self._offset = seed % self.sample_every
        self._depth = 0
        self._sends = 0
        self._timing = False
        # Each timed frame: [stage name, start timestamp, child seconds].
        self._stack: list[list] = []
        self._calls: dict[str, int] = {}
        self._sampled: dict[str, int] = {}
        self._wall_ms: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Send boundaries: where the sampling decision is made.
    # ------------------------------------------------------------------
    def begin_send(self) -> None:
        """Open a ``send`` frame; at depth 0, decide whether to time it.

        The decision is a pure function of the per-unit send ordinal and
        the seed, so it is identical on every backend; it then holds for
        the entire nested send tree (a tunnel re-entering ``Host.send``
        stays inside its parent's sample), which is what guarantees
        every timed ``enter`` has a timed ``leave``.
        """
        if self._depth == 0:
            self._timing = (
                self._sends % self.sample_every == self._offset
            )
            self._sends += 1
        self._depth += 1
        self.enter("send")

    def end_send(self) -> None:
        self.leave()
        self._depth -= 1
        if self._depth == 0:
            self._timing = False

    # ------------------------------------------------------------------
    # Hot path.  Unsampled: one dict get + one dict store per enter,
    # nothing on leave.  Sampled: adds a list push/pop and two
    # perf_counter calls, amortised 1-in-N.
    # ------------------------------------------------------------------
    def enter(self, stage: str) -> None:
        calls = self._calls
        calls[stage] = calls.get(stage, 0) + 1
        if self._timing:
            self._stack.append([stage, perf_counter(), 0.0])

    def leave(self) -> None:
        if not self._timing:
            return
        name, started, child_s = self._stack.pop()
        elapsed = perf_counter() - started
        sampled = self._sampled
        sampled[name] = sampled.get(name, 0) + 1
        self._wall_ms[name] = (
            self._wall_ms.get(name, 0.0) + (elapsed - child_s) * 1e3
        )
        stack = self._stack
        if stack:
            stack[-1][2] += elapsed

    # ------------------------------------------------------------------
    # Unit boundaries
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Discard all accumulated state (unit start).

        Also restarts the send ordinal, so the sampling pattern is a
        pure function of each unit — the property that keeps
        ``stage.sampled.*`` identical no matter which worker runs the
        unit or what ran there before.
        """
        self._depth = 0
        self._sends = 0
        self._timing = False
        self._stack.clear()
        self._calls.clear()
        self._sampled.clear()
        self._wall_ms.clear()

    def drain(self) -> dict[str, tuple[int, int, float]]:
        """``{stage: (calls, sampled frames, sampled wall ms)}``; resets.

        Open frames (only possible on an aborted unit) are discarded,
        mirroring :meth:`PhaseProfiler.drain`.
        """
        out = {
            name: (
                self._calls[name],
                self._sampled.get(name, 0),
                self._wall_ms.get(name, 0.0),
            )
            for name in sorted(self._calls)
        }
        self.reset()
        return out


def fold_stages(profiler: StageProfiler, metrics) -> None:
    """Fold a drained stage profiler into *metrics*.

    ``stage.calls.*`` and ``stage.sampled.*`` counters are deterministic
    (pure functions of the unit and the seed); ``stage.wall_ms.*``
    histograms carry one observation per stage per unit — their counts
    merge deterministically even though wall-clock sums cannot.
    """
    for name, (calls, sampled, wall_ms) in profiler.drain().items():
        metrics.inc(_CALLS_PREFIX + name, calls)
        if sampled:
            metrics.inc(_SAMPLED_PREFIX + name, sampled)
            metrics.observe(_WALL_PREFIX + name, wall_ms)


def stage_breakdown(snapshot: dict) -> list[dict]:
    """Per-stage rows from a metrics snapshot, largest self-time first.

    ``wall_ms`` is the *sampled* exclusive time; ``est_ms`` scales it
    back to the full population (``wall_ms * calls / sampled``), which
    is what shares, packets/sec and the coverage check use.
    """
    counters = snapshot.get("counters", {})
    histograms = snapshot.get("histograms", {})
    rows = []
    for key, calls in counters.items():
        if not key.startswith(_CALLS_PREFIX):
            continue
        name = key[len(_CALLS_PREFIX):]
        sampled = int(counters.get(_SAMPLED_PREFIX + name, 0))
        histogram = histograms.get(_WALL_PREFIX + name, {})
        wall_ms = float(histogram.get("total", 0.0))
        est_ms = wall_ms * (calls / sampled) if sampled else 0.0
        rows.append(
            {
                "stage": name,
                "calls": int(calls),
                "sampled": sampled,
                "wall_ms": wall_ms,
                "est_ms": est_ms,
                "pkts_per_s": (
                    calls / (est_ms / 1e3) if est_ms > 0.0 else None
                ),
            }
        )
    total = sum(row["est_ms"] for row in rows) or 1.0
    for row in rows:
        row["share"] = row["est_ms"] / total
    rows.sort(key=lambda row: (-row["est_ms"], row["stage"]))
    return rows


def stage_total_ms(snapshot: dict) -> float:
    """Scaled-up total stage self-time — comparable to the delivery
    phase's ``phase.wall_ms.delivery`` total from the same snapshot."""
    return sum(row["est_ms"] for row in stage_breakdown(snapshot))


def render_stage_table(snapshot: dict) -> str:
    """The table behind ``repro study --profile-stages``.

    When the snapshot also carries phase data (``--profile`` and stage
    profiling share the metrics registry), a footer reports how much of
    the delivery phase's wall-clock the stages account for.
    """
    rows = stage_breakdown(snapshot)
    if not rows:
        return "stage attribution: no stages recorded (stage profiler off?)"
    lines = [
        "delivery stage attribution (exclusive, sampled wall-clock):",
        f"  {'stage':<10s} {'calls':>9s} {'sampled':>8s} {'self ms':>9s} "
        f"{'share':>7s} {'pkts/s':>10s}",
    ]
    for row in rows:
        rate = (
            f"{row['pkts_per_s']:,.0f}"
            if row["pkts_per_s"] is not None
            else "-"
        )
        lines.append(
            f"  {row['stage']:<10s} {row['calls']:>9d} {row['sampled']:>8d} "
            f"{row['est_ms']:>9.1f} {row['share']:>6.1%} {rate:>10s}"
        )
    histograms = snapshot.get("histograms", {})
    delivery = histograms.get("phase.wall_ms.delivery", {})
    delivery_ms = float(delivery.get("total", 0.0))
    if delivery_ms > 0.0:
        covered = sum(row["est_ms"] for row in rows) / delivery_ms
        lines.append(
            f"  stages cover {covered:.1%} of the delivery phase "
            f"({delivery_ms:.1f} ms)"
        )
    return "\n".join(lines)


__all__ = [
    "StageProfiler",
    "STANDARD_STAGES",
    "fold_stages",
    "stage_breakdown",
    "stage_total_ms",
    "render_stage_table",
]
