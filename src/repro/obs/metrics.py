"""Metrics: counters, gauges and histograms with snapshot merging.

A :class:`MetricsRegistry` is deliberately worker-local: each executor
worker (thread or process) owns one and updates it lock-free on the packet
hot path.  Aggregation happens by *snapshot merging* — after every
completed work unit the worker drains its registry into a plain-dict
snapshot (the per-unit delta), the executor publishes it on the event bus,
and a coordinator-side registry merges it in.  Because counter and
histogram merges are commutative and associative, the aggregate is
independent of scheduling order and identical across the sequential,
thread-pool and process-pool backends for every deterministic series
(packet counts, query counts, memo hit rates); wall-clock histograms merge
correctly too, their *count* deterministic even though their sums are not.

Snapshots are plain JSON-able dicts so they cross process boundaries by
pickle and can be written next to a study archive.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Counter:
    """A monotonically increasing count."""

    value: float = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time value; merging keeps the last-set value."""

    value: float = 0

    def set(self, value: float) -> None:
        self.value = value


#: Fixed log-spaced bucket upper bounds shared by every histogram: four
#: buckets per decade from 1e-3 up to ~5.6e4, covering packet counts,
#: query counts and wall-clock seconds alike.  A *fixed* layout (rather
#: than adapting to the data) is what makes bucket merges commutative
#: and the derived percentiles identical across snapshot orderings.
BUCKET_BOUNDS: tuple[float, ...] = tuple(
    0.001 * (10 ** (i / 4)) for i in range(32)
)

#: Index of the overflow bucket (values above every bound).
OVERFLOW_BUCKET: int = len(BUCKET_BOUNDS)


def _bucket_index(value: float) -> int:
    for index, bound in enumerate(BUCKET_BOUNDS):
        if value <= bound:
            return index
    return OVERFLOW_BUCKET


@dataclass
class Histogram:
    """Streaming summary of an observed series with fixed-bucket quantiles.

    Alongside count/sum/min/max it maintains a sparse map of
    :data:`BUCKET_BOUNDS` bucket index -> observation count, from which
    :meth:`percentile` answers p50/p95/p99 deterministically: the same
    observations produce the same buckets — and therefore the same
    quantile estimates — no matter how they were split across workers
    and merged back together.
    """

    count: int = 0
    total: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None
    buckets: dict[int, int] = field(default_factory=dict)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        index = _bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> Optional[float]:
        """Estimate the p-th percentile from the bucket counts.

        Returns the upper bound of the bucket containing the target rank,
        clamped to the observed ``[min, max]`` so estimates never leave
        the data's actual range.  ``None`` when nothing was observed.
        """
        if not self.count or self.min is None or self.max is None:
            return None
        rank = max(1, math.ceil(self.count * p / 100))
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                if index >= OVERFLOW_BUCKET:
                    return self.max
                return min(max(BUCKET_BOUNDS[index], self.min), self.max)
        return self.max


@dataclass
class RouteLookupStats:
    """Memo hit/miss counts hung off a :class:`RoutingTable`.

    The routing lookup memo is the single hottest memo in the simulator;
    the table bumps these two plain ints behind one ``is not None`` check,
    and the observability session folds them into ``routing.memo_hits`` /
    ``routing.memo_misses`` counters at unit boundaries.
    """

    hits: int = 0
    misses: int = 0

    def drain(self) -> tuple[int, int]:
        out = (self.hits, self.misses)
        self.hits = 0
        self.misses = 0
        return out


def _histogram_state(histogram: Histogram) -> dict:
    """The JSON-able snapshot form of one histogram.

    Bucket keys are serialised as strings so a snapshot is identical to
    its own JSON round-trip; :meth:`MetricsRegistry.merge` coerces them
    back.  The p50/p95/p99 entries are derived (recomputed from buckets
    after every merge), included so a written metrics file is readable
    without post-processing.
    """
    return {
        "count": histogram.count,
        "total": histogram.total,
        "min": histogram.min,
        "max": histogram.max,
        "buckets": {
            str(index): histogram.buckets[index]
            for index in sorted(histogram.buckets)
        },
        "p50": histogram.percentile(50),
        "p95": histogram.percentile(95),
        "p99": histogram.percentile(99),
    }


@dataclass
class MetricsRegistry:
    """Named counters, gauges and histograms with mergeable snapshots."""

    counters: dict[str, Counter] = field(default_factory=dict)
    gauges: dict[str, Gauge] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Merges can arrive from bus handlers; updates on the hot path are
        # worker-local so only merge/snapshot take the lock.
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_lock", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Hot-path updates (worker-local, lock-free)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter()
        return counter

    def inc(self, name: str, amount: float = 1) -> None:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter()
        counter.value += amount

    def gauge(self, name: str) -> Gauge:
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge()
        return gauge

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def histogram(self, name: str) -> Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        return histogram

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # ------------------------------------------------------------------
    # Snapshots and merging
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A plain-dict copy of the current state (JSON/pickle-safe)."""
        with self._lock:
            return {
                "counters": {
                    name: c.value for name, c in sorted(self.counters.items())
                },
                "gauges": {
                    name: g.value for name, g in sorted(self.gauges.items())
                },
                "histograms": {
                    name: _histogram_state(h)
                    for name, h in sorted(self.histograms.items())
                },
            }

    def drain(self) -> dict:
        """Snapshot then reset — the per-unit delta the executor merges."""
        with self._lock:
            out = {
                "counters": {
                    name: c.value for name, c in sorted(self.counters.items())
                },
                "gauges": {
                    name: g.value for name, g in sorted(self.gauges.items())
                },
                "histograms": {
                    name: _histogram_state(h)
                    for name, h in sorted(self.histograms.items())
                },
            }
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()
            return out

    def merge(self, snapshot: dict) -> None:
        """Fold a snapshot (from :meth:`drain`/:meth:`snapshot`) in."""
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                counter = self.counters.get(name)
                if counter is None:
                    counter = self.counters[name] = Counter()
                counter.value += value
            for name, value in snapshot.get("gauges", {}).items():
                self.gauges.setdefault(name, Gauge()).value = value
            for name, data in snapshot.get("histograms", {}).items():
                histogram = self.histograms.get(name)
                if histogram is None:
                    histogram = self.histograms[name] = Histogram()
                histogram.count += data["count"]
                histogram.total += data["total"]
                for index, observed in (data.get("buckets") or {}).items():
                    index = int(index)
                    histogram.buckets[index] = (
                        histogram.buckets.get(index, 0) + observed
                    )
                for bound, better in (("min", min), ("max", max)):
                    incoming = data.get(bound)
                    if incoming is None:
                        continue
                    current = getattr(histogram, bound)
                    setattr(
                        histogram,
                        bound,
                        incoming if current is None
                        else better(current, incoming),
                    )

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Human-readable dump (the CLI ``--metrics`` view)."""
        lines = ["metrics:"]
        for name, counter in sorted(self.counters.items()):
            value = counter.value
            text = f"{value:g}"
            lines.append(f"  {name:<36s} {text:>12s}")
        for name, gauge in sorted(self.gauges.items()):
            lines.append(f"  {name:<36s} {gauge.value:>12g}")
        for name, histogram in sorted(self.histograms.items()):
            quantiles = " ".join(
                f"p{p}={value:.3f}" if value is not None else f"p{p}=-"
                for p, value in (
                    (50, histogram.percentile(50)),
                    (95, histogram.percentile(95)),
                    (99, histogram.percentile(99)),
                )
            )
            lines.append(
                f"  {name:<36s} n={histogram.count} "
                f"mean={histogram.mean:.3f} "
                f"min={histogram.min if histogram.min is not None else '-'} "
                f"max={histogram.max if histogram.max is not None else '-'} "
                f"{quantiles}"
            )
        return "\n".join(lines)
