"""Prometheus text exposition for metrics snapshots.

The daemon's ``GET /metrics`` endpoint (and anything else that wants to
be scraped) renders a :meth:`repro.obs.metrics.MetricsRegistry.snapshot`
dict into the Prometheus text exposition format (version 0.0.4): one
``# TYPE`` comment per family, counters as ``_total``-suffixed samples,
gauges as plain samples, histograms as cumulative ``_bucket{le=...}``
series over the registry's fixed :data:`~repro.obs.metrics.BUCKET_BOUNDS`
plus ``_sum``/``_count``.

Because PR 3's snapshots are plain commutative-mergeable dicts, the
daemon can merge its own service registry with every running job's
aggregated study metrics and render the union here — the scrape sees
queue depth and packet counts through one pane of glass.

Only the snapshot *shape* is consumed, so this module stays importable
without a live registry (tests feed it literal dicts).
"""

from __future__ import annotations

from repro.obs.metrics import BUCKET_BOUNDS

_ALLOWED = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:"
)


def sanitize_metric_name(name: str, prefix: str = "") -> str:
    """Map a dotted registry name onto the Prometheus grammar.

    Dots (the registry's namespace separator) and any other illegal
    character become underscores; a leading digit is prefixed.  The
    mapping is deterministic, so the same registry always exposes the
    same family names.
    """
    cleaned = "".join(c if c in _ALLOWED else "_" for c in name)
    if prefix:
        cleaned = f"{prefix}_{cleaned}"
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned or "_"


def _format_value(value: float) -> str:
    """Prometheus sample values: integers bare, floats via repr."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int) or (
        isinstance(value, float) and value.is_integer()
    ):
        return str(int(value))
    return repr(float(value))


def _format_bound(bound: float) -> str:
    return repr(round(bound, 9))


#: Histogram-name prefixes that additionally render as one labelled
#: summary family each: every ``phase.wall_ms.<phase>`` histogram becomes
#: a ``<prefix>_phase_wall_ms{phase="<phase>",quantile=...}`` sample (and
#: likewise for the per-packet ``stage.wall_ms.*`` series), so a single
#: PromQL selector graphs all phases/stages side by side instead of one
#: query per flattened family name.
_SUMMARY_FAMILIES: tuple[tuple[str, str], ...] = (
    ("phase.wall_ms.", "phase"),
    ("stage.wall_ms.", "stage"),
)

_QUANTILES: tuple[tuple[str, str], ...] = (
    ("0.5", "p50"),
    ("0.95", "p95"),
    ("0.99", "p99"),
)


def _summary_lines(histograms: dict, prefix: str) -> list[str]:
    """Labelled quantile summaries for the wall-clock histogram families.

    Quantiles come straight from the snapshot's precomputed p50/p95/p99
    (recomputed after every merge, so they are the merged estimates);
    members with no observations — quantile ``None`` — emit only their
    ``_sum``/``_count`` samples.
    """
    lines: list[str] = []
    for head, label in _SUMMARY_FAMILIES:
        members = [
            (name[len(head):], data)
            for name, data in sorted(histograms.items())
            if name.startswith(head) and len(name) > len(head)
        ]
        if not members:
            continue
        metric = sanitize_metric_name(head.rstrip("."), prefix)
        lines.append(f"# TYPE {metric} summary")
        for member, data in members:
            for quantile, key in _QUANTILES:
                value = data.get(key)
                if value is None:
                    continue
                lines.append(
                    f'{metric}{{{label}="{member}",quantile="{quantile}"}} '
                    f"{_format_value(value)}"
                )
            lines.append(
                f'{metric}_sum{{{label}="{member}"}} '
                f"{_format_value(data.get('total', 0.0))}"
            )
            lines.append(
                f'{metric}_count{{{label}="{member}"}} '
                f"{int(data.get('count', 0))}"
            )
    return lines


def render_prometheus(snapshot: dict, prefix: str = "repro") -> str:
    """Render a metrics snapshot as Prometheus text exposition.

    Families are emitted in sorted name order (scrapes diff cleanly);
    histogram buckets are cumulative over the fixed shared bounds with a
    terminal ``+Inf`` bucket equal to ``_count``, which is exactly what
    makes them mergeable server-side by any Prometheus consumer.

    Wall-clock histogram families (``phase.wall_ms.*`` and
    ``stage.wall_ms.*``) are *also* rendered as labelled summary series —
    see :data:`_SUMMARY_FAMILIES`.
    """
    lines: list[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = sanitize_metric_name(name, prefix) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        metric = sanitize_metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")
    for name, data in sorted(snapshot.get("histograms", {}).items()):
        metric = sanitize_metric_name(name, prefix)
        lines.append(f"# TYPE {metric} histogram")
        buckets = {
            int(index): count
            for index, count in (data.get("buckets") or {}).items()
        }
        cumulative = 0
        for index, bound in enumerate(BUCKET_BOUNDS):
            cumulative += buckets.get(index, 0)
            lines.append(
                f'{metric}_bucket{{le="{_format_bound(bound)}"}} '
                f"{cumulative}"
            )
        count = int(data.get("count", 0))
        lines.append(f'{metric}_bucket{{le="+Inf"}} {count}')
        lines.append(f"{metric}_sum {_format_value(data.get('total', 0.0))}")
        lines.append(f"{metric}_count {count}")
    lines.extend(
        _summary_lines(snapshot.get("histograms", {}), prefix)
    )
    return "\n".join(lines) + "\n"


def parse_exposition(text: str) -> dict[str, list[tuple[dict, float]]]:
    """Parse exposition text back into ``{family: [(labels, value)]}``.

    A deliberately strict reader of the subset :func:`render_prometheus`
    emits — the CI smoke job and the stream tests use it to prove a
    scraped ``/metrics`` body is well-formed, so it raises ``ValueError``
    on any malformed line rather than skipping it.
    """
    samples: dict[str, list[tuple[dict, float]]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            raise ValueError(f"line {lineno}: no sample value: {line!r}")
        labels: dict[str, str] = {}
        if "{" in name_part:
            if not name_part.endswith("}"):
                raise ValueError(f"line {lineno}: unterminated labels")
            name, _, label_text = name_part.partition("{")
            for pair in label_text[:-1].split(","):
                key, eq, raw = pair.partition("=")
                if not eq or len(raw) < 2 or raw[0] != '"' or raw[-1] != '"':
                    raise ValueError(f"line {lineno}: bad label {pair!r}")
                labels[key] = raw[1:-1]
        else:
            name = name_part
        if any(c not in _ALLOWED for c in name) or not name:
            raise ValueError(f"line {lineno}: bad metric name {name!r}")
        try:
            value = float(value_part)
        except ValueError:
            raise ValueError(
                f"line {lineno}: bad value {value_part!r}"
            ) from None
        samples.setdefault(name, []).append((labels, value))
    return samples


def summary_quantiles(
    samples: dict[str, list[tuple[dict, float]]],
    family: str,
    label: str,
) -> dict[str, dict[str, float]]:
    """Reassemble a parsed labelled summary family into per-member dicts.

    The inverse of :func:`_summary_lines` over :func:`parse_exposition`
    output: ``summary_quantiles(parse_exposition(text),
    "repro_phase_wall_ms", "phase")`` returns ``{"delivery": {"0.5": ...,
    "0.95": ..., "0.99": ..., "sum": ..., "count": ...}, ...}`` — which is
    what the CI smoke asserts against to prove the quantile series
    survived the scrape.
    """
    members: dict[str, dict[str, float]] = {}
    for labels, value in samples.get(family, []):
        member = labels.get(label)
        quantile = labels.get("quantile")
        if member is None or quantile is None:
            continue
        members.setdefault(member, {})[quantile] = value
    for suffix in ("sum", "count"):
        for labels, value in samples.get(f"{family}_{suffix}", []):
            member = labels.get(label)
            if member is None:
                continue
            members.setdefault(member, {})[suffix] = value
    return members


__all__ = [
    "render_prometheus",
    "parse_exposition",
    "summary_quantiles",
    "sanitize_metric_name",
]
