"""Study input sources: *what* a study measures, as a first-class value.

Historically the only way to scope a study was the ad-hoc ``providers=``
filter threaded through the CLI, ``repro.api`` and the serve protocol — a
list of catalogue names or ``None`` for "all 62".  Ecosystem-scale studies
need a third shape: providers that do not exist in the catalogue at all but
are generated parametrically (``repro.ecosystem.generate``).  A
:class:`StudySource` names any of the three uniformly:

- ``catalog``   — the paper's 62-provider catalogue (the default);
- ``explicit``  — a fixed list of catalogue provider names;
- ``generated`` — ``count`` synthetic-but-fully-auditable providers derived
  from a generator seed, realised lazily (and shard by shard) so a
  10,000-provider study never materialises 10,000 profiles at once.

The source is plain data (frozen, hashable, JSON round-trip) so it can ride
inside :class:`repro.config.StudyConfig`, a serve job request, or an
on-disk *ecosystem spec* file that ``repro ecosystem generate`` emits and
``repro study --source`` / ``repro client submit --source`` both accept.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:
    from repro.ecosystem.generate import ProviderSource
    from repro.vpn.provider import ProviderProfile

_KINDS = ("catalog", "explicit", "generated")

#: Magic/format fields of the spec file ``repro ecosystem generate`` writes.
SPEC_FORMAT = "repro-ecosystem-spec"
SPEC_VERSION = 1

#: Generated vantage points live two-per-slot in one /24 (so a deliberate
#: fraction of provider pairs can share a block, reproducing the paper's
#: shared-infrastructure findings at scale) — which bounds how many
#: endpoints one generated provider can advertise.
MAX_GENERATED_VANTAGE_POINTS = 96

#: Generated provider blocks are carved from 11.0.0.0/8 (unused by the
#: simulation's baseline internet), one /24 slot per provider index.
MAX_GENERATED_PROVIDERS = 60000


@dataclass(frozen=True)
class StudySource:
    """Where a study's providers come from.

    ``kind`` selects the shape; the other fields only apply to their kind:
    ``providers`` for ``explicit``, ``count``/``generator_seed``/
    ``vantage_points`` for ``generated`` (``generator_seed=None`` derives
    the generator from the study seed, so re-seeding a longitudinal study
    re-generates a drifted ecosystem).
    """

    kind: str = "catalog"
    providers: Optional[tuple[str, ...]] = None
    count: int = 0
    generator_seed: Optional[int] = None
    vantage_points: int = 4

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"source kind must be one of {_KINDS}, got {self.kind!r}"
            )
        if self.providers is not None and not isinstance(
            self.providers, tuple
        ):
            object.__setattr__(self, "providers", tuple(self.providers))
        if self.kind == "explicit":
            if not self.providers:
                raise ValueError(
                    "an explicit source needs at least one provider name"
                )
        elif self.providers is not None:
            raise ValueError(
                f"a {self.kind!r} source takes no provider list"
            )
        if self.kind == "generated":
            if not (1 <= self.count <= MAX_GENERATED_PROVIDERS):
                raise ValueError(
                    f"generated provider count must be in "
                    f"[1, {MAX_GENERATED_PROVIDERS}], got {self.count}"
                )
            if not (1 <= self.vantage_points <= MAX_GENERATED_VANTAGE_POINTS):
                raise ValueError(
                    f"vantage_points per generated provider must be in "
                    f"[1, {MAX_GENERATED_VANTAGE_POINTS}], "
                    f"got {self.vantage_points}"
                )
        elif self.count:
            raise ValueError(f"a {self.kind!r} source takes no count")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def catalog(cls) -> "StudySource":
        """The paper's full 62-provider catalogue."""
        return cls(kind="catalog")

    @classmethod
    def explicit(cls, providers: Sequence[str]) -> "StudySource":
        """A fixed list of catalogue provider names."""
        return cls(kind="explicit", providers=tuple(providers))

    @classmethod
    def generated(
        cls,
        count: int,
        generator_seed: Optional[int] = None,
        vantage_points: int = 4,
    ) -> "StudySource":
        """``count`` parametrically generated auditable providers."""
        return cls(
            kind="generated",
            count=count,
            generator_seed=generator_seed,
            vantage_points=vantage_points,
        )

    # ------------------------------------------------------------------
    @property
    def is_generated(self) -> bool:
        return self.kind == "generated"

    def effective_generator_seed(self, study_seed: int) -> int:
        return (
            self.generator_seed
            if self.generator_seed is not None
            else study_seed
        )

    def provider_source(self, study_seed: int) -> "ProviderSource":
        """The lazy provider iterator behind this source."""
        from repro.ecosystem.generate import (
            CatalogProviderSource,
            GeneratedProviderSource,
        )

        if self.kind == "generated":
            return GeneratedProviderSource(
                count=self.count,
                seed=self.effective_generator_seed(study_seed),
                vantage_points=self.vantage_points,
            )
        return CatalogProviderSource(only=self.providers)

    def provider_names(self, study_seed: int) -> list[str]:
        """All provider names this source yields, in study order."""
        return list(self.provider_source(study_seed).names())

    def profiles_for(
        self, names: Sequence[str], study_seed: int
    ) -> list["ProviderProfile"]:
        """Realise ground-truth profiles for a name subset (one shard)."""
        return list(self.provider_source(study_seed).profiles(names))

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def cache_key(self) -> str:
        """Stable text identity, used to key world-template caches."""
        if self.kind == "explicit":
            return "explicit:" + ",".join(self.providers or ())
        if self.kind == "generated":
            seed = (
                "study" if self.generator_seed is None
                else str(self.generator_seed)
            )
            return (
                f"generated:count={self.count}:seed={seed}"
                f":vps={self.vantage_points}"
            )
        return "catalog"

    def plan_key(self) -> Optional[str]:
        """Checkpoint-compatibility marker, or None for catalogue studies.

        Catalogue and explicit sources are fully identified by their
        provider-name list, which the plan fingerprint already contains —
        returning None keeps old checkpoints resumable.  Generated sources
        add their parameters (the same names with a different
        ``vantage_points`` would plan different units).
        """
        return self.cache_key() if self.is_generated else None

    def describe(self) -> str:
        if self.kind == "explicit":
            return f"{len(self.providers or ())} named provider(s)"
        if self.kind == "generated":
            return (
                f"{self.count} generated provider(s) "
                f"({self.vantage_points} vantage points each)"
            )
        return "full 62-provider catalogue"

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        out: dict = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if spec.name == "providers" and value is not None:
                value = list(value)
            out[spec.name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "StudySource":
        known = {spec.name for spec in fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in known}
        providers = kwargs.get("providers")
        if providers is not None:
            kwargs["providers"] = tuple(providers)
        return cls(**kwargs)

    # ------------------------------------------------------------------
    # Spec files (what ``repro ecosystem generate --out`` emits)
    # ------------------------------------------------------------------
    def spec_dict(self) -> dict:
        return {
            "format": SPEC_FORMAT,
            "spec_version": SPEC_VERSION,
            "source": self.to_dict(),
        }

    def write_spec(self, path: str | pathlib.Path) -> pathlib.Path:
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.spec_dict(), indent=2) + "\n")
        return path

    @classmethod
    def from_spec(cls, path: str | pathlib.Path) -> "StudySource":
        path = pathlib.Path(path)
        try:
            raw = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise ValueError(f"unreadable ecosystem spec {path}: {exc}")
        if not isinstance(raw, dict) or raw.get("format") != SPEC_FORMAT:
            raise ValueError(
                f"{path} is not a {SPEC_FORMAT} file (missing format field)"
            )
        if raw.get("spec_version") != SPEC_VERSION:
            raise ValueError(
                f"{path} has spec version {raw.get('spec_version')!r}; "
                f"this build reads {SPEC_VERSION}"
            )
        return cls.from_dict(raw.get("source") or {})

    # ------------------------------------------------------------------
    # CLI parsing: --source catalog | generated:N[:SEED[:VPS]] | spec path
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "StudySource":
        """Parse a CLI ``--source`` value.

        Accepts ``catalog``, ``generated:COUNT[:SEED[:VPS]]``, the path of
        an ecosystem spec file, or a comma-separated list of catalogue
        provider names.
        """
        text = text.strip()
        if text == "catalog":
            return cls.catalog()
        if text.startswith("generated:"):
            parts = text.split(":")[1:]
            if not parts or len(parts) > 3:
                raise ValueError(
                    "generated source syntax: generated:COUNT[:SEED[:VPS]]"
                )
            try:
                numbers = [int(p) for p in parts]
            except ValueError:
                raise ValueError(
                    f"generated source parameters must be integers, "
                    f"got {text!r}"
                )
            count = numbers[0]
            seed = numbers[1] if len(numbers) > 1 else None
            vps = numbers[2] if len(numbers) > 2 else 4
            return cls.generated(
                count, generator_seed=seed, vantage_points=vps
            )
        path = pathlib.Path(text)
        if path.suffix == ".json" or path.exists():
            return cls.from_spec(path)
        return cls.explicit(
            [name.strip() for name in text.split(",") if name.strip()]
        )
