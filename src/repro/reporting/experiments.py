"""The experiment registry.

Maps every table and figure of the paper to the modules that implement it
and the benchmark that regenerates it.  ``EXPERIMENTS`` is the programmatic
counterpart of DESIGN.md's per-experiment index; the documentation tests
assert the registry and the benchmark directory stay in sync.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Experiment:
    """One table or figure of the paper."""

    exp_id: str           # e.g. "table4", "fig9"
    paper_ref: str        # human-readable reference
    description: str
    modules: tuple[str, ...]
    bench: str            # benchmark file that regenerates it


EXPERIMENTS: tuple[Experiment, ...] = (
    Experiment(
        "table1", "Table 1",
        "Review websites used for provider collection, with affiliate status",
        ("repro.ecosystem.sources",),
        "benchmarks/bench_table1.py",
    ),
    Experiment(
        "table2", "Table 2",
        "Number of VPNs drawn from each selection source (union = 200)",
        ("repro.ecosystem.sources", "repro.ecosystem.generate"),
        "benchmarks/bench_table2.py",
    ),
    Experiment(
        "table3", "Table 3",
        "Monthly subscription costs across subscription models",
        ("repro.ecosystem.generate", "repro.ecosystem.analysis"),
        "benchmarks/bench_table3.py",
    ),
    Experiment(
        "table4", "Table 4",
        "Destination domains of URL redirections (national censorship)",
        ("repro.core.manipulation.dom_collection",
         "repro.core.analysis.redirects", "repro.vpn.behaviors"),
        "benchmarks/bench_table4.py",
    ),
    Experiment(
        "table5", "Table 5",
        "IP blocks shared by the vantage points of >= 3 providers",
        ("repro.core.analysis.shared_infra", "repro.vpn.catalog"),
        "benchmarks/bench_table5.py",
    ),
    Experiment(
        "table6", "Table 6",
        "VPN services leaking DNS and IPv6 traffic from their clients",
        ("repro.core.leakage.dns_leakage", "repro.core.leakage.ipv6_leakage"),
        "benchmarks/bench_table6.py",
    ),
    Experiment(
        "table7", "Table 7 (Appendix A)",
        "The complete list of 62 evaluated services with subscription types",
        ("repro.vpn.catalog",),
        "benchmarks/bench_table7.py",
    ),
    Experiment(
        "fig1", "Figure 1",
        "Geographic distribution of VPN business locations",
        ("repro.ecosystem.analysis",),
        "benchmarks/bench_fig1.py",
    ),
    Experiment(
        "fig2", "Figure 2",
        "CDF of claimed server counts (80% at <= 750 servers)",
        ("repro.ecosystem.analysis",),
        "benchmarks/bench_fig2.py",
    ),
    Experiment(
        "fig3", "Figure 3",
        "Vantage-point country heat map for the top-15 popular services",
        ("repro.ecosystem.analysis", "repro.vpn.catalog"),
        "benchmarks/bench_fig3.py",
    ),
    Experiment(
        "fig4", "Figure 4",
        "Accepted payment methods by category",
        ("repro.ecosystem.analysis",),
        "benchmarks/bench_fig4.py",
    ),
    Experiment(
        "fig5", "Figure 5",
        "Tunneling technologies supported by VPN services",
        ("repro.ecosystem.analysis",),
        "benchmarks/bench_fig5.py",
    ),
    Experiment(
        "fig6", "Figure 6",
        "TTK (Russia) censorship redirection when visiting blocked content",
        ("repro.vpn.behaviors", "repro.core.manipulation.dom_collection"),
        "benchmarks/bench_fig6.py",
    ),
    Experiment(
        "fig7", "Figure 7",
        "Premium-service advertisement injected by the Seed4.me trial",
        ("repro.vpn.behaviors", "repro.core.manipulation.dom_collection"),
        "benchmarks/bench_fig7.py",
    ),
    Experiment(
        "fig8", "Figure 8",
        "Advertised vantage networks of Anonine, Boxpn and Easy-Hide-IP",
        ("repro.core.analysis.shared_infra", "repro.vpn.catalog"),
        "benchmarks/bench_fig8.py",
    ),
    Experiment(
        "fig9", "Figure 9",
        "RTT distributions revealing co-located 'virtual' vantage points",
        ("repro.core.infrastructure.ping_traceroute",
         "repro.core.analysis.colocation"),
        "benchmarks/bench_fig9.py",
    ),
    Experiment(
        "headline", "Sections 6.1-6.2, 6.6",
        "Interception/manipulation headline numbers: 1 injector, 5 proxies, "
        "no TLS stripping, no P2P egress",
        ("repro.core.harness",),
        "benchmarks/bench_headline.py",
    ),
    Experiment(
        "geoip", "Section 6.4.1",
        "Geo-IP database agreement: Google 70%, IP2Location 90%, MaxMind 95%",
        ("repro.core.analysis.geoip_compare", "repro.geoip"),
        "benchmarks/bench_geoip.py",
    ),
    Experiment(
        "virtual", "Section 6.4.2",
        "Six providers with 'virtual' vantage points",
        ("repro.core.analysis.colocation",),
        "benchmarks/bench_virtual.py",
    ),
    Experiment(
        "tunnel-failure", "Section 6.5",
        "25 of 43 custom-client services (58%) leak on tunnel failure",
        ("repro.core.leakage.tunnel_failure",),
        "benchmarks/bench_tunnel_failure.py",
    ),
)


def experiment(exp_id: str) -> Experiment:
    for entry in EXPERIMENTS:
        if entry.exp_id == exp_id:
            return entry
    raise KeyError(exp_id)
