"""Fixed-width text table rendering."""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render a list of rows as a fixed-width text table."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return "  ".join(
            cell.ljust(widths[index]) for index, cell in enumerate(cells)
        ).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), 8))
    lines.append(format_row(list(headers)))
    lines.append(format_row(["-" * w for w in widths]))
    for row in materialised:
        lines.append(format_row(row))
    return "\n".join(lines)
