"""Report rendering: text tables and figure series.

The benchmarks regenerate every table and figure of the paper; this package
holds the shared rendering (fixed-width text tables, simple CDF/series
extraction, ASCII bar charts) and the experiment registry mapping each
table/figure to the code that reproduces it.
"""

from repro.reporting.experiments import EXPERIMENTS, Experiment
from repro.reporting.figures import ascii_bar_chart, cdf_points, series_summary
from repro.reporting.tables import render_table

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "ascii_bar_chart",
    "cdf_points",
    "series_summary",
    "render_table",
]
