"""Figure-series helpers: CDFs, bars, and summaries of numeric series."""

from __future__ import annotations

from typing import Iterable, Sequence


def cdf_points(values: Iterable[float]) -> list[tuple[float, float]]:
    """(value, cumulative fraction) points for a CDF plot."""
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return []
    return [(value, (index + 1) / n) for index, value in enumerate(ordered)]


def series_summary(values: Sequence[float]) -> dict[str, float]:
    """Min/median/mean/max summary of a numeric series."""
    if not values:
        return {"min": 0.0, "median": 0.0, "mean": 0.0, "max": 0.0}
    ordered = sorted(values)
    n = len(ordered)
    median = (
        ordered[n // 2]
        if n % 2 == 1
        else (ordered[n // 2 - 1] + ordered[n // 2]) / 2.0
    )
    return {
        "min": ordered[0],
        "median": median,
        "mean": sum(ordered) / n,
        "max": ordered[-1],
    }


def ascii_bar_chart(
    data: Sequence[tuple[str, float]],
    width: int = 50,
    title: str = "",
) -> str:
    """Horizontal ASCII bar chart (the figures' text rendering)."""
    lines = []
    if title:
        lines.append(title)
    if not data:
        return "\n".join(lines + ["(no data)"])
    peak = max(value for _, value in data) or 1.0
    label_width = max(len(label) for label, _ in data)
    for label, value in data:
        bar = "#" * max(1, int(round(width * value / peak))) if value else ""
        lines.append(f"{label.ljust(label_width)}  {bar} {value:g}")
    return "\n".join(lines)
