"""DNS message model.

Questions, resource records and responses as simple frozen dataclasses.  The
wire format is not reproduced byte-for-byte; what matters to the measurement
suite is the (qname, qtype) -> answers mapping, the rcode, and which resolver
produced the answer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import lru_cache


class RCode(enum.Enum):
    NOERROR = "NOERROR"
    NXDOMAIN = "NXDOMAIN"
    SERVFAIL = "SERVFAIL"
    REFUSED = "REFUSED"


SUPPORTED_RTYPES = ("A", "AAAA", "CNAME", "NS", "TXT", "PTR")


@dataclass(frozen=True)
class DnsQuestion:
    """A DNS question: lower-cased name + record type."""

    qname: str
    qtype: str = "A"

    def __post_init__(self) -> None:
        object.__setattr__(self, "qname", normalise_name(self.qname))
        if self.qtype not in SUPPORTED_RTYPES:
            raise ValueError(f"unsupported qtype {self.qtype!r}")


@dataclass(frozen=True)
class DnsRecord:
    """A resource record."""

    name: str
    rtype: str
    value: str
    ttl: int = 300

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", normalise_name(self.name))


@dataclass(frozen=True)
class DnsResponse:
    """A resolver's answer to one question."""

    question: DnsQuestion
    rcode: RCode = RCode.NOERROR
    records: tuple[DnsRecord, ...] = ()
    resolver: str = ""  # which server answered, for provenance
    authoritative: bool = False

    @property
    def addresses(self) -> tuple[str, ...]:
        """The address-record values in the answer (A or AAAA)."""
        # Memoised: responses are frozen and the leakage/manipulation
        # analyses re-read the answer addresses many times per response.
        cached = self.__dict__.get("_addresses")
        if cached is None:
            cached = tuple(
                r.value for r in self.records if r.rtype in ("A", "AAAA")
            )
            object.__setattr__(self, "_addresses", cached)
        return cached

    @property
    def ok(self) -> bool:
        return self.rcode is RCode.NOERROR and bool(self.records)

    def describe(self) -> str:
        answers = ", ".join(self.addresses) or self.rcode.value
        return f"{self.question.qname}/{self.question.qtype} -> {answers}"


@lru_cache(maxsize=8192)
def normalise_name(name: str) -> str:
    """Lower-case and strip the trailing dot from a domain name."""
    return name.strip().rstrip(".").lower()


def parent_domains(name: str) -> list[str]:
    """All ancestor domains of *name*, from itself up to the TLD.

    >>> parent_domains("a.b.example.com")
    ['a.b.example.com', 'b.example.com', 'example.com', 'com']
    """
    name = normalise_name(name)
    if not name:
        return []
    labels = name.split(".")
    return [".".join(labels[i:]) for i in range(len(labels))]
