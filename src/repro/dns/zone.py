"""Authoritative zone data.

A :class:`Zone` holds the records for one apex domain; a
:class:`ZoneRegistry` is the global collection of zones the recursive
resolvers consult.  The registry plays the role of "the authoritative DNS of
the internet" in the simulation: web servers register their A/AAAA records
here when the world is built.
"""

from __future__ import annotations

from typing import Optional

from repro.dns.message import (
    DnsQuestion,
    DnsRecord,
    DnsResponse,
    RCode,
    normalise_name,
    parent_domains,
)


class Zone:
    """Records for one apex domain (and all names under it)."""

    def __init__(self, apex: str) -> None:
        self.apex = normalise_name(apex)
        self._records: dict[tuple[str, str], list[DnsRecord]] = {}

    def add(self, name: str, rtype: str, value: str, ttl: int = 300) -> DnsRecord:
        record = DnsRecord(name=name, rtype=rtype, value=value, ttl=ttl)
        if not self.contains_name(record.name):
            raise ValueError(f"{record.name!r} is not under zone {self.apex!r}")
        self._records.setdefault((record.name, rtype), []).append(record)
        return record

    def contains_name(self, name: str) -> bool:
        name = normalise_name(name)
        return name == self.apex or name.endswith("." + self.apex)

    def lookup(self, question: DnsQuestion) -> Optional[list[DnsRecord]]:
        """Records for a question, following CNAMEs within the zone."""
        direct = self._records.get((question.qname, question.qtype))
        if direct:
            return list(direct)
        cname = self._records.get((question.qname, "CNAME"))
        if cname:
            target = cname[0].value
            chased = self._records.get((normalise_name(target), question.qtype))
            if chased:
                return list(cname) + list(chased)
            return list(cname)
        return None

    def has_name(self, name: str) -> bool:
        name = normalise_name(name)
        return any(rec_name == name for (rec_name, _) in self._records)

    def records(self) -> list[DnsRecord]:
        out: list[DnsRecord] = []
        for records in self._records.values():
            out.extend(records)
        return out


class ZoneRegistry:
    """All authoritative zones in the simulated internet.

    A zone may be *delegated*: recursive resolvers forward questions under
    it to the delegated server (passing their own identity as the query
    source), instead of answering from registry data.  This is how the
    tagged-hostname logging nameserver observes which resolver actually
    performs recursion (paper Section 5.3.2).
    """

    def __init__(self) -> None:
        self._zones: dict[str, Zone] = {}
        self._delegations: dict[str, object] = {}

    def zone(self, apex: str) -> Zone:
        """Get or create the zone for *apex*."""
        apex = normalise_name(apex)
        if apex not in self._zones:
            self._zones[apex] = Zone(apex)
        return self._zones[apex]

    def delegate(self, apex: str, server: object) -> None:
        """Delegate *apex* (and everything under it) to *server*.

        ``server`` must expose ``answer(question, source) -> DnsResponse``.
        """
        self._delegations[normalise_name(apex)] = server

    def delegation_for(self, name: str) -> Optional[object]:
        for candidate in parent_domains(name):
            server = self._delegations.get(candidate)
            if server is not None:
                return server
        return None

    def find_zone(self, name: str) -> Optional[Zone]:
        """The most specific zone responsible for *name*."""
        for candidate in parent_domains(name):
            zone = self._zones.get(candidate)
            if zone is not None:
                return zone
        return None

    def register_host_record(
        self, name: str, address: str, ttl: int = 300
    ) -> DnsRecord:
        """Convenience: add an A or AAAA record under the right apex zone.

        The apex is taken to be the last two labels of the name (good enough
        for the simulation's flat namespace).
        """
        name = normalise_name(name)
        labels = name.split(".")
        apex = ".".join(labels[-2:]) if len(labels) >= 2 else name
        rtype = "AAAA" if ":" in address else "A"
        return self.zone(apex).add(name, rtype, address, ttl)

    def resolve(self, question: DnsQuestion) -> DnsResponse:
        """Authoritative resolution against the registry."""
        zone = self.find_zone(question.qname)
        if zone is None:
            return DnsResponse(
                question=question, rcode=RCode.NXDOMAIN, resolver="registry"
            )
        records = zone.lookup(question)
        if records is None:
            if zone.has_name(question.qname):
                # Name exists but not this type: NOERROR with empty answer.
                return DnsResponse(
                    question=question,
                    rcode=RCode.NOERROR,
                    records=(),
                    resolver="registry",
                    authoritative=True,
                )
            return DnsResponse(
                question=question, rcode=RCode.NXDOMAIN, resolver="registry"
            )
        return DnsResponse(
            question=question,
            rcode=RCode.NOERROR,
            records=tuple(records),
            resolver="registry",
            authoritative=True,
        )

    def zones(self) -> list[Zone]:
        return list(self._zones.values())
