"""DNS substrate.

A small but faithful DNS layer: query/answer messages, authoritative zones,
recursive and logging nameservers, public anycast resolvers (Google Public
DNS and Quad9 equivalents), and a stub resolver bound to a host's configured
servers.  The measurement suite's DNS-manipulation, DNS-leakage and
recursive-origin tests run on top of it.
"""

from repro.dns.message import DnsQuestion, DnsRecord, DnsResponse, RCode
from repro.dns.resolver import StubResolver, resolve_via_server
from repro.dns.server import (
    AuthoritativeServer,
    LoggingNameserver,
    RecursiveResolverServer,
    install_dns_service,
)
from repro.dns.zone import Zone, ZoneRegistry

__all__ = [
    "DnsQuestion",
    "DnsRecord",
    "DnsResponse",
    "RCode",
    "StubResolver",
    "resolve_via_server",
    "AuthoritativeServer",
    "LoggingNameserver",
    "RecursiveResolverServer",
    "install_dns_service",
    "Zone",
    "ZoneRegistry",
]
