"""DNS servers.

Three server types, all installed as UDP/53 services on a simulated host via
:func:`install_dns_service`:

- :class:`AuthoritativeServer` answers from one zone;
- :class:`RecursiveResolverServer` answers from the global
  :class:`~repro.dns.zone.ZoneRegistry` (optionally through a manipulation
  hook — this is how a misbehaving VPN's resolver rewrites answers);
- :class:`LoggingNameserver` is the paper's tagged-hostname trick (Section
  5.3.2, "Recursive DNS Origins"): it records the source address of every
  query it sees, so a test that resolves a unique name through a VPN learns
  which resolver (and thus which network) actually performed the recursion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.dns.message import DnsQuestion, DnsRecord, DnsResponse, RCode
from repro.dns.zone import Zone, ZoneRegistry
from repro.net.host import Host
from repro.net.packet import DnsPayload, Packet, UdpDatagram

# Rewrites a finished response; returning None keeps the original.
ManipulationHook = Callable[[DnsResponse], Optional[DnsResponse]]


@dataclass
class QueryLogEntry:
    """One query observed by a logging nameserver."""

    qname: str
    qtype: str
    source_address: str


class _DnsServiceBase:
    """Shared packet plumbing for DNS services."""

    name = "dns"

    def answer(self, question: DnsQuestion, source: str) -> DnsResponse:
        raise NotImplementedError

    def handle(self, packet: Packet, host: Host) -> Optional[list[Packet]]:
        payload = packet.payload
        if not isinstance(payload, UdpDatagram):
            return None
        dns = payload.payload
        if not isinstance(dns, DnsPayload) or dns.is_response:
            return None
        try:
            question = DnsQuestion(qname=dns.qname, qtype=dns.qtype)
        except ValueError:
            response = DnsResponse(
                question=DnsQuestion(qname=dns.qname),
                rcode=RCode.SERVFAIL,
                resolver=self.name,
            )
        else:
            response = self.answer(question, source=str(packet.src))
        reply = Packet(
            src=packet.dst,
            dst=packet.src,
            payload=UdpDatagram(
                src_port=payload.dst_port,
                dst_port=payload.src_port,
                payload=DnsPayload(
                    qname=dns.qname,
                    qtype=dns.qtype,
                    is_response=True,
                    rcode=response.rcode.value,
                    answers=response.addresses,
                    txid=dns.txid,
                ),
            ),
        )
        return [reply]


class AuthoritativeServer(_DnsServiceBase):
    """Authoritative-only server for a single zone."""

    def __init__(self, zone: Zone, name: str = "") -> None:
        self.zone = zone
        self.name = name or f"auth:{zone.apex}"

    def answer(self, question: DnsQuestion, source: str) -> DnsResponse:
        if not self.zone.contains_name(question.qname):
            return DnsResponse(
                question=question, rcode=RCode.REFUSED, resolver=self.name
            )
        records = self.zone.lookup(question)
        if records is None:
            return DnsResponse(
                question=question, rcode=RCode.NXDOMAIN, resolver=self.name
            )
        return DnsResponse(
            question=question,
            records=tuple(records),
            resolver=self.name,
            authoritative=True,
        )


class RecursiveResolverServer(_DnsServiceBase):
    """A recursive resolver answering from the global zone registry.

    ``manipulation`` lets a VPN provider's resolver rewrite answers — the
    behaviour the DNS-manipulation test (Section 5.3.1) is designed to catch.
    ``query_log`` records every (question, source) pair, which the
    recursive-origin analysis consumes.
    """

    def __init__(
        self,
        registry: ZoneRegistry,
        name: str,
        manipulation: ManipulationHook | None = None,
        identity: str = "",
    ) -> None:
        self.registry = registry
        self.name = name
        self.manipulation = manipulation
        # The address recursion appears to come from when this resolver
        # walks to an authoritative server. Empty means "use the query's
        # own source" — right for VPN resolvers, whose recursion egresses
        # at the vantage point that relayed the query.
        self.identity = identity
        self.query_log: list[QueryLogEntry] = []

    def answer(self, question: DnsQuestion, source: str) -> DnsResponse:
        self.query_log.append(
            QueryLogEntry(
                qname=question.qname, qtype=question.qtype, source_address=source
            )
        )
        delegated = self.registry.delegation_for(question.qname)
        if delegated is not None:
            recursor = self.identity or source
            response = delegated.answer(question, source=recursor)  # type: ignore[attr-defined]
        else:
            response = self.registry.resolve(question)
        response = DnsResponse(
            question=response.question,
            rcode=response.rcode,
            records=response.records,
            resolver=self.name,
            authoritative=False,
        )
        if self.manipulation is not None:
            rewritten = self.manipulation(response)
            if rewritten is not None:
                return rewritten
        return response


class LoggingNameserver(AuthoritativeServer):
    """Authoritative server that logs the source of every query.

    The measurement suite resolves ``<tag>.<probe domain>`` through the VPN;
    the entry recorded here reveals which resolver IP performed the lookup.
    Wildcard answers are synthesised so every tagged name resolves.
    """

    def __init__(self, zone: Zone, answer_address: str = "192.0.2.53") -> None:
        super().__init__(zone, name=f"probe:{zone.apex}")
        self.answer_address = answer_address
        self.query_log: list[QueryLogEntry] = []

    def answer(self, question: DnsQuestion, source: str) -> DnsResponse:
        if not self.zone.contains_name(question.qname):
            return DnsResponse(
                question=question, rcode=RCode.REFUSED, resolver=self.name
            )
        self.query_log.append(
            QueryLogEntry(
                qname=question.qname, qtype=question.qtype, source_address=source
            )
        )
        if question.qtype != "A":
            return DnsResponse(
                question=question, records=(), resolver=self.name,
                authoritative=True,
            )
        record = DnsRecord(
            name=question.qname, rtype="A", value=self.answer_address
        )
        return DnsResponse(
            question=question,
            records=(record,),
            resolver=self.name,
            authoritative=True,
        )

    def sources_for_tag(self, tag: str) -> list[str]:
        """All source addresses that queried a name containing *tag*."""
        return [
            entry.source_address
            for entry in self.query_log
            if tag.lower() in entry.qname
        ]


def install_dns_service(host: Host, service: _DnsServiceBase) -> None:
    """Bind a DNS service to UDP/53 on *host*."""
    host.bind("udp", 53, service.handle)
