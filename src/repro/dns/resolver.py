"""Stub resolution from a host.

:class:`StubResolver` is what applications on a host use: it sends UDP/53
queries to the host's configured DNS servers (or an explicit server) through
the host's routing table, so queries are subject to tunnel routing, firewall
rules and packet capture exactly like any other traffic — which is what the
DNS-leakage test depends on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dns.message import DnsQuestion, DnsRecord, DnsResponse, RCode
from repro.net.addresses import Address, parse_address
from repro.net.host import Host
from repro.net.packet import DnsPayload, Packet, UdpDatagram


class _TxidCounter:
    """Resettable, thread-local transaction-id source.

    Txids end up in query payloads, which feed the latency model's jitter
    hash — so the harness resets this counter at unit boundaries (and the
    observability session saves/restores it around ground-truth
    collection) to keep every unit's DNS packet bytes independent of how
    many queries the process issued before.  The counter is thread-local
    because the thread execution backend runs one suite per worker
    thread: a process-global counter would interleave increments from
    concurrent units and make packet bytes scheduling-dependent.  Answers
    never depend on the txid value, only on the question, so results are
    unaffected either way.
    """

    __slots__ = ("_local", "_start")

    def __init__(self, start: int = 1) -> None:
        import threading

        self._local = threading.local()
        self._start = start

    @property
    def value(self) -> int:
        return getattr(self._local, "value", self._start)

    def __next__(self) -> int:
        value = self.value
        self._local.value = value + 1
        return value

    def reset(self, value: int = 1) -> None:
        self._local.value = value


_txid_counter = _TxidCounter()


def reset_txids(value: int = 1) -> None:
    _txid_counter.reset(value)


def txid_state() -> int:
    return _txid_counter.value


def resolve_via_server(
    host: Host,
    server: str | Address,
    qname: str,
    qtype: str = "A",
) -> DnsResponse:
    """Send one DNS query from *host* to *server* and parse the reply."""
    internet = host.internet
    obs = internet.obs if internet is not None else None
    if obs is None:
        return _resolve_via_server(host, server, qname, qtype)
    profile = obs.profile
    if profile is not None:
        profile.enter("dns")
    try:
        response = _resolve_via_server(host, server, qname, qtype)
    finally:
        if profile is not None:
            profile.leave()
    obs.dns_query(
        host.name, qname, qtype, response.resolver, response.rcode.value
    )
    return response


def _resolve_via_server(
    host: Host,
    server: str | Address,
    qname: str,
    qtype: str = "A",
) -> DnsResponse:
    if isinstance(server, str):
        server = parse_address(server)
    question = DnsQuestion(qname=qname, qtype=qtype)
    socket = host.open_socket("udp")
    try:
        route = host.routing.lookup(server)
        if route is None:
            return DnsResponse(
                question=question, rcode=RCode.SERVFAIL, resolver=str(server)
            )
        interface = host.interfaces.get(route.interface)
        if interface is None or not interface.up:
            return DnsResponse(
                question=question, rcode=RCode.SERVFAIL, resolver=str(server)
            )
        src = interface.address_for_version(server.version)
        if src is None:
            return DnsResponse(
                question=question, rcode=RCode.SERVFAIL, resolver=str(server)
            )
        query = Packet(
            src=src,
            dst=server,
            payload=UdpDatagram(
                src_port=socket.port,
                dst_port=53,
                payload=DnsPayload(
                    qname=question.qname,
                    qtype=question.qtype,
                    txid=next(_txid_counter),
                ),
            ),
        )
        outcome = host.send(query)
        if not outcome.ok:
            return DnsResponse(
                question=question, rcode=RCode.SERVFAIL, resolver=str(server)
            )
        for response in outcome.responses:
            payload = response.payload
            if not isinstance(payload, UdpDatagram):
                continue
            dns = payload.payload
            if not isinstance(dns, DnsPayload) or not dns.is_response:
                continue
            records = tuple(
                DnsRecord(
                    name=question.qname,
                    rtype="AAAA" if ":" in addr else "A",
                    value=addr,
                )
                for addr in dns.answers
            )
            return DnsResponse(
                question=question,
                rcode=RCode(dns.rcode),
                records=records,
                resolver=str(server),
            )
        return DnsResponse(
            question=question, rcode=RCode.SERVFAIL, resolver=str(server)
        )
    finally:
        socket.close()


@dataclass
class StubResolver:
    """The host's system resolver: tries configured servers in order."""

    host: Host

    def resolve(self, qname: str, qtype: str = "A") -> DnsResponse:
        question = DnsQuestion(qname=qname, qtype=qtype)
        last: Optional[DnsResponse] = None
        for server in self.host.dns_servers:
            response = resolve_via_server(self.host, server, qname, qtype)
            if response.rcode is not RCode.SERVFAIL:
                return response
            last = response
        return last or DnsResponse(
            question=question, rcode=RCode.SERVFAIL, resolver="none-configured"
        )

    def resolve_address(self, qname: str) -> Optional[str]:
        """First A-record value, or None."""
        response = self.resolve(qname, "A")
        return response.addresses[0] if response.addresses else None
