"""repro — reproduction of *An Empirical Analysis of the Commercial VPN
Ecosystem* (IMC 2018).

The package implements, in pure Python:

- ``repro.net`` — a deterministic simulated internet (hosts, routing, latency,
  packet captures, traceroute semantics);
- ``repro.dns`` / ``repro.web`` — DNS, HTTP and TLS substrates;
- ``repro.vpn`` — tunnel protocols, VPN clients/servers and a catalogue of the
  62 providers evaluated in the paper, with ground-truth behaviours;
- ``repro.geoip`` — models of the three geo-IP databases the paper compares;
- ``repro.ecosystem`` — the 200-provider ecosystem metadata study (Section 4);
- ``repro.core`` — the paper's contribution: the active-measurement test suite
  (Section 5) and its analyses (Section 6);
- ``repro.reporting`` — table and figure regeneration for every experiment;
- ``repro.runtime`` — parallel, checkpointable study execution: work-unit
  decomposition, worker pools, retry policies, resumable checkpoints,
  progress events and longitudinal (multi-snapshot) scheduling.

Quickstart::

    from repro import audit_provider
    report = audit_provider("Seed4.me")
    print(report.summary())
"""

from repro.api import (
    audit_provider,
    build_study,
    run_full_study,
    run_longitudinal_study,
)

__version__ = "1.1.0"

__all__ = [
    "audit_provider",
    "build_study",
    "run_full_study",
    "run_longitudinal_study",
    "__version__",
]
