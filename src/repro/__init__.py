"""repro — reproduction of *An Empirical Analysis of the Commercial VPN
Ecosystem* (IMC 2018).

The package implements, in pure Python:

- ``repro.net`` — a deterministic simulated internet (hosts, routing, latency,
  packet captures, traceroute semantics);
- ``repro.dns`` / ``repro.web`` — DNS, HTTP and TLS substrates;
- ``repro.vpn`` — tunnel protocols, VPN clients/servers and a catalogue of the
  62 providers evaluated in the paper, with ground-truth behaviours;
- ``repro.geoip`` — models of the three geo-IP databases the paper compares;
- ``repro.ecosystem`` — the 200-provider ecosystem metadata study (Section 4);
- ``repro.core`` — the paper's contribution: the active-measurement test suite
  (Section 5) and its analyses (Section 6);
- ``repro.reporting`` — table and figure regeneration for every experiment;
- ``repro.runtime`` — parallel, checkpointable study execution: work-unit
  decomposition, worker pools, retry policies, resumable checkpoints,
  progress events and longitudinal (multi-snapshot) scheduling;
- ``repro.obs`` — opt-in observability: deterministic span traces, merged
  execution metrics, and a per-host packet flight recorder;
- ``repro.serve`` — audit-as-a-service: a persistent daemon with a job
  queue, one shared worker pool, a durable result store, and an HTTP/JSON
  API (``repro serve`` / ``repro client``).

Quickstart::

    from repro import StudyConfig, audit_provider, run_full_study
    report = audit_provider("Seed4.me")
    print(report.summary())
    study = run_full_study(StudyConfig(providers=["Seed4.me"], workers=4))

Exports resolve lazily (PEP 562): importing :mod:`repro` stays cheap, and
each name pulls in its implementing module only on first attribute access.
"""

from typing import TYPE_CHECKING

__version__ = "1.3.0"

#: name -> (module, attribute) for lazy resolution.
_EXPORTS = {
    "audit_provider": ("repro.api", "audit_provider"),
    "build_study": ("repro.api", "build_study"),
    "run_full_study": ("repro.api", "run_full_study"),
    "run_longitudinal_study": ("repro.api", "run_longitudinal_study"),
    "StudyConfig": ("repro.config", "StudyConfig"),
    "StudyReport": ("repro.core.harness", "StudyReport"),
    "ProviderReport": ("repro.core.harness", "ProviderReport"),
    "TestSuite": ("repro.core.harness", "TestSuite"),
    "StudyExecutor": ("repro.runtime.executor", "StudyExecutor"),
    "StudyInterrupted": ("repro.runtime.executor", "StudyInterrupted"),
    "StreamedStudy": ("repro.runtime.executor", "StreamedStudy"),
    "StudySource": ("repro.source", "StudySource"),
    "ProviderSource": ("repro.ecosystem.generate", "ProviderSource"),
    "CatalogProviderSource": (
        "repro.ecosystem.generate", "CatalogProviderSource"
    ),
    "GeneratedProviderSource": (
        "repro.ecosystem.generate", "GeneratedProviderSource"
    ),
    "ServeConfig": ("repro.config", "ServeConfig"),
    "AuditDaemon": ("repro.serve.daemon", "AuditDaemon"),
    "ServeClient": ("repro.serve.client", "ServeClient"),
    "ObsConfig": ("repro.obs.config", "ObsConfig"),
    "Observability": ("repro.obs.session", "Observability"),
    "Tracer": ("repro.obs.trace", "Tracer"),
    "MetricsRegistry": ("repro.obs.metrics", "MetricsRegistry"),
    "FlightRecorder": ("repro.obs.flight", "FlightRecorder"),
}

__all__ = sorted(_EXPORTS) + ["__version__"]

if TYPE_CHECKING:  # static importers see the real names
    from repro.api import (  # noqa: F401
        audit_provider,
        build_study,
        run_full_study,
        run_longitudinal_study,
    )
    from repro.config import ServeConfig, StudyConfig  # noqa: F401
    from repro.core.harness import (  # noqa: F401
        ProviderReport,
        StudyReport,
        TestSuite,
    )
    from repro.ecosystem.generate import (  # noqa: F401
        CatalogProviderSource,
        GeneratedProviderSource,
        ProviderSource,
    )
    from repro.obs.config import ObsConfig  # noqa: F401
    from repro.obs.flight import FlightRecorder  # noqa: F401
    from repro.obs.metrics import MetricsRegistry  # noqa: F401
    from repro.obs.session import Observability  # noqa: F401
    from repro.obs.trace import Tracer  # noqa: F401
    from repro.runtime.executor import (  # noqa: F401
        StreamedStudy,
        StudyExecutor,
        StudyInterrupted,
    )
    from repro.serve.client import ServeClient  # noqa: F401
    from repro.serve.daemon import AuditDaemon  # noqa: F401
    from repro.source import StudySource  # noqa: F401


def __getattr__(name: str):
    try:
        module_name, attribute = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), attribute)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
