"""A simple rule-based packet filter.

Two users in the reproduction:

- the **tunnel-failure test** (paper Section 5.3.3) installs a firewall on the
  client host that blocks all egress to the VPN server (simulating an ISP or
  government severing the tunnel) while allowing a fixed set of probe hosts,
  then watches whether the VPN client fails open;
- **kill-switch** implementations in VPN clients install a firewall that
  blocks all traffic not destined for the tunnel.

Rules are evaluated first-match; the default action when nothing matches is
``ALLOW``.

When the stage profiler is on (``ObsConfig(stage_profile=True)``), the
delivery hot paths attribute ``permits`` checks to the ``firewall`` stage
(see ``repro.obs.stages``); inactive firewalls are skipped before the stage
bracket, so the stage counts only real rule evaluations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.net.addresses import Network, parse_network
from repro.net.packet import Packet, TcpSegment, UdpDatagram


class FirewallAction(enum.Enum):
    ALLOW = "allow"
    DROP = "drop"
    REJECT = "reject"  # drop + signal to the sender (TCP RST semantics)


@dataclass(frozen=True)
class FirewallRule:
    """A first-match firewall rule.

    ``None`` fields are wildcards.  ``direction`` is "out", "in" or "any".
    """

    action: FirewallAction
    direction: str = "any"
    src: Optional[Network] = None
    dst: Optional[Network] = None
    protocol: Optional[str] = None  # udp | tcp | icmp | tunnel
    dst_port: Optional[int] = None
    interface: Optional[str] = None
    comment: str = ""

    def matches(self, packet: Packet, direction: str, interface: str) -> bool:
        if self.direction not in ("any", direction):
            return False
        if self.interface is not None and self.interface != interface:
            return False
        if self.src is not None and (
            self.src.version != packet.src.version or packet.src not in self.src
        ):
            return False
        if self.dst is not None and (
            self.dst.version != packet.dst.version or packet.dst not in self.dst
        ):
            return False
        if self.protocol is not None and packet.payload.kind != self.protocol:
            return False
        if self.dst_port is not None:
            if not isinstance(packet.payload, (UdpDatagram, TcpSegment)):
                return False
            if packet.payload.dst_port != self.dst_port:
                return False
        return True

    def describe(self) -> str:
        parts = [self.action.value.upper(), self.direction]
        if self.src is not None:
            parts.append(f"src={self.src}")
        if self.dst is not None:
            parts.append(f"dst={self.dst}")
        if self.protocol is not None:
            parts.append(f"proto={self.protocol}")
        if self.dst_port is not None:
            parts.append(f"dport={self.dst_port}")
        if self.interface is not None:
            parts.append(f"dev={self.interface}")
        if self.comment:
            parts.append(f"# {self.comment}")
        return " ".join(parts)


class Firewall:
    """An ordered rule list with first-match evaluation."""

    # Rule-set mutation counter (class attribute so firewalls pickled
    # before it existed restore cleanly).  The delivery engine keys its
    # memoised verdicts on it, so any rule change invalidates them.
    _generation = 0

    def __init__(self, default: FirewallAction = FirewallAction.ALLOW) -> None:
        self.default = default
        self._rules: list[FirewallRule] = []

    def add(self, rule: FirewallRule) -> None:
        self._rules.append(rule)
        self._generation += 1

    def insert(self, index: int, rule: FirewallRule) -> None:
        self._rules.insert(index, rule)
        self._generation += 1

    def allow(self, *, dst: str | Network | None = None, **kwargs: object) -> FirewallRule:
        return self._add_shorthand(FirewallAction.ALLOW, dst, **kwargs)

    def drop(self, *, dst: str | Network | None = None, **kwargs: object) -> FirewallRule:
        return self._add_shorthand(FirewallAction.DROP, dst, **kwargs)

    def _add_shorthand(
        self,
        action: FirewallAction,
        dst: str | Network | None,
        **kwargs: object,
    ) -> FirewallRule:
        if isinstance(dst, str):
            dst = parse_network(dst)
        rule = FirewallRule(action=action, dst=dst, **kwargs)  # type: ignore[arg-type]
        self.add(rule)
        return rule

    def remove_by_comment(self, comment: str) -> int:
        before = len(self._rules)
        self._rules = [r for r in self._rules if r.comment != comment]
        self._generation += 1
        return before - len(self._rules)

    def clear(self) -> None:
        self._rules.clear()
        self._generation += 1

    def rules(self) -> list[FirewallRule]:
        return list(self._rules)

    def evaluate(
        self, packet: Packet, direction: str, interface: str
    ) -> FirewallAction:
        for rule in self._rules:
            if rule.matches(packet, direction, interface):
                return rule.action
        return self.default

    def permits(self, packet: Packet, direction: str, interface: str) -> bool:
        # Most hosts never install a rule; skip evaluation entirely then.
        if not self._rules:
            return self.default is FirewallAction.ALLOW
        return self.evaluate(packet, direction, interface) is FirewallAction.ALLOW

    def snapshot(self) -> list[str]:
        lines = [rule.describe() for rule in self._rules]
        lines.append(f"DEFAULT {self.default.value.upper()}")
        return lines
