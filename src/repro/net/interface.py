"""Network interfaces.

An :class:`Interface` is a named attachment point on a host: it carries IPv4
and/or IPv6 addresses, an up/down flag, an ARP table (recorded for metadata
snapshots), and a packet :class:`~repro.net.capture.Capture`.  Physical
interfaces (``en0``) attach to the simulated internet directly; tunnel
interfaces (``utun0``) are created and torn down by VPN clients.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.net.addresses import (
    Address,
    IPv4Address,
    IPv6Address,
    Network,
    parse_address,
    parse_network,
)
from repro.net.capture import Capture


@dataclass
class Interface:
    """A network interface on a host."""

    name: str
    ipv4: Optional[IPv4Address] = None
    ipv6: Optional[IPv6Address] = None
    ipv4_network: Optional[Network] = None
    ipv6_network: Optional[Network] = None
    is_tunnel: bool = False
    up: bool = True
    mtu: int = 1500
    capture: Capture = None  # type: ignore[assignment]
    arp_table: dict[str, str] = field(default_factory=dict)
    # For tunnel interfaces: the endpoint object that encapsulates traffic
    # (set by the VPN client; duck-typed to avoid an import cycle).
    endpoint: object = None

    def __post_init__(self) -> None:
        if self.capture is None:
            self.capture = Capture(interface=self.name)

    # ------------------------------------------------------------------
    # Address management
    # ------------------------------------------------------------------
    def assign_ipv4(self, address: str | IPv4Address, network: str | Network | None = None) -> None:
        if isinstance(address, str):
            address = parse_address(address)  # type: ignore[assignment]
        if not isinstance(address, IPv4Address):
            raise TypeError(f"not an IPv4 address: {address!r}")
        self.ipv4 = address
        if network is not None:
            self.ipv4_network = (
                parse_network(network) if isinstance(network, str) else network
            )

    def assign_ipv6(self, address: str | IPv6Address, network: str | Network | None = None) -> None:
        if isinstance(address, str):
            address = parse_address(address)  # type: ignore[assignment]
        if not isinstance(address, IPv6Address):
            raise TypeError(f"not an IPv6 address: {address!r}")
        self.ipv6 = address
        if network is not None:
            self.ipv6_network = (
                parse_network(network) if isinstance(network, str) else network
            )

    def address_for_version(self, version: int) -> Optional[Address]:
        return self.ipv4 if version == 4 else self.ipv6

    def has_address(self, address: Address) -> bool:
        return address in (self.ipv4, self.ipv6)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def bring_up(self) -> None:
        self.up = True

    def bring_down(self) -> None:
        self.up = False

    def record_arp(self, ip: str, mac: str) -> None:
        self.arp_table[ip] = mac

    def snapshot(self) -> dict[str, object]:
        """Interface state for the metadata test (Section 5.3.4)."""
        return {
            "name": self.name,
            "ipv4": str(self.ipv4) if self.ipv4 else None,
            "ipv6": str(self.ipv6) if self.ipv6 else None,
            "is_tunnel": self.is_tunnel,
            "up": self.up,
            "mtu": self.mtu,
            "arp_entries": dict(self.arp_table),
        }
