"""A WHOIS/ASN registry.

The measurement suite consults WHOIS-style ownership data in two places:

- the DNS-manipulation test "investigates the WHOIS records of the IPs
  returned by the non-Google server, looking for owner information"
  (Section 5.3.1);
- the shared-infrastructure analysis reasons about ASNs and well-known
  hosting providers (Section 6.3, Table 5).

:class:`WhoisRegistry` maps prefixes to :class:`WhoisRecord` entries
(organisation, country, ASN) with longest-prefix semantics.  The world
populates it from the hosting pools and provider allocations of the
catalogue plus the origin/infrastructure blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.addresses import (
    Address,
    Network,
    parse_address,
    parse_network,
)


@dataclass(frozen=True)
class WhoisRecord:
    """Ownership data for one allocated prefix."""

    prefix: str
    organisation: str
    country: str
    asn: int
    abuse_contact: str = ""

    def describe(self) -> str:
        return (
            f"{self.prefix}  AS{self.asn}  {self.organisation} "
            f"({self.country})"
        )


class WhoisRegistry:
    """Longest-prefix WHOIS lookups over registered allocations."""

    def __init__(self) -> None:
        self._records: list[tuple[Network, WhoisRecord]] = []

    def register(
        self,
        prefix: str | Network,
        organisation: str,
        country: str,
        asn: int,
        abuse_contact: str = "",
    ) -> WhoisRecord:
        if isinstance(prefix, str):
            prefix = parse_network(prefix)
        record = WhoisRecord(
            prefix=str(prefix),
            organisation=organisation,
            country=country,
            asn=asn,
            abuse_contact=abuse_contact,
        )
        self._records.append((prefix, record))
        return record

    def lookup(self, address: str | Address) -> Optional[WhoisRecord]:
        """The most specific registration covering *address*."""
        if isinstance(address, str):
            try:
                address = parse_address(address)
            except ValueError:
                return None
        best: Optional[tuple[int, WhoisRecord]] = None
        for prefix, record in self._records:
            if prefix.version != address.version:
                continue
            if address not in prefix:
                continue
            if best is None or prefix.prefix_len > best[0]:
                best = (prefix.prefix_len, record)
        return best[1] if best else None

    def organisation_for(self, address: str | Address) -> str:
        record = self.lookup(address)
        return record.organisation if record else "unregistered"

    def asn_for(self, address: str | Address) -> Optional[int]:
        record = self.lookup(address)
        return record.asn if record else None

    def __len__(self) -> int:
        return len(self._records)
