"""Hosts.

A :class:`Host` models one machine: interfaces, a routing table, a firewall,
resolver configuration, and bound services.  Sending a packet performs a
route lookup, consults the firewall, records the packet on the egress
interface's capture, and hands it to the :class:`~repro.net.internet.Internet`
for delivery.  Incoming packets traverse the firewall and capture, then are
dispatched to the service bound to their protocol/port.

The VPN client (``repro.vpn.client``) manipulates a host exactly like real
client software manipulates an OS: it adds a tunnel interface, rewrites the
routing table and resolver configuration, and optionally installs kill-switch
firewall rules.  Every test in the measurement suite runs *on* a host.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.net.addresses import Address, parse_address
from repro.net.capture import CaptureEntry
from repro.net.firewall import Firewall, FirewallAction
from repro.net.geo import GeoPoint
from repro.net.interface import Interface
from repro.net.packet import (
    IcmpPayload,
    Packet,
    TcpSegment,
    TunnelPayload,
    UdpDatagram,
)
from repro.net.routing import RoutingTable

if TYPE_CHECKING:
    from repro.net.internet import DeliveryResult, Internet

# handler(incoming_packet, host) -> response packets (or None)
ServiceHandler = Callable[[Packet, "Host"], Optional[list[Packet]]]


@dataclass
class Socket:
    """A bound local port; mostly a source-port allocator for clients."""

    host: "Host"
    protocol: str
    port: int

    def close(self) -> None:
        self.host.release_port(self.protocol, self.port)


class Host:
    """A simulated machine attached to the internet."""

    # Configuration mutation counter (class attribute so hosts pickled
    # before it existed restore cleanly).  Bumped when interfaces or
    # service bindings change; the delivery engine stamps compiled flow
    # plans with it.
    _config_gen = 0

    def __init__(
        self,
        name: str,
        location: GeoPoint,
        internet: "Internet | None" = None,
    ) -> None:
        self.name = name
        self.location = location
        self.internet = internet
        self.interfaces: dict[str, Interface] = {}
        self.routing = RoutingTable()
        self.firewall = Firewall()
        self.dns_servers: list[Address] = []
        self._services: dict[tuple[str, int], ServiceHandler] = {}
        # address -> owning interface memo for `interface_for_address`.
        # Positive entries are validated against the interface on every hit
        # (addresses can be reassigned), so the memo can never serve a stale
        # mapping; it only skips the linear scan.
        self._iface_by_addr: dict[Address, Interface] = {}
        self._ports_in_use: set[tuple[str, int]] = set()
        self._ephemeral = itertools.count(49152)
        # Hook invoked on every packet successfully delivered to this host,
        # before service dispatch. VPN servers use it for egress behaviours.
        self.packet_tap: Optional[Callable[[Packet], None]] = None

    # ------------------------------------------------------------------
    # Interfaces
    # ------------------------------------------------------------------
    def add_interface(self, interface: Interface) -> Interface:
        if interface.name in self.interfaces:
            raise ValueError(f"duplicate interface {interface.name!r}")
        self.interfaces[interface.name] = interface
        self._config_gen += 1
        return interface

    def remove_interface(self, name: str) -> None:
        self.interfaces.pop(name, None)
        # Drop the whole memo: a detached interface may still carry the
        # address, so hit-validation alone would not notice the removal.
        self._iface_by_addr.clear()
        self._config_gen += 1
        self.routing.remove_where(interface=name)

    def interface_for_address(self, address: Address) -> Optional[Interface]:
        cached = self._iface_by_addr.get(address)
        if cached is not None and (
            address is cached.ipv4 or address is cached.ipv6
            or address == cached.ipv4 or address == cached.ipv6
        ):
            return cached
        for interface in self.interfaces.values():
            if interface.has_address(address):
                self._iface_by_addr[address] = interface
                return interface
        return None

    def addresses(self) -> list[Address]:
        out: list[Address] = []
        for interface in self.interfaces.values():
            if interface.ipv4 is not None:
                out.append(interface.ipv4)
            if interface.ipv6 is not None:
                out.append(interface.ipv6)
        return out

    def primary_interface(self) -> Optional[Interface]:
        """The first non-tunnel interface (the 'hardware' NIC)."""
        for interface in self.interfaces.values():
            if not interface.is_tunnel:
                return interface
        return None

    def tunnel_interfaces(self) -> list[Interface]:
        return [i for i in self.interfaces.values() if i.is_tunnel]

    # ------------------------------------------------------------------
    # Services and ports
    # ------------------------------------------------------------------
    def bind(self, protocol: str, port: int, handler: ServiceHandler) -> None:
        key = (protocol, port)
        if key in self._services:
            raise ValueError(f"{protocol}/{port} already bound on {self.name}")
        self._services[key] = handler
        self._ports_in_use.add(key)
        self._config_gen += 1

    def unbind(self, protocol: str, port: int) -> None:
        self._services.pop((protocol, port), None)
        self._ports_in_use.discard((protocol, port))
        self._config_gen += 1

    def open_socket(self, protocol: str) -> Socket:
        while True:
            port = next(self._ephemeral)
            if port > 65535:
                self._ephemeral = itertools.count(49152)
                continue
            if (protocol, port) not in self._ports_in_use:
                self._ports_in_use.add((protocol, port))
                return Socket(host=self, protocol=protocol, port=port)

    def release_port(self, protocol: str, port: int) -> None:
        self._ports_in_use.discard((protocol, port))

    def reset_ephemeral_ports(self) -> None:
        """Restart ephemeral port allocation at the base of the range.

        Source ports end up inside packet payloads, which feed the latency
        model's jitter hash — so the harness resets this counter at unit
        boundaries to keep every unit's packet bytes (and thus any
        observability trace of them) independent of what the host sent
        during earlier units.  Ports still bound are skipped as usual.
        """
        self._ephemeral = itertools.count(49152)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> "DeliveryResult":
        """Route, filter, capture, and deliver one packet.

        Returns the :class:`DeliveryResult`, which carries the fate of the
        packet, the RTT, and any response packets the remote service issued.
        """
        if self.internet is None:
            raise RuntimeError(f"host {self.name} is not attached to an internet")

        # Compiled flow plan fast path: the engine executes the whole
        # delivery chain (byte-identically) when it has a valid plan for
        # this flow, and returns None to route everything else — first
        # packets, rare fates, reconfigured hosts — through the legacy
        # code below, which remains the source of truth.
        engine = self.internet.engine
        if engine is not None:
            result = engine.send(self, packet)
            if result is not None:
                return result

        obs = self.internet.obs
        if obs is None:
            return self._send_legacy(packet, None)
        profile = obs.profile
        stages = obs.stages
        if profile is None and stages is None:
            return self._send_legacy(packet, obs)
        if profile is not None:
            profile.enter("delivery")
        if stages is not None:
            # Top-level send boundary: the stage profiler decides here
            # whether this (whole, nested) send tree is wall-clock
            # sampled; the `send` frame itself soaks up orchestration
            # residue so stage totals sum to the delivery phase.
            stages.begin_send()
        try:
            return self._send_legacy(packet, obs)
        finally:
            if stages is not None:
                stages.end_send()
            if profile is not None:
                profile.leave()

    def _send_legacy(self, packet: Packet, obs) -> "DeliveryResult":
        from repro.net.internet import DeliveryResult  # circular at import time

        stages = obs.stages if obs is not None else None
        # Packets that die before reaching the wire are invisible to
        # `Internet.deliver`; record their fate here.
        if stages is not None:
            stages.enter("route")
        route = self.routing.lookup(packet.dst)
        if stages is not None:
            stages.leave()
        if route is None:
            if obs is not None:
                obs.packet_event(self.name, packet, "no_route")
            return DeliveryResult.no_route(packet)
        interface = self.interfaces.get(route.interface)
        if interface is None or not interface.up:
            if obs is not None:
                obs.packet_event(
                    self.name, packet, "interface_down", route.interface
                )
            return DeliveryResult.interface_down(packet, route.interface)

        # An empty allow-all firewall (the overwhelmingly common case) is
        # decided inline without the `permits` call.
        firewall = self.firewall
        firewall_active = (
            firewall._rules or firewall.default is not FirewallAction.ALLOW
        )
        if firewall_active:
            if stages is not None:
                stages.enter("firewall")
            permitted = firewall.permits(packet, "out", interface.name)
            if stages is not None:
                stages.leave()
            if not permitted:
                if obs is not None:
                    obs.packet_event(
                        self.name, packet, "filtered", "egress firewall"
                    )
                return DeliveryResult.filtered(packet, "egress firewall")

        internet = self.internet
        capture = interface.capture
        if capture.enabled:
            if stages is not None:
                stages.enter("capture")
            capture.entries.append(
                CaptureEntry(internet.clock_ms, "tx", capture.interface, packet)
            )
            if stages is not None:
                stages.leave()
        if interface.is_tunnel and interface.endpoint is not None:
            # VPN tunnel: the endpoint encapsulates and re-sends via the
            # physical interface (and may fail open/closed on tunnel loss).
            result = interface.endpoint.transmit(packet)  # type: ignore[attr-defined]
        else:
            result = internet.deliver(packet, self)
        responses = result.responses
        if responses:
            clock_ms = internet.clock_ms
            record_rx = capture.enabled
            for response in responses:
                if firewall_active:
                    if stages is not None:
                        stages.enter("firewall")
                    permitted = firewall.permits(
                        response, "in", interface.name
                    )
                    if stages is not None:
                        stages.leave()
                    if not permitted:
                        continue
                if record_rx:
                    if stages is not None:
                        stages.enter("capture")
                    capture.entries.append(
                        CaptureEntry(
                            clock_ms, "rx", capture.interface, response
                        )
                    )
                    if stages is not None:
                        stages.leave()
        return result

    # ------------------------------------------------------------------
    # Receiving (called by the Internet)
    # ------------------------------------------------------------------
    def receive(self, packet: Packet) -> Optional[list[Packet]]:
        """Handle a delivered packet; returns response packets if any."""
        interface = self.interface_for_address(packet.dst)
        obs = self.internet.obs if self.internet is not None else None
        stages = obs.stages if obs is not None else None
        firewall = self.firewall
        if firewall._rules or firewall.default is not FirewallAction.ALLOW:
            iface_name = interface.name if interface else "?"
            if stages is not None:
                stages.enter("firewall")
            permitted = firewall.permits(packet, "in", iface_name)
            if stages is not None:
                stages.leave()
            if not permitted:
                return None
        if interface is not None:
            capture = interface.capture
            if capture.enabled:
                if stages is not None:
                    stages.enter("capture")
                capture.entries.append(
                    CaptureEntry(
                        self.internet.clock_ms, "rx", capture.interface, packet
                    )
                )
                if stages is not None:
                    stages.leave()
        if self.packet_tap is not None:
            self.packet_tap(packet)

        payload = packet.payload
        if isinstance(payload, IcmpPayload):
            if payload.icmp_type == "echo_request":
                # The reply is a pure function of the (frozen) request, so
                # it is memoised on the request object; capture recording
                # still happens per delivery.
                reply = packet.__dict__.get("_echo_reply")
                if reply is None:
                    reply = Packet(
                        src=packet.dst,
                        dst=packet.src,
                        payload=IcmpPayload(
                            icmp_type="echo_reply",
                            identifier=payload.identifier,
                            sequence=payload.sequence,
                        ),
                    )
                    object.__setattr__(packet, "_echo_reply", reply)
                self._record_tx(interface, reply, stages)
                return [reply]
            return None

        if isinstance(payload, (UdpDatagram, TcpSegment)):
            handler = self._services.get((payload.kind, payload.dst_port))
            if handler is None:
                # Port closed: a real stack answers TCP with RST and UDP with
                # ICMP port-unreachable; we model both as an ICMP unreachable.
                reply = Packet(
                    src=packet.dst,
                    dst=packet.src,
                    payload=IcmpPayload(icmp_type="port_unreachable"),
                )
                self._record_tx(interface, reply, stages)
                return [reply]
            responses = handler(packet, self) or []
            for response in responses:
                # Responses almost always leave from the address the request
                # arrived on (the very same object) — skip the scan then.
                src = response.src
                self._record_tx(
                    interface
                    if src is packet.dst
                    else self.interface_for_address(src),
                    response,
                    stages,
                )
            return responses

        if isinstance(payload, TunnelPayload):
            handler = self._services.get(("tunnel", 0))
            if handler is None:
                return None
            responses = handler(packet, self) or []
            for response in responses:
                src = response.src
                self._record_tx(
                    interface
                    if src is packet.dst
                    else self.interface_for_address(src),
                    response,
                    stages,
                )
            return responses

        return None

    def _record_tx(
        self,
        interface: Optional[Interface],
        packet: Packet,
        stages=None,
    ) -> None:
        if interface is not None and self.internet is not None:
            capture = interface.capture
            if capture.enabled:
                if stages is not None:
                    stages.enter("capture")
                capture.entries.append(
                    CaptureEntry(
                        self.internet.clock_ms, "tx", capture.interface, packet
                    )
                )
                if stages is not None:
                    stages.leave()

    # ------------------------------------------------------------------
    # Configuration snapshots (metadata test, Section 5.3.4)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, object]:
        return {
            "name": self.name,
            "interfaces": [i.snapshot() for i in self.interfaces.values()],
            "routes": self.routing.snapshot(),
            "dns_servers": [str(s) for s in self.dns_servers],
            "firewall": self.firewall.snapshot(),
        }

    def set_dns_servers(self, servers: list[str | Address]) -> None:
        self.dns_servers = [
            parse_address(s) if isinstance(s, str) else s for s in servers
        ]

    def __repr__(self) -> str:
        return f"Host({self.name!r} @ {self.location.city or self.location.country})"
