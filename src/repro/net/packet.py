"""Layered packet model.

Packets are plain dataclasses: an IP header (:class:`Packet`) carrying one of
several transport payloads (:class:`UdpDatagram`, :class:`TcpSegment`,
:class:`IcmpPayload`), which in turn carry an application payload
(:class:`DnsPayload`, :class:`HttpPayload`, :class:`TlsPayload`,
:class:`TunnelPayload`, :class:`RawPayload`).

The model keeps the observables the measurement suite needs — addresses,
ports, protocol, TTL, payload identity — without pretending to be a byte
serialiser.  A compact binary encoding is still provided (``encode`` /
``decode``) because packet captures are persisted and property-tested for
round-trip fidelity.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.net.addresses import Address, parse_address

DEFAULT_TTL = 64

# Packet and payload reprs feed the delivery layer's deterministic jitter
# keys, so the same frozen object is rendered over and over as it crosses
# encapsulation layers.  Each class below therefore defines a memoised
# ``__repr__`` producing the exact string the dataclass-generated repr
# would (same field order, same ``name=value!r`` rendering): the bytes
# hashed for jitter cannot change, only the rework is skipped.


@dataclass(frozen=True)
class RawPayload:
    """Opaque application bytes (identified by a label for analysis)."""

    label: str = ""
    size: int = 0

    kind = "raw"

    def __repr__(self) -> str:
        r = self.__dict__.get("_repr")
        if r is None:
            r = (
                f"{self.__class__.__qualname__}(label={self.label!r}, "
                f"size={self.size!r})"
            )
            object.__setattr__(self, "_repr", r)
        return r

    def describe(self) -> str:
        return f"raw({self.label},{self.size}B)"


@dataclass(frozen=True)
class DnsPayload:
    """A DNS query or answer travelling in a datagram."""

    qname: str
    qtype: str = "A"
    is_response: bool = False
    rcode: str = "NOERROR"
    answers: tuple[str, ...] = ()
    txid: int = 0

    kind = "dns"

    def __repr__(self) -> str:
        r = self.__dict__.get("_repr")
        if r is None:
            r = (
                f"{self.__class__.__qualname__}(qname={self.qname!r}, "
                f"qtype={self.qtype!r}, is_response={self.is_response!r}, "
                f"rcode={self.rcode!r}, answers={self.answers!r}, "
                f"txid={self.txid!r})"
            )
            object.__setattr__(self, "_repr", r)
        return r

    def describe(self) -> str:
        direction = "resp" if self.is_response else "query"
        return f"dns-{direction}({self.qname} {self.qtype})"


@dataclass(frozen=True)
class HttpPayload:
    """An HTTP request or response (status == 0 means request).

    ``body`` carries the actual page content (serialised DOM / text) so that
    content-comparison tests can diff what the client received against ground
    truth; ``body_label`` is a short content identity used in captures.
    """

    method: str = "GET"
    url: str = ""
    status: int = 0
    headers: tuple[tuple[str, str], ...] = ()
    body_label: str = ""
    body_size: int = 0
    body: str = ""

    kind = "http"

    def __repr__(self) -> str:
        r = self.__dict__.get("_repr")
        if r is None:
            r = (
                f"{self.__class__.__qualname__}(method={self.method!r}, "
                f"url={self.url!r}, status={self.status!r}, "
                f"headers={self.headers!r}, body_label={self.body_label!r}, "
                f"body_size={self.body_size!r}, body={self.body!r})"
            )
            object.__setattr__(self, "_repr", r)
        return r

    @property
    def is_response(self) -> bool:
        return self.status != 0

    def describe(self) -> str:
        if self.is_response:
            return f"http-resp({self.status} {self.url})"
        return f"http-req({self.method} {self.url})"


@dataclass(frozen=True)
class TlsPayload:
    """A TLS record: handshake metadata only (no real crypto bytes)."""

    sni: str = ""
    record: str = "client_hello"  # client_hello | server_hello | app_data
    certificate_fingerprint: str = ""
    size: int = 0

    kind = "tls"

    def __repr__(self) -> str:
        r = self.__dict__.get("_repr")
        if r is None:
            r = (
                f"{self.__class__.__qualname__}(sni={self.sni!r}, "
                f"record={self.record!r}, "
                f"certificate_fingerprint={self.certificate_fingerprint!r}, "
                f"size={self.size!r})"
            )
            object.__setattr__(self, "_repr", r)
        return r

    def describe(self) -> str:
        return f"tls({self.record} sni={self.sni})"


@dataclass(frozen=True)
class IcmpPayload:
    """ICMP echo / time-exceeded / unreachable."""

    icmp_type: str = "echo_request"
    identifier: int = 0
    sequence: int = 0
    original_dst: str = ""  # for time_exceeded: where the probe was headed

    kind = "icmp"

    def __repr__(self) -> str:
        r = self.__dict__.get("_repr")
        if r is None:
            r = (
                f"{self.__class__.__qualname__}(icmp_type={self.icmp_type!r}, "
                f"identifier={self.identifier!r}, "
                f"sequence={self.sequence!r}, "
                f"original_dst={self.original_dst!r})"
            )
            object.__setattr__(self, "_repr", r)
        return r

    def describe(self) -> str:
        return f"icmp({self.icmp_type} seq={self.sequence})"


@dataclass(frozen=True)
class UdpDatagram:
    src_port: int
    dst_port: int
    payload: "AppPayload" = field(default_factory=RawPayload)

    kind = "udp"

    def __repr__(self) -> str:
        r = self.__dict__.get("_repr")
        if r is None:
            r = (
                f"{self.__class__.__qualname__}(src_port={self.src_port!r}, "
                f"dst_port={self.dst_port!r}, payload={self.payload!r})"
            )
            object.__setattr__(self, "_repr", r)
        return r

    def describe(self) -> str:
        return f"udp:{self.src_port}->{self.dst_port} {self.payload.describe()}"


@dataclass(frozen=True)
class TcpSegment:
    src_port: int
    dst_port: int
    flags: str = "PA"  # S, SA, A, PA, F, R ...
    seq: int = 0
    payload: "AppPayload" = field(default_factory=RawPayload)

    kind = "tcp"

    def __repr__(self) -> str:
        r = self.__dict__.get("_repr")
        if r is None:
            r = (
                f"{self.__class__.__qualname__}(src_port={self.src_port!r}, "
                f"dst_port={self.dst_port!r}, flags={self.flags!r}, "
                f"seq={self.seq!r}, payload={self.payload!r})"
            )
            object.__setattr__(self, "_repr", r)
        return r

    def describe(self) -> str:
        return (
            f"tcp:{self.src_port}->{self.dst_port}[{self.flags}] "
            f"{self.payload.describe()}"
        )


@dataclass(frozen=True)
class TunnelPayload:
    """An encapsulated (encrypted) inner packet inside a VPN tunnel.

    ``protocol`` names the tunnelling protocol; ``inner`` is the plaintext
    packet visible only to the two tunnel endpoints.  An on-path observer of
    the outer packet sees only the protocol and ciphertext size — mirroring
    what an ISP sees of real VPN traffic.
    """

    protocol: str
    inner: "Packet"
    cipher: str = "AES-256-GCM"

    kind = "tunnel"

    def __repr__(self) -> str:
        r = self.__dict__.get("_repr")
        if r is None:
            r = (
                f"{self.__class__.__qualname__}(protocol={self.protocol!r}, "
                f"inner={self.inner!r}, cipher={self.cipher!r})"
            )
            object.__setattr__(self, "_repr", r)
        return r

    @property
    def size(self) -> int:
        return self.inner.size + 57  # encapsulation overhead

    def describe(self) -> str:
        return f"tunnel({self.protocol}, {self.size}B ciphertext)"


AppPayload = Union[RawPayload, DnsPayload, HttpPayload, TlsPayload, IcmpPayload]
TransportPayload = Union[UdpDatagram, TcpSegment, IcmpPayload, TunnelPayload]


@dataclass(frozen=True)
class Packet:
    """An IP packet."""

    src: Address
    dst: Address
    payload: TransportPayload
    ttl: int = DEFAULT_TTL

    @property
    def version(self) -> int:
        return self.src.version

    @property
    def size(self) -> int:
        header = 20 if self.version == 4 else 40
        inner = getattr(self.payload, "payload", None)
        inner_size = getattr(inner, "size", None)
        if inner_size is None:
            inner_size = getattr(inner, "body_size", 0) if inner else 0
        payload_size = getattr(self.payload, "size", None)
        if payload_size is not None and self.payload.kind == "tunnel":
            return header + payload_size
        return header + 8 + (inner_size or 0)

    def __repr__(self) -> str:
        r = self.__dict__.get("_repr")
        if r is None:
            r = (
                f"{self.__class__.__qualname__}(src={self.src!r}, "
                f"dst={self.dst!r}, payload={self.payload!r}, "
                f"ttl={self.ttl!r})"
            )
            object.__setattr__(self, "_repr", r)
        return r

    def __hash__(self) -> int:
        # Same tuple the generated dataclass hash uses, memoised: packets
        # key the delivery-layer jitter cache and are hashed repeatedly as
        # they traverse tunnel encapsulation layers.
        h = self.__dict__.get("_hash")
        if h is None:
            h = hash((self.src, self.dst, self.payload, self.ttl))
            object.__setattr__(self, "_hash", h)
        return h

    def decrement_ttl(self) -> "Packet":
        # Direct construction: dataclasses.replace re-derives the field
        # list on every call and is ~4x slower on this per-hop path.  The
        # result is memoised: packets are frozen, so the decremented copy
        # is the same for the lifetime of this object, and reusing it lets
        # downstream per-object memos (jitter sample, echo reply) hit.
        dec = self.__dict__.get("_dec")
        if dec is None:
            dec = Packet(
                src=self.src, dst=self.dst, payload=self.payload,
                ttl=self.ttl - 1,
            )
            object.__setattr__(self, "_dec", dec)
        return dec

    def with_src(self, src: Address) -> "Packet":
        """A copy with a rewritten source (tunnel session rewrites).

        Memoised per source: the tunnel chain rewrites the same packet with
        the same session/egress address on every traversal, and a stable
        object lets the delivery layer's per-object memos hit downstream.
        """
        cache = self.__dict__.get("_with_src")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_with_src", cache)
        rewritten = cache.get(src)
        if rewritten is None:
            rewritten = cache[src] = Packet(
                src=src, dst=self.dst, payload=self.payload, ttl=self.ttl
            )
        return rewritten

    def with_dst(self, dst: Address) -> "Packet":
        """A copy with a rewritten destination (tunnel reply routing)."""
        cache = self.__dict__.get("_with_dst")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_with_dst", cache)
        rewritten = cache.get(dst)
        if rewritten is None:
            rewritten = cache[dst] = Packet(
                src=self.src, dst=dst, payload=self.payload, ttl=self.ttl
            )
        return rewritten

    def describe(self) -> str:
        return f"{self.src} -> {self.dst} ttl={self.ttl} {self.payload.describe()}"

    # Keep derived memos (leading underscore) out of pickled captures and
    # world snapshots: cached hashes are salted per-process and must not
    # survive into another interpreter.
    def __getstate__(self) -> dict:
        return {
            k: v for k, v in self.__dict__.items() if not k.startswith("_")
        }

    # ------------------------------------------------------------------
    # Serialisation: a stable JSON encoding used by persisted captures.
    # ------------------------------------------------------------------
    def encode(self) -> bytes:
        return json.dumps(_to_jsonable(self), separators=(",", ":")).encode()

    @classmethod
    def decode(cls, data: bytes) -> "Packet":
        return _packet_from_jsonable(json.loads(data.decode()))


def _to_jsonable(obj: object) -> object:
    if isinstance(obj, Packet):
        return {
            "_": "packet",
            "src": str(obj.src),
            "dst": str(obj.dst),
            "ttl": obj.ttl,
            "payload": _to_jsonable(obj.payload),
        }
    if isinstance(obj, UdpDatagram):
        return {
            "_": "udp",
            "sp": obj.src_port,
            "dp": obj.dst_port,
            "payload": _to_jsonable(obj.payload),
        }
    if isinstance(obj, TcpSegment):
        return {
            "_": "tcp",
            "sp": obj.src_port,
            "dp": obj.dst_port,
            "flags": obj.flags,
            "seq": obj.seq,
            "payload": _to_jsonable(obj.payload),
        }
    if isinstance(obj, TunnelPayload):
        return {
            "_": "tunnel",
            "protocol": obj.protocol,
            "cipher": obj.cipher,
            "inner": _to_jsonable(obj.inner),
        }
    if isinstance(obj, IcmpPayload):
        return {
            "_": "icmp",
            "type": obj.icmp_type,
            "id": obj.identifier,
            "seq": obj.sequence,
            "odst": obj.original_dst,
        }
    if isinstance(obj, DnsPayload):
        return {
            "_": "dns",
            "qname": obj.qname,
            "qtype": obj.qtype,
            "resp": obj.is_response,
            "rcode": obj.rcode,
            "answers": list(obj.answers),
            "txid": obj.txid,
        }
    if isinstance(obj, HttpPayload):
        return {
            "_": "http",
            "method": obj.method,
            "url": obj.url,
            "status": obj.status,
            "headers": [list(h) for h in obj.headers],
            "body_label": obj.body_label,
            "body_size": obj.body_size,
            "body": obj.body,
        }
    if isinstance(obj, TlsPayload):
        return {
            "_": "tls",
            "sni": obj.sni,
            "record": obj.record,
            "fp": obj.certificate_fingerprint,
            "size": obj.size,
        }
    if isinstance(obj, RawPayload):
        return {"_": "raw", "label": obj.label, "size": obj.size}
    raise TypeError(f"cannot encode {obj!r}")


def _payload_from_jsonable(data: dict) -> object:
    tag = data["_"]
    if tag == "udp":
        return UdpDatagram(
            src_port=data["sp"],
            dst_port=data["dp"],
            payload=_payload_from_jsonable(data["payload"]),
        )
    if tag == "tcp":
        return TcpSegment(
            src_port=data["sp"],
            dst_port=data["dp"],
            flags=data["flags"],
            seq=data["seq"],
            payload=_payload_from_jsonable(data["payload"]),
        )
    if tag == "tunnel":
        return TunnelPayload(
            protocol=data["protocol"],
            cipher=data["cipher"],
            inner=_packet_from_jsonable(data["inner"]),
        )
    if tag == "icmp":
        return IcmpPayload(
            icmp_type=data["type"],
            identifier=data["id"],
            sequence=data["seq"],
            original_dst=data["odst"],
        )
    if tag == "dns":
        return DnsPayload(
            qname=data["qname"],
            qtype=data["qtype"],
            is_response=data["resp"],
            rcode=data["rcode"],
            answers=tuple(data["answers"]),
            txid=data["txid"],
        )
    if tag == "http":
        return HttpPayload(
            method=data["method"],
            url=data["url"],
            status=data["status"],
            headers=tuple((k, v) for k, v in data["headers"]),
            body_label=data["body_label"],
            body_size=data["body_size"],
            body=data.get("body", ""),
        )
    if tag == "tls":
        return TlsPayload(
            sni=data["sni"],
            record=data["record"],
            certificate_fingerprint=data["fp"],
            size=data["size"],
        )
    if tag == "raw":
        return RawPayload(label=data["label"], size=data["size"])
    raise ValueError(f"unknown payload tag {tag!r}")


def _packet_from_jsonable(data: dict) -> Packet:
    if data.get("_") != "packet":
        raise ValueError("not a packet encoding")
    return Packet(
        src=parse_address(data["src"]),
        dst=parse_address(data["dst"]),
        ttl=data["ttl"],
        payload=_payload_from_jsonable(data["payload"]),
    )


def innermost_payload(packet: Packet) -> Optional[AppPayload]:
    """Walk through tunnel/transport layers to the application payload."""
    payload: object = packet.payload
    while True:
        if isinstance(payload, TunnelPayload):
            payload = payload.inner.payload
        elif isinstance(payload, (UdpDatagram, TcpSegment)):
            return payload.payload
        elif isinstance(payload, IcmpPayload):
            return payload
        else:
            return payload if payload is not None else None
