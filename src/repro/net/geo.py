"""Geography for the latency model.

The simulator places every host at a :class:`GeoPoint`.  Round-trip times are
derived from great-circle distance (see :mod:`repro.net.latency`), which is
what lets the measurement suite's ping-based co-location inference (paper
Section 6.4.2, Figure 9) work exactly as it does against the real internet.

Coordinates are approximate city centroids — fidelity to a few tens of km is
irrelevant at RTT granularity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class GeoPoint:
    """A point on the globe with an associated ISO country code."""

    lat: float
    lon: float
    country: str  # ISO 3166-1 alpha-2
    city: str = ""

    def __post_init__(self) -> None:
        # Same tuple the generated dataclass hash uses, computed eagerly:
        # points key the latency caches, so they are hashed millions of
        # times and the cached attribute read wins over recomputation.
        object.__setattr__(
            self, "_hash", hash((self.lat, self.lon, self.country, self.city))
        )

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            # Unpickled instances skip __post_init__; recompute lazily.
            h = hash((self.lat, self.lon, self.country, self.city))
            object.__setattr__(self, "_hash", h)
            return h

    # String hashing is salted per-process: never pickle the cached hash.
    def __getstate__(self) -> dict:
        return {
            "lat": self.lat,
            "lon": self.lon,
            "country": self.country,
            "city": self.city,
        }

    def distance_km(self, other: "GeoPoint") -> float:
        return great_circle_km(self.lat, self.lon, other.lat, other.lon)


EARTH_RADIUS_KM = 6371.0


def great_circle_km(
    lat1: float, lon1: float, lat2: float, lon2: float
) -> float:
    """Great-circle distance (haversine) between two lat/lon points, in km."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlam = math.radians(lon2 - lon1)
    a = (
        math.sin(dphi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(a)))


# City name -> (lat, lon, ISO country). The set covers every location the
# provider catalogue, RIPE-anchor fleet, and censorship study need.
_CITY_TABLE: dict[str, tuple[float, float, str]] = {
    # North America
    "New York": (40.71, -74.01, "US"),
    "Los Angeles": (34.05, -118.24, "US"),
    "Chicago": (41.88, -87.63, "US"),
    "Miami": (25.76, -80.19, "US"),
    "Seattle": (47.61, -122.33, "US"),
    "Dallas": (32.78, -96.80, "US"),
    "Atlanta": (33.75, -84.39, "US"),
    "Denver": (39.74, -104.99, "US"),
    "San Jose": (37.34, -121.89, "US"),
    "Ashburn": (39.04, -77.49, "US"),
    "Phoenix": (33.45, -112.07, "US"),
    "Toronto": (43.65, -79.38, "CA"),
    "Montreal": (45.50, -73.57, "CA"),
    "Vancouver": (49.28, -123.12, "CA"),
    "Mexico City": (19.43, -99.13, "MX"),
    "Guadalajara": (20.66, -103.35, "MX"),
    "Panama City": (8.98, -79.52, "PA"),
    "San Jose CR": (9.93, -84.08, "CR"),
    "Belize City": (17.50, -88.20, "BZ"),
    "Nassau": (25.04, -77.35, "BS"),
    "Kingston": (17.97, -76.79, "JM"),
    "Havana": (23.11, -82.37, "CU"),
    # South America
    "Sao Paulo": (-23.55, -46.63, "BR"),
    "Rio de Janeiro": (-22.91, -43.17, "BR"),
    "Buenos Aires": (-34.60, -58.38, "AR"),
    "Santiago": (-33.45, -70.67, "CL"),
    "Lima": (-12.05, -77.04, "PE"),
    "Bogota": (4.71, -74.07, "CO"),
    "Caracas": (10.48, -66.90, "VE"),
    "Quito": (-0.18, -78.47, "EC"),
    "Montevideo": (-34.90, -56.19, "UY"),
    # Europe
    "London": (51.51, -0.13, "GB"),
    "Manchester": (53.48, -2.24, "GB"),
    "Paris": (48.86, 2.35, "FR"),
    "Marseille": (43.30, 5.37, "FR"),
    "Frankfurt": (50.11, 8.68, "DE"),
    "Berlin": (52.52, 13.41, "DE"),
    "Munich": (48.14, 11.58, "DE"),
    "Amsterdam": (52.37, 4.90, "NL"),
    "Rotterdam": (51.92, 4.48, "NL"),
    "Brussels": (50.85, 4.35, "BE"),
    "Luxembourg": (49.61, 6.13, "LU"),
    "Zurich": (47.38, 8.54, "CH"),
    "Geneva": (46.20, 6.14, "CH"),
    "Vienna": (48.21, 16.37, "AT"),
    "Prague": (50.08, 14.44, "CZ"),
    "Warsaw": (52.23, 21.01, "PL"),
    "Budapest": (47.50, 19.04, "HU"),
    "Bucharest": (44.43, 26.10, "RO"),
    "Sofia": (42.70, 23.32, "BG"),
    "Athens": (37.98, 23.73, "GR"),
    "Rome": (41.90, 12.50, "IT"),
    "Milan": (45.46, 9.19, "IT"),
    "Madrid": (40.42, -3.70, "ES"),
    "Barcelona": (41.39, 2.17, "ES"),
    "Lisbon": (38.72, -9.14, "PT"),
    "Dublin": (53.35, -6.26, "IE"),
    "Edinburgh": (55.95, -3.19, "GB"),
    "Stockholm": (59.33, 18.07, "SE"),
    "Gothenburg": (57.71, 11.97, "SE"),
    "Oslo": (59.91, 10.75, "NO"),
    "Copenhagen": (55.68, 12.57, "DK"),
    "Helsinki": (60.17, 24.94, "FI"),
    "Tallinn": (59.44, 24.75, "EE"),
    "Riga": (56.95, 24.11, "LV"),
    "Vilnius": (54.69, 25.28, "LT"),
    "Kyiv": (50.45, 30.52, "UA"),
    "Moscow": (55.76, 37.62, "RU"),
    "Saint Petersburg": (59.93, 30.34, "RU"),
    "Novosibirsk": (55.03, 82.92, "RU"),
    "Minsk": (53.90, 27.57, "BY"),
    "Istanbul": (41.01, 28.98, "TR"),
    "Ankara": (39.93, 32.86, "TR"),
    "Belgrade": (44.79, 20.45, "RS"),
    "Zagreb": (45.81, 15.98, "HR"),
    "Ljubljana": (46.06, 14.51, "SI"),
    "Bratislava": (48.15, 17.11, "SK"),
    "Chisinau": (47.01, 28.86, "MD"),
    "Reykjavik": (64.15, -21.94, "IS"),
    "Valletta": (35.90, 14.51, "MT"),
    "Nicosia": (35.19, 33.38, "CY"),
    "Tirana": (41.33, 19.82, "AL"),
    # Middle East & Africa
    "Tel Aviv": (32.08, 34.78, "IL"),
    "Dubai": (25.20, 55.27, "AE"),
    "Riyadh": (24.71, 46.68, "SA"),
    "Doha": (25.29, 51.53, "QA"),
    "Kuwait City": (29.38, 47.99, "KW"),
    "Tehran": (35.69, 51.39, "IR"),
    "Baghdad": (33.31, 44.37, "IQ"),
    "Amman": (31.95, 35.93, "JO"),
    "Beirut": (33.89, 35.50, "LB"),
    "Cairo": (30.04, 31.24, "EG"),
    "Casablanca": (33.57, -7.59, "MA"),
    "Tunis": (36.81, 10.18, "TN"),
    "Lagos": (6.52, 3.38, "NG"),
    "Nairobi": (-1.29, 36.82, "KE"),
    "Johannesburg": (-26.20, 28.05, "ZA"),
    "Cape Town": (-33.92, 18.42, "ZA"),
    "Victoria": (-4.62, 55.45, "SC"),
    "Port Louis": (-20.16, 57.50, "MU"),
    # Asia
    "Tokyo": (35.68, 139.69, "JP"),
    "Osaka": (34.69, 135.50, "JP"),
    "Seoul": (37.57, 126.98, "KR"),
    "Busan": (35.18, 129.08, "KR"),
    "Pyongyang": (39.04, 125.76, "KP"),
    "Beijing": (39.90, 116.41, "CN"),
    "Shanghai": (31.23, 121.47, "CN"),
    "Shenzhen": (22.54, 114.06, "CN"),
    "Hong Kong": (22.32, 114.17, "HK"),
    "Taipei": (25.03, 121.57, "TW"),
    "Singapore": (1.35, 103.82, "SG"),
    "Kuala Lumpur": (3.14, 101.69, "MY"),
    "Bangkok": (13.76, 100.50, "TH"),
    "Hanoi": (21.03, 105.85, "VN"),
    "Ho Chi Minh City": (10.82, 106.63, "VN"),
    "Manila": (14.60, 120.98, "PH"),
    "Jakarta": (-6.21, 106.85, "ID"),
    "Mumbai": (19.08, 72.88, "IN"),
    "Bangalore": (12.97, 77.59, "IN"),
    "New Delhi": (28.61, 77.21, "IN"),
    "Chennai": (13.08, 80.27, "IN"),
    "Karachi": (24.86, 67.01, "PK"),
    "Dhaka": (23.81, 90.41, "BD"),
    "Colombo": (6.93, 79.85, "LK"),
    "Kathmandu": (27.72, 85.32, "NP"),
    "Almaty": (43.24, 76.95, "KZ"),
    "Tashkent": (41.30, 69.24, "UZ"),
    "Baku": (40.41, 49.87, "AZ"),
    "Tbilisi": (41.72, 44.78, "GE"),
    "Yerevan": (40.18, 44.51, "AM"),
    "Ulaanbaatar": (47.89, 106.91, "MN"),
    # Oceania
    "Sydney": (-33.87, 151.21, "AU"),
    "Melbourne": (-37.81, 144.96, "AU"),
    "Perth": (-31.95, 115.86, "AU"),
    "Auckland": (-36.85, 174.76, "NZ"),
    "Wellington": (-41.29, 174.78, "NZ"),
    "Suva": (-18.12, 178.45, "FJ"),
}

CITY_COORDINATES: dict[str, GeoPoint] = {
    name: GeoPoint(lat=lat, lon=lon, country=cc, city=name)
    for name, (lat, lon, cc) in _CITY_TABLE.items()
}

# A representative (usually capital / biggest-hub) city per country code, used
# when only a country is known. Derived from the city table; the first city
# listed for each country above wins, with a few explicit overrides.
_COUNTRY_DEFAULT_CITY: dict[str, str] = {}
for _name, (_lat, _lon, _cc) in _CITY_TABLE.items():
    _COUNTRY_DEFAULT_CITY.setdefault(_cc, _name)
_COUNTRY_DEFAULT_CITY.update(
    {
        "US": "Ashburn",  # the default hosting location, not NYC
        "DE": "Frankfurt",
        "RU": "Moscow",
        "GB": "London",
    }
)


def city_location(city: str) -> GeoPoint:
    """Look up a city's :class:`GeoPoint`; raises ``KeyError`` if unknown."""
    return CITY_COORDINATES[city]


def country_centroid(country: str) -> GeoPoint:
    """A representative location for a country code.

    Falls back to a deterministic pseudo-location for country codes not in
    the table so that synthetic providers can claim arbitrary countries
    (HideMyAss claims 190+) without the simulator breaking.
    """
    city = _COUNTRY_DEFAULT_CITY.get(country)
    if city is not None:
        return CITY_COORDINATES[city]
    # Deterministic fallback: hash the code onto the globe. These points are
    # only used for 'claimed' locations that no physical server occupies.
    seed = sum(ord(c) * (i + 1) for i, c in enumerate(country))
    lat = ((seed * 37) % 120) - 60.0
    lon = ((seed * 73) % 360) - 180.0
    return GeoPoint(lat=lat, lon=lon, country=country, city="")


def known_countries() -> list[str]:
    """All country codes with at least one real city in the table."""
    return sorted({cc for (_, _, cc) in _CITY_TABLE.values()})


def cities_in_country(country: str) -> list[str]:
    """All table cities located in *country*, sorted by name."""
    return sorted(
        name for name, (_, _, cc) in _CITY_TABLE.items() if cc == country
    )
