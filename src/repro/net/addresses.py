"""IP addressing primitives.

Thin, hashable wrappers around integer address values plus network (CIDR)
arithmetic.  We implement the arithmetic directly rather than delegating to
:mod:`ipaddress` because the simulator needs a few operations the standard
library does not expose cleanly (prefix aggregation, deterministic subnet
carving, shared-prefix queries) and because keeping the representation an
``int`` makes longest-prefix matching in :mod:`repro.net.routing` fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Iterator, Union

_V4_BITS = 32
_V6_BITS = 128
_V4_MAX = (1 << _V4_BITS) - 1
_V6_MAX = (1 << _V6_BITS) - 1


class AddressError(ValueError):
    """Raised for malformed addresses or networks."""


def _check_int(value: int, bits: int, what: str) -> None:
    if not 0 <= value <= (1 << bits) - 1:
        raise AddressError(f"{what} out of range: {value!r}")


@dataclass(frozen=True, order=True)
class IPv4Address:
    """An IPv4 address stored as an unsigned 32-bit integer."""

    value: int

    def __post_init__(self) -> None:
        _check_int(self.value, _V4_BITS, "IPv4 address")

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        parts = text.strip().split(".")
        if len(parts) != 4:
            raise AddressError(f"invalid IPv4 address: {text!r}")
        value = 0
        for part in parts:
            if not part.isdigit():
                raise AddressError(f"invalid IPv4 address: {text!r}")
            octet = int(part)
            if octet > 255 or (len(part) > 1 and part[0] == "0"):
                raise AddressError(f"invalid IPv4 address: {text!r}")
            value = (value << 8) | octet
        return cls(value)

    @property
    def version(self) -> int:
        return 4

    @property
    def bits(self) -> int:
        return _V4_BITS

    def octets(self) -> tuple[int, int, int, int]:
        v = self.value
        return ((v >> 24) & 0xFF, (v >> 16) & 0xFF, (v >> 8) & 0xFF, v & 0xFF)

    def __str__(self) -> str:
        # Rendering is on the packet-delivery hot path (jitter keys, capture
        # summaries); memoise it on the frozen instance.
        text = self.__dict__.get("_text")
        if text is None:
            v = self.value
            text = (
                f"{(v >> 24) & 0xFF}.{(v >> 16) & 0xFF}"
                f".{(v >> 8) & 0xFF}.{v & 0xFF}"
            )
            object.__setattr__(self, "_text", text)
        return text

    def __repr__(self) -> str:
        return f"IPv4Address({str(self)!r})"

    def __reduce__(self):
        # Rebuild from the value alone; keeps the memoised rendering out
        # of pickled world snapshots.
        return (IPv4Address, (self.value,))

    def __add__(self, offset: int) -> "IPv4Address":
        return IPv4Address(self.value + offset)


@dataclass(frozen=True, order=True)
class IPv6Address:
    """An IPv6 address stored as an unsigned 128-bit integer."""

    value: int

    def __post_init__(self) -> None:
        _check_int(self.value, _V6_BITS, "IPv6 address")

    @classmethod
    def parse(cls, text: str) -> "IPv6Address":
        text = text.strip().lower()
        if text.count("::") > 1:
            raise AddressError(f"invalid IPv6 address: {text!r}")
        if "::" in text:
            head, _, tail = text.partition("::")
            head_groups = head.split(":") if head else []
            tail_groups = tail.split(":") if tail else []
            missing = 8 - len(head_groups) - len(tail_groups)
            if missing < 1:
                raise AddressError(f"invalid IPv6 address: {text!r}")
            groups = head_groups + ["0"] * missing + tail_groups
        else:
            groups = text.split(":")
        if len(groups) != 8:
            raise AddressError(f"invalid IPv6 address: {text!r}")
        value = 0
        for group in groups:
            if not group or len(group) > 4:
                raise AddressError(f"invalid IPv6 address: {text!r}")
            try:
                chunk = int(group, 16)
            except ValueError as exc:
                raise AddressError(f"invalid IPv6 address: {text!r}") from exc
            value = (value << 16) | chunk
        return cls(value)

    @property
    def version(self) -> int:
        return 6

    @property
    def bits(self) -> int:
        return _V6_BITS

    def groups(self) -> tuple[int, ...]:
        return tuple((self.value >> (16 * (7 - i))) & 0xFFFF for i in range(8))

    def __str__(self) -> str:
        text = self.__dict__.get("_text")
        if text is None:
            text = self._render()
            object.__setattr__(self, "_text", text)
        return text

    def _render(self) -> str:
        groups = self.groups()
        # Find the longest run of zero groups (length >= 2) to compress.
        best_start, best_len = -1, 0
        run_start, run_len = -1, 0
        for i, g in enumerate(groups):
            if g == 0:
                if run_start < 0:
                    run_start, run_len = i, 0
                run_len += 1
                if run_len > best_len:
                    best_start, best_len = run_start, run_len
            else:
                run_start, run_len = -1, 0
        if best_len >= 2:
            head = ":".join(f"{g:x}" for g in groups[:best_start])
            tail = ":".join(f"{g:x}" for g in groups[best_start + best_len:])
            return f"{head}::{tail}"
        return ":".join(f"{g:x}" for g in groups)

    def __repr__(self) -> str:
        return f"IPv6Address({str(self)!r})"

    def __reduce__(self):
        return (IPv6Address, (self.value,))

    def __add__(self, offset: int) -> "IPv6Address":
        return IPv6Address(self.value + offset)


Address = Union[IPv4Address, IPv6Address]


@lru_cache(maxsize=65536)
def parse_address(text: str) -> Address:
    """Parse an IPv4 or IPv6 address from its textual form.

    Parsed addresses are immutable, so results are interned through an LRU
    cache: the measurement suite parses the same anchor/resolver literals
    millions of times per study, and interning also lets the memoised
    ``__str__`` rendering amortise across call sites.
    """
    if ":" in text:
        return IPv6Address.parse(text)
    return IPv4Address.parse(text)


class _BaseNetwork:
    """Shared CIDR arithmetic for IPv4/IPv6 networks."""

    __slots__ = ("network", "prefix_len")

    _address_cls: type
    _bits: int

    def __init__(self, network: Address, prefix_len: int) -> None:
        if not 0 <= prefix_len <= self._bits:
            raise AddressError(f"invalid prefix length: {prefix_len}")
        mask = self._mask(prefix_len)
        if network.value & ~mask & ((1 << self._bits) - 1):
            # Normalise to the true network address.
            network = self._address_cls(network.value & mask)
        object.__setattr__(self, "network", network)
        object.__setattr__(self, "prefix_len", prefix_len)

    # Networks are conceptually immutable.
    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    # Reconstruct through __init__: the default slot-state protocol would
    # trip the immutability guard above when unpickling snapshot clones.
    def __reduce__(self):
        return (type(self), (self.network, self.prefix_len))

    # Per-class mask table, filled in after the subclass definitions;
    # indexing a tuple beats recomputing the shift on every containment
    # check (the routing and VPN-block hot paths).
    _masks: tuple[int, ...] = ()

    @classmethod
    def _mask(cls, prefix_len: int) -> int:
        return cls._masks[prefix_len]

    @classmethod
    def parse(cls, text: str):
        addr_text, _, plen_text = text.strip().partition("/")
        if not plen_text:
            plen = cls._bits
        else:
            if not plen_text.isdigit():
                raise AddressError(f"invalid network: {text!r}")
            plen = int(plen_text)
        return cls(cls._address_cls.parse(addr_text), plen)

    @property
    def version(self) -> int:
        return 4 if self._bits == _V4_BITS else 6

    @property
    def num_addresses(self) -> int:
        return 1 << (self._bits - self.prefix_len)

    @property
    def first(self) -> Address:
        return self.network

    @property
    def last(self) -> Address:
        return self._address_cls(self.network.value + self.num_addresses - 1)

    def __contains__(self, address: object) -> bool:
        if not isinstance(address, self._address_cls):
            return False
        mask = self._mask(self.prefix_len)
        return (address.value & mask) == self.network.value

    def contains_network(self, other: "_BaseNetwork") -> bool:
        """True if *other* is a subnet of (or equal to) this network."""
        if type(other) is not type(self):
            return False
        if other.prefix_len < self.prefix_len:
            return False
        mask = self._mask(self.prefix_len)
        return (other.network.value & mask) == self.network.value

    def overlaps(self, other: "_BaseNetwork") -> bool:
        return self.contains_network(other) or other.contains_network(self)

    def subnets(self, new_prefix: int) -> Iterator["_BaseNetwork"]:
        """Yield the subnets of this network at *new_prefix* length."""
        if new_prefix < self.prefix_len or new_prefix > self._bits:
            raise AddressError(
                f"cannot subnet /{self.prefix_len} into /{new_prefix}"
            )
        step = 1 << (self._bits - new_prefix)
        for base in range(
            self.network.value, self.network.value + self.num_addresses, step
        ):
            yield type(self)(self._address_cls(base), new_prefix)

    def address_at(self, index: int) -> Address:
        """The *index*-th address inside this network (0 = network address)."""
        if not 0 <= index < self.num_addresses:
            raise AddressError(
                f"index {index} out of range for {self} "
                f"({self.num_addresses} addresses)"
            )
        return self._address_cls(self.network.value + index)

    def supernet(self, new_prefix: int) -> "_BaseNetwork":
        if new_prefix > self.prefix_len or new_prefix < 0:
            raise AddressError(
                f"cannot supernet /{self.prefix_len} to /{new_prefix}"
            )
        return type(self)(self.network, new_prefix)

    def __str__(self) -> str:
        return f"{self.network}/{self.prefix_len}"

    def __repr__(self) -> str:
        return f"{type(self).__name__}({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        return (
            type(other) is type(self)
            and other.network == self.network  # type: ignore[attr-defined]
            and other.prefix_len == self.prefix_len  # type: ignore[attr-defined]
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.network, self.prefix_len))

    def __lt__(self, other: "_BaseNetwork") -> bool:
        return (self.network.value, self.prefix_len) < (
            other.network.value,
            other.prefix_len,
        )


class IPv4Network(_BaseNetwork):
    """An IPv4 CIDR block."""

    _address_cls = IPv4Address
    _bits = _V4_BITS


class IPv6Network(_BaseNetwork):
    """An IPv6 CIDR block."""

    _address_cls = IPv6Address
    _bits = _V6_BITS


def _mask_table(bits: int) -> tuple[int, ...]:
    return tuple(
        0 if plen == 0 else ((1 << plen) - 1) << (bits - plen)
        for plen in range(bits + 1)
    )


IPv4Network._masks = _mask_table(_V4_BITS)
IPv6Network._masks = _mask_table(_V6_BITS)

Network = Union[IPv4Network, IPv6Network]


@lru_cache(maxsize=65536)
def parse_network(text: str) -> Network:
    """Parse an IPv4 or IPv6 CIDR block from its textual form.

    Networks are immutable, so results are LRU-interned like
    :func:`parse_address`.
    """
    if ":" in text:
        return IPv6Network.parse(text)
    return IPv4Network.parse(text)


class NetworkSet:
    """Indexed membership test over a collection of CIDR blocks.

    Bucketing network values by (version, prefix length) turns "is this
    address inside any of these blocks?" from a linear scan over every
    block into one mask-and-probe per populated prefix length.  Used for
    the VPN egress-block blacklist, which every origin web server consults
    on every request.
    """

    def __init__(self, networks: Iterable[Network] = ()) -> None:
        self._buckets: dict[tuple[int, int], set[int]] = {}
        for network in networks:
            self.add(network)

    def add(self, network: Network) -> None:
        key = (network.version, network.prefix_len)
        self._buckets.setdefault(key, set()).add(network.network.value)

    def __contains__(self, address: object) -> bool:
        if isinstance(address, IPv4Address):
            version, masks = 4, IPv4Network._masks
        elif isinstance(address, IPv6Address):
            version, masks = 6, IPv6Network._masks
        else:
            return False
        value = address.value
        for (bucket_version, plen), values in self._buckets.items():
            if bucket_version == version and (value & masks[plen]) in values:
                return True
        return False

    def __len__(self) -> int:
        return sum(len(values) for values in self._buckets.values())


def ip_in_network(address: Union[str, Address], network: Union[str, Network]) -> bool:
    """Convenience membership check accepting strings or parsed objects."""
    if isinstance(address, str):
        address = parse_address(address)
    if isinstance(network, str):
        network = parse_network(network)
    return address in network


def aggregate_cidrs(networks: Iterable[Network]) -> list[Network]:
    """Collapse a set of CIDR blocks into the minimal covering set.

    Removes blocks contained in others and merges adjacent sibling blocks,
    mirroring ``ipaddress.collapse_addresses``.  v4 and v6 blocks are
    aggregated independently and returned sorted (v4 first).
    """
    by_version: dict[int, list[Network]] = {4: [], 6: []}
    for net in networks:
        by_version[net.version].append(net)

    result: list[Network] = []
    for version in (4, 6):
        blocks = sorted(set(by_version[version]))
        # Drop blocks contained in an earlier (wider or equal) block.
        pruned: list[Network] = []
        for block in blocks:
            if pruned and pruned[-1].contains_network(block):
                continue
            pruned.append(block)
        # Iteratively merge sibling pairs.
        merged = True
        while merged:
            merged = False
            out: list[Network] = []
            i = 0
            while i < len(pruned):
                cur = pruned[i]
                if i + 1 < len(pruned):
                    nxt = pruned[i + 1]
                    if cur.prefix_len == nxt.prefix_len and cur.prefix_len > 0:
                        parent = cur.supernet(cur.prefix_len - 1)
                        if (
                            parent.network == cur.network
                            and nxt.network.value
                            == cur.network.value + cur.num_addresses
                        ):
                            out.append(parent)
                            i += 2
                            merged = True
                            continue
                out.append(cur)
                i += 1
            pruned = out
        result.extend(pruned)
    return result


def shared_prefix_len(a: Address, b: Address) -> int:
    """Number of leading bits shared by two addresses of the same family."""
    if a.version != b.version:
        raise AddressError("cannot compare addresses of different families")
    bits = a.bits
    diff = a.value ^ b.value
    if diff == 0:
        return bits
    return bits - diff.bit_length()


def carve_subnets(
    pool: Network, prefix_len: int, count: int
) -> list[Network]:
    """Deterministically carve *count* subnets of *prefix_len* out of *pool*.

    Used by the provider catalogue to allocate vantage-point IP blocks.
    """
    subnets: list[Network] = []
    for net in pool.subnets(prefix_len):
        subnets.append(net)
        if len(subnets) == count:
            return subnets
    raise AddressError(
        f"pool {pool} cannot hold {count} /{prefix_len} subnets"
    )
