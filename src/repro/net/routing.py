"""Routing tables with longest-prefix matching.

A :class:`RoutingTable` maps destination prefixes to either a named interface
(for directly-connected networks and tunnel devices) or a gateway address.
The VPN client reroutes traffic by installing/removing routes exactly the way
real clients manipulate the OS routing table, so the metadata test (paper
Section 5.3.4) can snapshot it, and the leakage tests observe its effects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.addresses import (
    Address,
    IPv4Network,
    IPv6Network,
    Network,
    parse_address,
    parse_network,
)

DEFAULT_V4 = IPv4Network.parse("0.0.0.0/0")
DEFAULT_V6 = IPv6Network.parse("::/0")


@dataclass(frozen=True)
class Route:
    """A single routing-table entry.

    ``interface`` names the egress device.  ``gateway`` is informational in
    the simulator (delivery is topological), but it is recorded because the
    metadata snapshot includes it and tests assert on it.  Lower ``metric``
    wins among equal-length prefixes.
    """

    prefix: Network
    interface: str
    gateway: Optional[Address] = None
    metric: int = 0
    source: str = "static"  # static | dhcp | vpn

    def describe(self) -> str:
        gw = str(self.gateway) if self.gateway else "link"
        return (
            f"{self.prefix} via {gw} dev {self.interface} "
            f"metric {self.metric} ({self.source})"
        )


class RoutingTable:
    """An ordered collection of routes with longest-prefix-match lookup."""

    def __init__(self) -> None:
        self._routes: list[Route] = []

    def add(self, route: Route) -> None:
        self._routes.append(route)

    def add_prefix(
        self,
        prefix: str | Network,
        interface: str,
        gateway: str | Address | None = None,
        metric: int = 0,
        source: str = "static",
    ) -> Route:
        if isinstance(prefix, str):
            prefix = parse_network(prefix)
        if isinstance(gateway, str):
            gateway = parse_address(gateway)
        route = Route(
            prefix=prefix,
            interface=interface,
            gateway=gateway,
            metric=metric,
            source=source,
        )
        self.add(route)
        return route

    def remove_where(self, **attrs: object) -> int:
        """Remove all routes whose attributes match; returns count removed."""
        def matches(route: Route) -> bool:
            return all(getattr(route, k) == v for k, v in attrs.items())

        before = len(self._routes)
        self._routes = [r for r in self._routes if not matches(r)]
        return before - len(self._routes)

    def routes(self) -> list[Route]:
        return list(self._routes)

    def lookup(self, destination: str | Address) -> Optional[Route]:
        """Longest-prefix match; ties broken by lowest metric, then recency."""
        if isinstance(destination, str):
            destination = parse_address(destination)
        best: Optional[Route] = None
        best_index = -1
        for index, route in enumerate(self._routes):
            if route.prefix.version != destination.version:
                continue
            if destination not in route.prefix:
                continue
            if best is None:
                best, best_index = route, index
                continue
            if route.prefix.prefix_len > best.prefix.prefix_len:
                best, best_index = route, index
            elif route.prefix.prefix_len == best.prefix.prefix_len:
                if route.metric < best.metric or (
                    route.metric == best.metric and index > best_index
                ):
                    best, best_index = route, index
        return best

    def default_route(self, version: int = 4) -> Optional[Route]:
        """The current default route for the given IP version, if any."""
        default = DEFAULT_V4 if version == 4 else DEFAULT_V6
        candidates = [r for r in self._routes if r.prefix == default]
        if not candidates:
            return None
        return min(
            enumerate(candidates), key=lambda pair: (pair[1].metric, -pair[0])
        )[1]

    def host_routes(self) -> list[Route]:
        """All /32 (v4) and /128 (v6) routes — pinned-host routes.

        VPN clients typically pin the VPN server's address through the
        physical interface before moving the default route onto the tunnel;
        the metadata test pings every such route (Section 5.3.4).
        """
        return [
            r
            for r in self._routes
            if (r.prefix.version == 4 and r.prefix.prefix_len == 32)
            or (r.prefix.version == 6 and r.prefix.prefix_len == 128)
        ]

    def snapshot(self) -> list[str]:
        """Human-readable dump, used in metadata collection."""
        return [route.describe() for route in self._routes]

    def __len__(self) -> int:
        return len(self._routes)
