"""Routing tables with longest-prefix matching.

A :class:`RoutingTable` maps destination prefixes to either a named interface
(for directly-connected networks and tunnel devices) or a gateway address.
The VPN client reroutes traffic by installing/removing routes exactly the way
real clients manipulate the OS routing table, so the metadata test (paper
Section 5.3.4) can snapshot it, and the leakage tests observe its effects.

When the stage profiler is on (``ObsConfig(stage_profile=True)``), lookup
time on the legacy send path is attributed to the ``route`` stage; the
delivery engine's ``route`` stage additionally covers plan compilation,
which embeds the result of this table's lookups (see ``repro.obs.stages``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.addresses import (
    Address,
    IPv4Network,
    IPv6Network,
    Network,
    parse_address,
    parse_network,
)

DEFAULT_V4 = IPv4Network.parse("0.0.0.0/0")
DEFAULT_V6 = IPv6Network.parse("::/0")


@dataclass(frozen=True)
class Route:
    """A single routing-table entry.

    ``interface`` names the egress device.  ``gateway`` is informational in
    the simulator (delivery is topological), but it is recorded because the
    metadata snapshot includes it and tests assert on it.  Lower ``metric``
    wins among equal-length prefixes.
    """

    prefix: Network
    interface: str
    gateway: Optional[Address] = None
    metric: int = 0
    source: str = "static"  # static | dhcp | vpn

    def describe(self) -> str:
        gw = str(self.gateway) if self.gateway else "link"
        return (
            f"{self.prefix} via {gw} dev {self.interface} "
            f"metric {self.metric} ({self.source})"
        )


_MISS = object()  # lookup-cache sentinel (None is a valid cached result)


class RoutingTable:
    """An ordered collection of routes with longest-prefix-match lookup.

    Lookup is indexed: routes are bucketed by (IP version, prefix length,
    network value), and a longest-prefix match walks the populated prefix
    lengths in descending order instead of linearly scanning every route.
    A generation counter tracks mutations; the index and the per-destination
    lookup memo are rebuilt lazily whenever the table has changed, so
    correctness never depends on call order.  Semantics are unchanged from
    the linear implementation: longest prefix wins, ties break by lowest
    metric, then by most recently added.
    """

    def __init__(self) -> None:
        self._routes: list[Route] = []
        # Mutation generation; bumped by add/remove, compared lazily.
        self._generation = 0
        # version -> prefix_len -> network value -> [(insertion idx, Route)]
        self._buckets: dict[int, dict[int, dict[int, list[tuple[int, Route]]]]]
        self._buckets = {}
        # version -> populated prefix lengths, descending (index walk order).
        self._plens: dict[int, list[int]] = {}
        self._index_generation = -1
        # id(destination) -> (destination, Optional[Route]) memo, valid for
        # one generation.  Identity keys hash at C speed (value keys would
        # pay a Python-level dataclass ``__hash__`` frame per probe on the
        # packet hot path); the destination reference held in the entry pins
        # the id against recycling.  Equal-but-distinct destinations merely
        # recompute the same route.
        self._lookup_cache: dict[int, tuple[Address, Optional[Route]]] = {}
        self._cache_generation = -1
        # Observability memo stats (repro.obs.metrics.RouteLookupStats) or
        # None; attached by an Observability session, one check per lookup.
        self.stats = None

    # Derived state (index + memo) is rebuilt on demand; keep pickled
    # worlds lean by persisting only the canonical route list.
    def __getstate__(self) -> dict:
        return {"_routes": self._routes}

    def __setstate__(self, state: dict) -> None:
        self.__init__()  # type: ignore[misc]
        self._routes = state["_routes"]

    def add(self, route: Route) -> None:
        self._routes.append(route)
        self._generation += 1

    def add_prefix(
        self,
        prefix: str | Network,
        interface: str,
        gateway: str | Address | None = None,
        metric: int = 0,
        source: str = "static",
    ) -> Route:
        if isinstance(prefix, str):
            prefix = parse_network(prefix)
        if isinstance(gateway, str):
            gateway = parse_address(gateway)
        route = Route(
            prefix=prefix,
            interface=interface,
            gateway=gateway,
            metric=metric,
            source=source,
        )
        self.add(route)
        return route

    def remove_where(self, **attrs: object) -> int:
        """Remove all routes whose attributes match; returns count removed."""
        def matches(route: Route) -> bool:
            return all(getattr(route, k) == v for k, v in attrs.items())

        before = len(self._routes)
        self._routes = [r for r in self._routes if not matches(r)]
        self._generation += 1
        return before - len(self._routes)

    def routes(self) -> list[Route]:
        return list(self._routes)

    def _rebuild_index(self) -> None:
        buckets: dict[int, dict[int, dict[int, list[tuple[int, Route]]]]] = {}
        for index, route in enumerate(self._routes):
            prefix = route.prefix
            by_plen = buckets.setdefault(prefix.version, {})
            by_value = by_plen.setdefault(prefix.prefix_len, {})
            by_value.setdefault(prefix.network.value, []).append((index, route))
        self._buckets = buckets
        self._plens = {
            version: sorted(by_plen, reverse=True)
            for version, by_plen in buckets.items()
        }
        self._index_generation = self._generation

    def lookup(self, destination: str | Address) -> Optional[Route]:
        """Longest-prefix match; ties broken by lowest metric, then recency."""
        if isinstance(destination, str):
            destination = parse_address(destination)
        if self._cache_generation != self._generation:
            self._lookup_cache.clear()
            self._cache_generation = self._generation
        stats = self.stats
        cached = self._lookup_cache.get(id(destination))
        if cached is not None:
            if stats is not None:
                stats.hits += 1
            return cached[1]
        if stats is not None:
            stats.misses += 1
        if self._index_generation != self._generation:
            self._rebuild_index()
        best: Optional[Route] = None
        by_plen = self._buckets.get(destination.version)
        if by_plen:
            value = destination.value
            masks = (
                IPv4Network._masks
                if destination.version == 4
                else IPv6Network._masks
            )
            for prefix_len in self._plens[destination.version]:
                candidates = by_plen[prefix_len].get(value & masks[prefix_len])
                if candidates:
                    best = min(
                        candidates, key=lambda pair: (pair[1].metric, -pair[0])
                    )[1]
                    break
        if len(self._lookup_cache) >= 4096:
            self._lookup_cache.clear()
        self._lookup_cache[id(destination)] = (destination, best)
        return best

    def default_route(self, version: int = 4) -> Optional[Route]:
        """The current default route for the given IP version, if any."""
        default = DEFAULT_V4 if version == 4 else DEFAULT_V6
        candidates = [r for r in self._routes if r.prefix == default]
        if not candidates:
            return None
        return min(
            enumerate(candidates), key=lambda pair: (pair[1].metric, -pair[0])
        )[1]

    def host_routes(self) -> list[Route]:
        """All /32 (v4) and /128 (v6) routes — pinned-host routes.

        VPN clients typically pin the VPN server's address through the
        physical interface before moving the default route onto the tunnel;
        the metadata test pings every such route (Section 5.3.4).
        """
        return [
            r
            for r in self._routes
            if (r.prefix.version == 4 and r.prefix.prefix_len == 32)
            or (r.prefix.version == 6 and r.prefix.prefix_len == 128)
        ]

    def snapshot(self) -> list[str]:
        """Human-readable dump, used in metadata collection."""
        return [route.describe() for route in self._routes]

    def __len__(self) -> int:
        return len(self._routes)
