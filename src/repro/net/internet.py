"""The simulated internet.

The :class:`Internet` is the global topology: a registry of hosts keyed by IP
address, a simulation clock, and the latency model.  Delivery is synchronous:
``deliver`` carries a packet from its source host to the host owning the
destination address, advances the clock by the one-way latency, dispatches to
the destination, and carries any responses back.

TTL semantics are modelled so that traceroute works: the path between two
hosts is populated with synthetic routers placed along the great-circle path,
each with a deterministic IP drawn from a reserved prefix.  A packet whose
TTL expires at hop *k* yields an ICMP time-exceeded from router *k*, with an
RTT proportional to the distance covered — exactly the observable the paper's
infrastructure-inference tests consume.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from repro.net.addresses import Address, IPv4Address, parse_address
from repro.net.engine import DeliveryEngine, engine_enabled
from repro.net.geo import GeoPoint
from repro.net.host import Host
from repro.net.latency import DEFAULT_LATENCY_MODEL, LatencyModel
from repro.net.packet import DEFAULT_TTL, IcmpPayload, Packet

# Synthetic transit routers live in this (reserved, never host-assigned)
# space: 100.64.0.0/10 is carrier-grade NAT space in the real world.
_ROUTER_PREFIX = 100 << 24 | 64 << 16


@dataclass(frozen=True)
class TracerouteHop:
    """One hop of a traceroute: address (or None on timeout) and RTT."""

    ttl: int
    address: Optional[Address]
    rtt_ms: Optional[float]
    location: Optional[GeoPoint] = None

    def describe(self) -> str:
        if self.address is None:
            return f"{self.ttl:2d}  *"
        return f"{self.ttl:2d}  {self.address}  {self.rtt_ms:.3f} ms"


@dataclass(frozen=True)
class PingResult:
    """Outcome of one echo probe."""

    target: Address
    rtt_ms: Optional[float]

    @property
    def reachable(self) -> bool:
        return self.rtt_ms is not None


@dataclass(slots=True)
class DeliveryResult:
    """The fate of a sent packet."""

    packet: Packet
    status: str  # delivered | no_route | unreachable | filtered | ttl_exceeded | interface_down
    rtt_ms: Optional[float] = None
    responses: list[Packet] = field(default_factory=list)
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "delivered"

    @classmethod
    def no_route(cls, packet: Packet) -> "DeliveryResult":
        return cls(packet=packet, status="no_route")

    @classmethod
    def filtered(cls, packet: Packet, detail: str) -> "DeliveryResult":
        return cls(packet=packet, status="filtered", detail=detail)

    @classmethod
    def interface_down(cls, packet: Packet, interface: str) -> "DeliveryResult":
        return cls(packet=packet, status="interface_down", detail=interface)


class Internet:
    """The global simulated topology."""

    # Topology mutation counter (class attribute so worlds pickled before
    # it existed restore cleanly).  Bumped whenever the address registry
    # changes; the delivery engine stamps compiled flow plans with it.
    _topology_gen = 0

    def __init__(self, latency_model: LatencyModel | None = None) -> None:
        self.latency = latency_model or DEFAULT_LATENCY_MODEL
        self.clock_ms: float = 0.0
        # Observability session (repro.obs) or None.  None is the contract
        # for "off": every event site pays one attribute load and one
        # `is not None` check, nothing else.  Never pickled with the world.
        self.obs = None
        self._hosts_by_address: dict[Address, Host] = {}
        self._hosts_by_name: dict[str, Host] = {}
        # Upstream path blackholes: (source host name, destination address)
        # pairs an in-path censor/ISP silently drops. Used by the
        # tunnel-failure test to sever a VPN outside the client's control.
        self._blackholes: set[tuple[str, Address]] = set()
        # Synthetic-router memo: (src loc, dst loc, hop, total) -> result.
        # Purely derived (SHA of the key), so caching cannot alter output.
        self._router_cache: dict[
            tuple[GeoPoint, GeoPoint, int, int], tuple[Address, GeoPoint]
        ] = {}
        # id(dst address) -> (dst address, Host) delivery memo.  Identity
        # keys hash at C speed; the address reference in the entry pins the
        # id.  Cleared whenever the address registry mutates, so it can
        # never serve a stale owner.
        self._dst_memo: dict[int, tuple[Address, Host]] = {}
        # Interned probe packets: ping/traceroute re-issue byte-identical
        # probes throughout a study, and reusing the same frozen object
        # lets every per-object memo (hash, jitter sample, decremented
        # copy, echo reply) hit instead of being rebuilt per probe.
        self._probe_cache: dict[
            tuple[Address, Address, int, int], Packet
        ] = {}
        # The discrete-event delivery engine (repro.net.engine), or None
        # when disabled via REPRO_DELIVERY_ENGINE.  Owns the flow-plan
        # caches and the time-ordered event queue; never pickled.
        self.engine: DeliveryEngine | None = (
            DeliveryEngine(self) if engine_enabled() else None
        )

    # Drop the derived memos from pickled worlds; they are rebuilt on
    # demand and only bloat the snapshot blob.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_router_cache", None)
        state.pop("_probe_cache", None)
        state.pop("_dst_memo", None)
        state.pop("obs", None)
        state.pop("engine", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._router_cache = {}
        self._probe_cache = {}
        self._dst_memo = {}
        self.obs = None
        self.engine = DeliveryEngine(self) if engine_enabled() else None

    # ------------------------------------------------------------------
    # Topology management
    # ------------------------------------------------------------------
    def attach(self, host: Host) -> Host:
        """Attach a host; indexes all its current interface addresses."""
        host.internet = self
        if host.name in self._hosts_by_name:
            raise ValueError(f"duplicate host name {host.name!r}")
        self._hosts_by_name[host.name] = host
        for address in host.addresses():
            self.register_address(address, host)
        return host

    def register_address(self, address: Address, host: Host) -> None:
        existing = self._hosts_by_address.get(address)
        if existing is not None and existing is not host:
            raise ValueError(
                f"address {address} already owned by {existing.name}"
            )
        self._hosts_by_address[address] = host
        self._dst_memo.clear()
        self._topology_gen += 1

    def release_address(self, address: Address) -> None:
        self._hosts_by_address.pop(address, None)
        self._dst_memo.clear()
        self._topology_gen += 1

    def host_for(self, address: str | Address) -> Optional[Host]:
        if isinstance(address, str):
            address = parse_address(address)
        return self._hosts_by_address.get(address)

    def host_named(self, name: str) -> Optional[Host]:
        return self._hosts_by_name.get(name)

    def hosts(self) -> list[Host]:
        return list(self._hosts_by_name.values())

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def block_path(self, source: Host, destination: str | Address) -> None:
        """Silently drop all traffic from *source* to *destination*."""
        if isinstance(destination, str):
            destination = parse_address(destination)
        self._blackholes.add((source.name, destination))

    def unblock_path(self, source: Host, destination: str | Address) -> None:
        if isinstance(destination, str):
            destination = parse_address(destination)
        self._blackholes.discard((source.name, destination))

    def _jitter_sample(self, packet: Packet) -> int:
        """Jitter realisation for a packet, from its content alone.

        Deriving the sample from the packet (rather than a running probe
        counter) keeps every RTT a pure function of the probe itself, so
        results are identical regardless of what else the world delivered
        first — the property the parallel runtime's byte-identical
        archives rest on.  Distinct probes (ping sequence numbers, query
        names) still draw distinct jitter.

        The sample is memoised on the (frozen) packet: a packet's fields
        never change after construction, so hashing it twice — once for a
        TTL check, once for final delivery — is pure rework.  The key
        string and digest are byte-for-byte those of the original
        implementation; only recomputation is skipped.
        """
        sample = packet.__dict__.get("_jitter_sample")
        if sample is None:
            # The payload repr dominates the key build (it recurses
            # through tunnel encapsulation); payloads are frozen, so
            # memoise the rendering on the payload object itself.
            payload = packet.payload
            payload_repr = payload.__dict__.get("_repr")
            if payload_repr is None:
                payload_repr = repr(payload)
                object.__setattr__(payload, "_repr", payload_repr)
            key = f"{packet.src}|{packet.dst}|{packet.ttl}|{payload_repr}"
            digest = hashlib.sha256(key.encode("utf-8", "replace")).digest()
            sample = int.from_bytes(digest[:8], "big")
            object.__setattr__(packet, "_jitter_sample", sample)
        return sample

    def deliver(self, packet: Packet, source: Host) -> DeliveryResult:
        """Deliver a packet from *source* to the owner of ``packet.dst``."""
        dst = packet.dst
        obs = self.obs
        stages = obs.stages if obs is not None else None
        if self._blackholes and (source.name, dst) in self._blackholes:
            self.clock_ms += 2.0
            if obs is not None:
                obs.packet_event(
                    source.name, packet, "unreachable", "path blackholed"
                )
            return DeliveryResult(
                packet=packet, status="unreachable", detail="path blackholed"
            )
        entry = self._dst_memo.get(id(dst))
        if entry is not None:
            destination = entry[1]
        else:
            destination = self._hosts_by_address.get(dst)
            if destination is None:
                # No such host: the packet dies in transit after a
                # plausible delay.  (Misses are not memoised — the address
                # may be registered later.)
                self.clock_ms += 3.0
                if obs is not None:
                    obs.packet_event(source.name, packet, "unreachable")
                return DeliveryResult(packet=packet, status="unreachable")
            if len(self._dst_memo) >= 8192:
                self._dst_memo.clear()
            self._dst_memo[id(dst)] = (dst, destination)

        latency = self.latency
        src_loc = source.location
        dst_loc = destination.location
        hops = latency._pair_stats(src_loc, dst_loc)[1]
        if packet.ttl <= hops:
            # Expired at an intermediate router.
            hop_index = packet.ttl
            router_addr, router_loc = self._router_at(
                source, destination, hop_index, hops
            )
            fraction = hop_index / max(1, hops)
            if stages is not None:
                stages.enter("latency")
            rtt = (
                latency.rtt_ms(src_loc, dst_loc, self._jitter_sample(packet))
                * fraction
            )
            self.clock_ms += rtt
            if stages is not None:
                stages.leave()
            reply = Packet(
                src=router_addr,
                dst=packet.src,
                payload=IcmpPayload(
                    icmp_type="time_exceeded", original_dst=str(packet.dst)
                ),
            )
            if obs is not None:
                obs.packet_event(
                    source.name, packet, "ttl_exceeded", str(router_addr)
                )
            return DeliveryResult(
                packet=packet,
                status="ttl_exceeded",
                rtt_ms=rtt,
                responses=[reply],
                detail=str(router_addr),
            )

        # Stage attribution: jitter/RTT derivation and both clock
        # half-advances bill to `latency`; the receive side nests inside
        # as `dispatch` and is subtracted by exclusive accounting.
        if stages is not None:
            stages.enter("latency")
        sample = packet.__dict__.get("_jitter_sample")
        if sample is None:
            sample = self._jitter_sample(packet)
        rtt = latency.rtt_ms(src_loc, dst_loc, sample)
        self.clock_ms += rtt / 2.0
        # Inline `decrement_ttl` memo fast path (hot: once per delivery).
        delivered = packet.__dict__.get("_dec")
        if delivered is None:
            delivered = packet.decrement_ttl()
        if stages is not None:
            stages.enter("dispatch")
        responses = destination.receive(delivered) or []
        if stages is not None:
            stages.leave()
        self.clock_ms += rtt / 2.0
        if stages is not None:
            stages.leave()
        if obs is not None:
            obs.packet_event(source.name, packet, "delivered")
        return DeliveryResult(
            packet=packet, status="delivered", rtt_ms=rtt, responses=responses
        )

    # ------------------------------------------------------------------
    # Probing primitives used by the measurement suite
    # ------------------------------------------------------------------
    def ping(
        self, source: Host, target: str | Address, count: int = 1
    ) -> list[PingResult]:
        """Send *count* echo requests from *source* to *target*."""
        if isinstance(target, str):
            target = parse_address(target)
        results: list[PingResult] = []
        src_addr = _source_address_for(source, target)
        if src_addr is None:
            return [PingResult(target=target, rtt_ms=None)] * count
        engine = self.engine
        if engine is None:
            for sequence in range(count):
                probe = self._probe(src_addr, target, 1, sequence)
                # RTT is measured on the simulation clock so that multi-leg
                # paths (e.g. through a VPN tunnel) accumulate correctly.
                # The delta is rounded to nanoseconds: subtraction near a
                # large accumulated clock value leaves ~1e-9 ms of float
                # noise that would otherwise vary with how much the world
                # ran beforehand.
                started = self.clock_ms
                outcome = source.send(probe)
                elapsed = round(self.clock_ms - started, 6)
                got_reply = outcome.ok and any(
                    isinstance(r.payload, IcmpPayload)
                    and r.payload.icmp_type == "echo_reply"
                    for r in outcome.responses
                )
                results.append(
                    PingResult(
                        target=target, rtt_ms=elapsed if got_reply else None
                    )
                )
            return results
        # Batched dispatch through the engine's event queue: the whole
        # probe train is scheduled at the current virtual time, then the
        # queue is drained in (time, sequence) order.  Equal timestamps
        # pop in insertion order — the queue's determinism guarantee —
        # so the result vector is byte-identical to the sequential loop
        # above, while each pop runs the compiled flow plan.  Each probe
        # still observes the clock advanced by its predecessors (probes
        # are serialised on one wire), exactly as before.
        queue = engine.queue
        for sequence in range(count):
            queue.push(
                self.clock_ms, source, self._probe(src_addr, target, 1, sequence)
            )
        for _ in range(count):
            event = queue.pop()
            started = self.clock_ms
            outcome = event.host.send(event.packet)
            event.result = outcome
            elapsed = round(self.clock_ms - started, 6)
            got_reply = outcome.ok and any(
                isinstance(r.payload, IcmpPayload)
                and r.payload.icmp_type == "echo_reply"
                for r in outcome.responses
            )
            results.append(
                PingResult(target=target, rtt_ms=elapsed if got_reply else None)
            )
        return results

    def traceroute(
        self, source: Host, target: str | Address, max_ttl: int = 30
    ) -> list[TracerouteHop]:
        """Standard increasing-TTL traceroute from *source* to *target*."""
        if isinstance(target, str):
            target = parse_address(target)
        src_addr = _source_address_for(source, target)
        if src_addr is None:
            return []
        hops: list[TracerouteHop] = []
        for ttl in range(1, max_ttl + 1):
            probe = self._probe(src_addr, target, 2, ttl, ttl=ttl)
            started = self.clock_ms
            outcome = source.send(probe)
            elapsed = round(self.clock_ms - started, 6)
            if outcome.status == "ttl_exceeded":
                router = outcome.responses[0].src if outcome.responses else None
                hops.append(
                    TracerouteHop(ttl=ttl, address=router, rtt_ms=elapsed)
                )
                continue
            if outcome.ok:
                # Through a tunnel the expiry happens on the inner path and
                # comes back as an encapsulated time-exceeded response.
                exceeded = [
                    r
                    for r in outcome.responses
                    if isinstance(r.payload, IcmpPayload)
                    and r.payload.icmp_type == "time_exceeded"
                ]
                if exceeded:
                    hops.append(
                        TracerouteHop(
                            ttl=ttl, address=exceeded[0].src, rtt_ms=elapsed
                        )
                    )
                    continue
                reached = any(
                    isinstance(r.payload, IcmpPayload)
                    and r.payload.icmp_type == "echo_reply"
                    for r in outcome.responses
                )
                if reached:
                    hops.append(
                        TracerouteHop(ttl=ttl, address=target, rtt_ms=elapsed)
                    )
                    break
                hops.append(TracerouteHop(ttl=ttl, address=None, rtt_ms=None))
                continue
            hops.append(TracerouteHop(ttl=ttl, address=None, rtt_ms=None))
            if outcome.status in ("no_route", "filtered", "interface_down"):
                break
        return hops

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _probe(
        self,
        src: Address,
        dst: Address,
        identifier: int,
        sequence: int,
        ttl: int = DEFAULT_TTL,
    ) -> Packet:
        """An interned echo-request probe (content-identical to a fresh one)."""
        cache_key = (src, dst, identifier, sequence)
        probe = self._probe_cache.get(cache_key)
        if probe is None:
            probe = Packet(
                src=src,
                dst=dst,
                ttl=ttl,
                payload=IcmpPayload(
                    icmp_type="echo_request",
                    identifier=identifier,
                    sequence=sequence,
                ),
            )
            if len(self._probe_cache) >= 65536:
                self._probe_cache.clear()
            self._probe_cache[cache_key] = probe
        return probe

    def _router_at(
        self, source: Host, destination: Host, hop: int, total_hops: int
    ) -> tuple[Address, GeoPoint]:
        """Deterministic synthetic router for hop *hop* on a path."""
        src_loc = source.location
        dst_loc = destination.location
        cache_key = (src_loc, dst_loc, hop, total_hops)
        cached = self._router_cache.get(cache_key)
        if cached is not None:
            return cached
        key = f"{src_loc.lat},{src_loc.lon}->" \
              f"{dst_loc.lat},{dst_loc.lon}#{hop}"
        digest = hashlib.sha256(key.encode("ascii")).digest()
        suffix = int.from_bytes(digest[:3], "big") & 0x3FFFFF
        address = IPv4Address(_ROUTER_PREFIX | suffix)
        fraction = hop / max(1, total_hops)
        location = GeoPoint(
            lat=src_loc.lat + (dst_loc.lat - src_loc.lat) * fraction,
            lon=src_loc.lon + (dst_loc.lon - src_loc.lon) * fraction,
            country="",
        )
        if len(self._router_cache) >= 4096:
            self._router_cache.clear()
        result = self._router_cache[cache_key] = (address, location)
        return result


def _source_address_for(source: Host, target: Address) -> Optional[Address]:
    """Pick the source address matching the route's egress interface."""
    route = source.routing.lookup(target)
    if route is None:
        return None
    interface = source.interfaces.get(route.interface)
    if interface is None:
        return None
    return interface.address_for_version(target.version)
