"""Discrete-event packet delivery engine.

This module replaces the recursive call-stack delivery path
(``Host.send`` → ``Internet.deliver`` → ``Host.receive`` →
``TunnelEndpoint.transmit`` → …) with a flat, plan-driven dispatch loop.
The legacy path walks five to nine Python frames per packet and re-derives
the same routing, firewall, interface, and topology decisions for every
probe of a study; the engine compiles each *flow* — one (source host,
src address, dst address, protocol, port) tuple — into a
:class:`FlowPlan` once, then executes subsequent packets of that flow as
a handful of arithmetic operations and list appends.

Three structural pieces:

``EventQueue``
    A single time-ordered queue (``heapq`` keyed by ``(virtual_time,
    sequence)``).  The sequence number is allocated monotonically at push
    time, so events scheduled at equal virtual timestamps always dispatch
    in insertion order — the determinism property that lets batched
    dispatch (``Internet.ping`` enqueues a whole probe train at once)
    produce bytes identical to the sequential loop it replaced.

``PacketEvent``
    A ``__slots__`` record (no dict, no dataclass machinery) carrying one
    scheduled delivery.  The queue stores plain ``(time, seq, event)``
    tuples so heap comparisons run entirely in C.

``DeliveryEngine``
    The flow-plan compiler/executor, owned by an :class:`Internet` (one
    per world, never pickled).  ``send()`` either executes a compiled
    plan and returns a ``DeliveryResult``, or returns ``None``, in which
    case the caller falls through to the unmodified legacy path.  *Every*
    deviation from the straight-line happy path — TTL expiry on a direct
    leg, a firewall verdict other than the compiled one, a tunnel not in
    CONNECTED state, a missing destination — falls back, so the legacy
    code remains the single source of truth for rare fates.

Byte-identity contract
----------------------
The engine must be observationally indistinguishable from the legacy
path: same simulation-clock float *sequence* (four separate ``+= rtt/2``
adds per tunnelled round trip, never a pre-summed total), same capture
entries (same packet objects, same timestamps, same order), same obs
events (``packet_event`` / ``tunnel_carried`` / counter increments) at
the same clock values, same memoised derived objects (encapsulation,
echo replies, NAT rewrites) so downstream ``id()``-keyed caches and the
evidence side table keep hitting.  ``tests/test_determinism.py`` pins
this with the golden archive fingerprint, obs off and on, engine on and
off, across all executor backends.

Plan invalidation is generation-based: routing tables, firewalls, and
host service/interface configuration each carry a mutation counter, and
a plan whose recorded stamp no longer matches is recompiled before use.
Volatile booleans (interface up/down, capture enabled, tunnel state,
path blackholes) are re-read on every send.

Set ``REPRO_DELIVERY_ENGINE=off`` to disable the engine globally and run
every packet down the legacy path (used by the equivalence tests).
"""

from __future__ import annotations

import heapq
import os
from typing import TYPE_CHECKING, Optional

from repro.net.capture import CaptureEntry
from repro.net.firewall import FirewallAction
from repro.net.packet import (
    DnsPayload,
    IcmpPayload,
    Packet,
    TunnelPayload,
    UdpDatagram,
)

if TYPE_CHECKING:
    from repro.net.host import Host
    from repro.net.internet import DeliveryResult, Internet

ENGINE_ENV = "REPRO_DELIVERY_ENGINE"

_ALLOW = FirewallAction.ALLOW


def engine_enabled() -> bool:
    """Whether new :class:`Internet` instances get a delivery engine."""
    return os.environ.get(ENGINE_ENV, "").strip().lower() not in (
        "0",
        "off",
        "false",
        "no",
    )


# ----------------------------------------------------------------------
# Event queue
# ----------------------------------------------------------------------
class PacketEvent:
    """One scheduled packet delivery: an array-backed (slots) record."""

    __slots__ = ("time", "seq", "host", "packet", "result")

    def __init__(self, time: float, seq: int, host: "Host", packet: Packet):
        self.time = time
        self.seq = seq
        self.host = host
        self.packet = packet
        self.result: "Optional[DeliveryResult]" = None

    def __repr__(self) -> str:  # debugging aid only
        return f"PacketEvent(t={self.time}, seq={self.seq})"


class EventQueue:
    """A time-ordered event queue with deterministic tie-breaking.

    Entries are ``(virtual_time, sequence, event)`` tuples on a binary
    heap; ``sequence`` increases monotonically per push, so two events
    scheduled for the same virtual time pop in insertion order.  That
    FIFO-at-equal-times property is what makes batched dispatch
    byte-identical to the sequential loop it replaces.
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, PacketEvent]] = []
        self._seq = 0

    def push(self, time: float, host: "Host", packet: Packet) -> PacketEvent:
        seq = self._seq
        self._seq = seq + 1
        event = PacketEvent(time, seq, host, packet)
        heapq.heappush(self._heap, (time, seq, event))
        return event

    def pop(self) -> PacketEvent:
        return heapq.heappop(self._heap)[2]

    def peek_time(self) -> Optional[float]:
        heap = self._heap
        return heap[0][0] if heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


# ----------------------------------------------------------------------
# Flow plans
# ----------------------------------------------------------------------
_SHAPE_FALLBACK = 0  # flow cannot be fast-pathed under the current config
_SHAPE_DIRECT = 1    # one physical leg: src host -> dst host
_SHAPE_TUNNEL = 2    # two legs through a VPN tunnel (incl. in-tunnel DNS)


class FlowPlan:
    """A compiled delivery chain for one flow.

    One slots record serves all three shapes; unused fields stay None.
    ``stamp`` is the tuple of mutation generations the compilation read —
    a plan is valid only while a freshly gathered stamp compares equal.
    """

    __slots__ = (
        "shape",
        "stamp",
        # common
        "host", "src", "dst", "kind", "dst_port",
        "iface", "iface_name", "capture", "firewall",
        "src_loc", "route",
        # direct leg / inner leg destination
        "dst_host", "dst_iface", "dst_capture", "dst_loc", "hops",
        # tunnel
        "endpoint", "phys_iface", "phys_capture",
        "server", "vp_host", "vp_capture", "vp_iface", "vp_loc",
        "hops_outer", "inner_route", "inner_iface", "inner_capture",
        "nat_address", "dns_in_tunnel",
    )

    def __init__(self, shape: int, stamp: tuple) -> None:
        self.shape = shape
        self.stamp = stamp
        self.host = None
        self.src = None
        self.dst = None
        self.kind = None
        self.dst_port = None
        self.iface = None
        self.iface_name = None
        self.capture = None
        self.firewall = None
        self.src_loc = None
        self.route = None
        self.dst_host = None
        self.dst_iface = None
        self.dst_capture = None
        self.dst_loc = None
        self.hops = None
        self.endpoint = None
        self.phys_iface = None
        self.phys_capture = None
        self.server = None
        self.vp_host = None
        self.vp_capture = None
        self.vp_iface = None
        self.vp_loc = None
        self.hops_outer = None
        self.inner_route = None
        self.inner_iface = None
        self.inner_capture = None
        self.nat_address = None
        self.dns_in_tunnel = None


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class DeliveryEngine:
    """Flow-plan compiler and executor for one :class:`Internet`.

    Created by the internet it serves and dropped from pickles (a
    restored world builds a fresh, empty engine).  All caches are keyed
    by object identity with the keyed objects pinned in the entries, and
    :meth:`begin_unit` clears them at work-unit boundaries so id reuse
    can never leak state across units.
    """

    def __init__(self, internet: "Internet") -> None:
        from repro.net.internet import DeliveryResult

        self.internet = internet
        self.queue = EventQueue()
        self._DeliveryResult = DeliveryResult
        # (id(host), id(src), id(dst), kind, dst_port) -> FlowPlan
        self._plans: dict[tuple, FlowPlan] = {}
        # Pins for the objects whose ids appear in plan keys.
        self._plan_pins: dict[int, object] = {}
        # (id(firewall), generation, id(packet), direction, iface name)
        # -> bool.  Packets and firewalls are pinned by _fw_pins.
        self._fw_memo: dict[tuple, bool] = {}
        self._fw_pins: dict[int, object] = {}
        # Lazily resolved to avoid importing the vpn layer at module load
        # (net must not depend on vpn at import time).
        self._connected_state = None
        self._egress_context_cls = None
        self._dns_question_cls = None
        # Instrumentation for benchmarks/tests (not fed into obs metrics:
        # plan-cache hit counts depend on unit scheduling, and obs output
        # must stay a pure function of each unit).
        self.fast_sends = 0
        self.fallback_sends = 0
        self.plans_compiled = 0

    # ------------------------------------------------------------------
    def begin_unit(self) -> None:
        """Reset per-unit caches (called by the harness per work unit).

        Firewall verdicts are keyed by packet identity and pin their
        keys; clearing them at unit boundaries bounds the pin set
        (otherwise every packet a firewall ever judged would stay alive
        for the lifetime of the world).  Flow plans survive unit
        boundaries on purpose: they are pure derived state guarded by
        generation stamps and live identity checks, and most flows (the
        anchor set, the landmark mesh) recur in every unit — clearing
        them forced ~10k recompilations per study.  The plan table is
        size-capped in :meth:`_remember`, which bounds its pin set.
        """
        self._fw_memo.clear()
        self._fw_pins.clear()

    reset = begin_unit

    # ------------------------------------------------------------------
    # Firewall decision memo
    # ------------------------------------------------------------------
    def _fw_allows(
        self, firewall, packet: Packet, direction: str, iface_name: str
    ) -> bool:
        key = (
            id(firewall),
            firewall._generation,
            id(packet),
            direction,
            iface_name,
        )
        memo = self._fw_memo
        verdict = memo.get(key)
        if verdict is None:
            verdict = (
                firewall.evaluate(packet, direction, iface_name)
                is FirewallAction.ALLOW
            )
            if len(memo) >= 16384:
                memo.clear()
                self._fw_pins.clear()
            pins = self._fw_pins
            pins[id(firewall)] = firewall
            pins[id(packet)] = packet
            memo[key] = verdict
        return verdict

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def send(self, host: "Host", packet: Packet) -> "Optional[DeliveryResult]":
        """Fast-path one packet; ``None`` means "use the legacy path".

        Profiled as the ``delivery`` phase.  A ``None`` return re-enters
        the legacy path in ``Host.send``, which opens its own delivery
        frame — sequential frames of the same phase simply add up, so the
        handoff is never double-counted.
        """
        obs = self.internet.obs
        if obs is None:
            return self._send(host, packet, None)
        profile = obs.profile
        stages = obs.stages
        if profile is None and stages is None:
            return self._send(host, packet, None)
        if profile is not None:
            profile.enter("delivery")
        if stages is not None:
            stages.begin_send()
        try:
            return self._send(host, packet, stages)
        finally:
            if stages is not None:
                stages.end_send()
            if profile is not None:
                profile.leave()

    def _send(
        self, host: "Host", packet: Packet, stages
    ) -> "Optional[DeliveryResult]":
        payload = packet.payload
        kind = payload.kind
        if kind == "icmp":
            dst_port = 0
        elif kind == "udp" or kind == "tcp":
            dst_port = payload.dst_port
        else:
            self.fallback_sends += 1
            return None
        key = (id(host), id(packet.src), id(packet.dst), kind, dst_port)
        # The whole plan fetch/validate/compile region is one `route`
        # frame per send: billing compilation separately would make the
        # stage *count* depend on plan-cache warmth, which is
        # scheduling-dependent and must never reach the metrics.
        if stages is not None:
            stages.enter("route")
        plan = self._plans.get(key)
        if plan is None or not self._plan_valid(plan):
            plan = self._compile(host, packet, key, kind, dst_port)
        if stages is not None:
            stages.leave()
        shape = plan.shape
        if shape == _SHAPE_TUNNEL:
            result = self._run_tunnel(plan, host, packet, stages)
        elif shape == _SHAPE_DIRECT:
            result = self._run_direct(plan, host, packet, stages)
        else:
            result = None
        if result is None:
            self.fallback_sends += 1
        else:
            self.fast_sends += 1
        return result

    # ------------------------------------------------------------------
    # Stamps: the mutation generations a plan depends on
    # ------------------------------------------------------------------
    def _plan_valid(self, plan: FlowPlan) -> bool:
        """Whether a cached plan may run without recompilation.

        Generation stamps cover the mutable tables the compilation read
        (routing, firewalls, interface/service config).  Address-registry
        churn is instead checked *live* by object identity: stamping the
        global ``_topology_gen`` invalidated every plan in the world each
        time any vantage point connected, which recompiled the whole
        plan table thousands of times per study.  Two dict probes per
        send buy back all of that.

        A stale stamp does not yet mean a stale plan: tunnel churn bumps
        the client's routing/interface generations on every connect and
        disconnect, but flows that do not traverse the tunnel resolve to
        exactly the same chain afterwards.  :meth:`_revalidate` re-checks
        the handful of objects the plan actually depends on and, when
        they all still match, refreshes the stamp in place — an identity
        comparison per dependency instead of a full recompilation.
        """
        shape = plan.shape
        if shape != _SHAPE_FALLBACK:
            registry = self.internet._hosts_by_address
            if shape == _SHAPE_TUNNEL:
                if registry.get(plan.endpoint.server_address) is not plan.vp_host:
                    return False
                if (
                    plan.dst_host is not None
                    and registry.get(plan.dst) is not plan.dst_host
                ):
                    return False
            elif registry.get(plan.dst) is not plan.dst_host:
                return False
        stamp = self._current_stamp(plan)
        if plan.stamp == stamp:
            return True
        return self._revalidate(plan, stamp)

    def _revalidate(self, plan: FlowPlan, stamp: tuple) -> bool:
        """Re-check a stamp-stale plan's dependencies by identity.

        Returns True (and refreshes the stamp) when every object the
        compilation resolved — route, interfaces, destination host and
        interface, tunnel server — is still the one the plan holds, so
        the compiled chain is unchanged.  Two object swaps that VPN
        reconnects perform on every cycle are revalidated by *value*
        instead, because the replacement is behaviourally identical:

        - the default route onto the tunnel device is a fresh but
          value-equal frozen ``Route`` (compared with dataclass ``==``
          and re-pinned);
        - the ``utunN`` interface and its endpoint are rebuilt, but the
          session parameters (server address, tunnel addresses,
          protocol, physical interface) are constants of the vantage
          point — :meth:`_session_equivalent` verifies them, then the
          plan is rebound to the new interface and endpoint objects.

        Any other mismatch forces a real recompile.
        """
        shape = plan.shape
        if shape == _SHAPE_FALLBACK:
            return False
        host = plan.host
        route = host.routing.lookup(plan.dst)
        if route is not plan.route:
            if route != plan.route:
                return False
            plan.route = route
        new_iface = host.interfaces.get(plan.iface_name)
        if new_iface is not plan.iface and shape == _SHAPE_DIRECT:
            return False
        dst_host = plan.dst_host
        if shape == _SHAPE_DIRECT:
            if (
                dst_host.interface_for_address(plan.dst) is not plan.dst_iface
                or self._firewall_active(dst_host.firewall)
            ):
                return False
            plan.stamp = stamp
            return True
        # Tunnel shape.
        endpoint = plan.endpoint
        if new_iface is not plan.iface:
            if new_iface is None or not new_iface.is_tunnel:
                return False
            rebound = new_iface.endpoint
            if rebound is None or not self._session_equivalent(
                endpoint, rebound
            ):
                return False
            self._rebind_tunnel_plan(plan, new_iface, rebound)
            endpoint = rebound
        if plan.iface.endpoint is not endpoint:
            return False
        if host.interfaces.get(endpoint.physical_interface) is not plan.phys_iface:
            return False
        vp_host = plan.vp_host
        handler = vp_host._services.get(("tunnel", 0))
        if getattr(handler, "__self__", None) is not plan.server:
            return False
        if self._firewall_active(vp_host.firewall):
            return False
        if (
            vp_host.interface_for_address(endpoint.server_address)
            is not plan.vp_iface
        ):
            return False
        if plan.dns_in_tunnel:
            if plan.dst != plan.server.resolver_address:
                return False
            plan.stamp = stamp
            return True
        server = plan.server
        nat = (
            server.egress_address_v6
            if plan.dst.version == 6
            else server.egress_address
        )
        if nat is not plan.nat_address:
            return False
        if plan.nat_address is None:
            plan.stamp = stamp
            return True
        inner_route = vp_host.routing.lookup(plan.dst)
        if inner_route is not plan.inner_route:
            if inner_route != plan.inner_route:
                return False
            plan.inner_route = inner_route
        if vp_host.interfaces.get(plan.inner_route.interface) is not plan.inner_iface:
            return False
        if (
            dst_host.interface_for_address(plan.dst) is not plan.dst_iface
            or self._firewall_active(dst_host.firewall)
        ):
            return False
        plan.stamp = stamp
        return True

    @staticmethod
    def _session_equivalent(old, new) -> bool:
        """True when a rebuilt tunnel endpoint reproduces the old session.

        Every value a compiled tunnel plan bakes in — encapsulation
        addresses, protocol name, physical egress — must be equal; the
        endpoint objects themselves may be fresh, as they are on every
        VPN reconnect.
        """
        return (
            new.physical_interface == old.physical_interface
            and new.server_address == old.server_address
            and new.client_tunnel_address == old.client_tunnel_address
            and new.client_tunnel_address_v6 == old.client_tunnel_address_v6
            and new.protocol.name == old.protocol.name
        )

    @staticmethod
    def _rebind_tunnel_plan(plan: FlowPlan, iface, endpoint) -> None:
        """Point a tunnel plan at a session-equivalent rebuilt interface.

        The new ``utunN`` interface carries a fresh capture object;
        future sends must record onto the live one.
        """
        plan.iface = iface
        plan.endpoint = endpoint
        plan.capture = iface.capture

    def _current_stamp(self, plan: FlowPlan) -> tuple:
        host = plan.host
        shape = plan.shape
        if shape == _SHAPE_DIRECT:
            dst_host = plan.dst_host
            return (
                host.routing._generation,
                host.firewall._generation,
                host._config_gen,
                dst_host.firewall._generation,
                dst_host._config_gen,
            )
        if shape == _SHAPE_TUNNEL:
            vp_host = plan.vp_host
            dst_host = plan.dst_host
            return (
                host.routing._generation,
                host.firewall._generation,
                host._config_gen,
                vp_host.routing._generation,
                vp_host.firewall._generation,
                vp_host._config_gen,
                dst_host.firewall._generation if dst_host is not None else -1,
                dst_host._config_gen if dst_host is not None else -1,
            )
        # Fallback plans re-examine the flow when anything about the
        # sending host (or global topology, which may have granted the
        # flow a destination) changes.
        return (
            self.internet._topology_gen,
            host.routing._generation,
            host.firewall._generation,
            host._config_gen,
        )

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def _fallback(self, host: "Host", key: tuple) -> FlowPlan:
        plan = FlowPlan(_SHAPE_FALLBACK, ())
        plan.host = host
        plan.stamp = self._current_stamp(plan)
        self._remember(key, plan, host)
        return plan

    def _remember(self, key: tuple, plan: FlowPlan, host: "Host") -> None:
        plans = self._plans
        if len(plans) >= 4096:
            plans.clear()
            self._plan_pins.clear()
        plans[key] = plan
        pins = self._plan_pins
        pins[key[0]] = host
        pins[key[1]] = plan.src
        pins[key[2]] = plan.dst

    def _compile(
        self,
        host: "Host",
        packet: Packet,
        key: tuple,
        kind: str,
        dst_port: int,
    ) -> FlowPlan:
        self.plans_compiled += 1
        internet = self.internet
        dst = packet.dst
        route = host.routing.lookup(dst)
        if route is None:
            plan = FlowPlan(_SHAPE_FALLBACK, ())
            plan.host = host
            plan.src = packet.src
            plan.dst = dst
            plan.stamp = self._current_stamp(plan)
            self._remember(key, plan, host)
            return plan
        iface = host.interfaces.get(route.interface)
        if iface is None:
            plan = FlowPlan(_SHAPE_FALLBACK, ())
            plan.host = host
            plan.src = packet.src
            plan.dst = dst
            plan.stamp = self._current_stamp(plan)
            self._remember(key, plan, host)
            return plan
        if iface.is_tunnel and iface.endpoint is not None:
            plan = self._compile_tunnel(
                host, packet, key, kind, dst_port, iface
            )
        else:
            plan = self._compile_direct(
                host, packet, key, kind, dst_port, iface
            )
        if plan.shape != _SHAPE_FALLBACK:
            plan.route = route
        return plan

    def _firewall_active(self, firewall) -> bool:
        return bool(
            firewall._rules or firewall.default is not FirewallAction.ALLOW
        )

    def _compile_direct(
        self,
        host: "Host",
        packet: Packet,
        key: tuple,
        kind: str,
        dst_port: int,
        iface,
    ) -> FlowPlan:
        internet = self.internet
        dst = packet.dst
        plan = FlowPlan(_SHAPE_DIRECT, ())
        plan.host = host
        plan.src = packet.src
        plan.dst = dst
        plan.kind = kind
        plan.dst_port = dst_port
        dst_host = internet._hosts_by_address.get(dst)
        if dst_host is None or self._firewall_active(dst_host.firewall):
            # Missing destinations and filtering receivers keep legacy
            # semantics; the stamp re-examines the flow if topology or the
            # receiver's firewall changes.
            plan.shape = _SHAPE_FALLBACK
            plan.stamp = self._current_stamp(plan)
            self._remember(key, plan, host)
            return plan
        plan.dst_host = dst_host
        plan.iface = iface
        plan.iface_name = iface.name
        plan.capture = iface.capture
        plan.firewall = host.firewall
        plan.src_loc = host.location
        plan.dst_loc = dst_host.location
        plan.hops = internet.latency._pair_stats(
            plan.src_loc, plan.dst_loc
        )[1]
        dst_iface = dst_host.interface_for_address(dst)
        plan.dst_iface = dst_iface
        plan.dst_capture = dst_iface.capture if dst_iface is not None else None
        plan.stamp = self._current_stamp(plan)
        self._remember(key, plan, host)
        return plan

    def _compile_tunnel(
        self,
        host: "Host",
        packet: Packet,
        key: tuple,
        kind: str,
        dst_port: int,
        iface,
    ) -> FlowPlan:
        internet = self.internet
        dst = packet.dst

        def bail() -> FlowPlan:
            plan = FlowPlan(_SHAPE_FALLBACK, ())
            plan.host = host
            plan.src = packet.src
            plan.dst = dst
            plan.stamp = self._current_stamp(plan)
            self._remember(key, plan, host)
            return plan

        endpoint = iface.endpoint
        if self._connected_state is None:
            from repro.dns.message import DnsQuestion
            from repro.vpn.behaviors import EgressContext
            from repro.vpn.tunnel import TunnelState

            self._connected_state = TunnelState.CONNECTED
            self._egress_context_cls = EgressContext
            self._dns_question_cls = DnsQuestion
        if (
            getattr(endpoint, "host", None) is not host
            or endpoint.state is not self._connected_state
        ):
            return bail()
        phys_iface = host.interfaces.get(endpoint.physical_interface)
        if phys_iface is None:
            return bail()
        vp_host = internet._hosts_by_address.get(endpoint.server_address)
        if vp_host is None:
            return bail()
        handler = vp_host._services.get(("tunnel", 0))
        server = getattr(handler, "__self__", None)
        if (
            server is None
            or not getattr(server, "engine_tunnel_contract", False)
            or server.host is not vp_host
            or self._firewall_active(vp_host.firewall)
            or vp_host.packet_tap is not None
        ):
            return bail()
        vp_iface = vp_host.interface_for_address(endpoint.server_address)
        if vp_iface is None:
            return bail()

        plan = FlowPlan(_SHAPE_TUNNEL, ())
        plan.vp_iface = vp_iface
        plan.host = host
        plan.src = packet.src
        plan.dst = dst
        plan.kind = kind
        plan.dst_port = dst_port
        plan.iface = iface
        plan.iface_name = iface.name
        plan.capture = iface.capture
        plan.firewall = host.firewall
        plan.endpoint = endpoint
        plan.phys_iface = phys_iface
        plan.phys_capture = phys_iface.capture
        plan.server = server
        plan.vp_host = vp_host
        plan.vp_capture = vp_iface.capture
        plan.src_loc = host.location
        plan.vp_loc = vp_host.location
        plan.hops_outer = internet.latency._pair_stats(
            plan.src_loc, plan.vp_loc
        )[1]

        if dst == server.resolver_address:
            # In-tunnel DNS terminates at the vantage point itself.
            plan.dns_in_tunnel = True
            plan.dst_host = None
            plan.stamp = self._current_stamp(plan)
            self._remember(key, plan, host)
            return plan
        plan.dns_in_tunnel = False

        # Inner (egress) leg: the vantage point forwards the NATed packet.
        version = getattr(dst, "version", None)
        if version is None:
            return bail()
        nat = (
            server.egress_address_v6 if version == 6 else server.egress_address
        )
        if nat is None:
            # v4-only vantage point with a v6 inner destination: legacy
            # returns empty responses from _egress; model it inline.
            plan.nat_address = None
            plan.dst_host = None
            plan.stamp = self._current_stamp(plan)
            self._remember(key, plan, host)
            return plan
        plan.nat_address = nat
        inner_route = vp_host.routing.lookup(dst)
        if inner_route is None:
            return bail()
        plan.inner_route = inner_route
        inner_iface = vp_host.interfaces.get(inner_route.interface)
        if inner_iface is None or inner_iface.is_tunnel:
            return bail()
        dst_host = internet._hosts_by_address.get(dst)
        if (
            dst_host is None
            or self._firewall_active(dst_host.firewall)
        ):
            return bail()
        plan.inner_iface = inner_iface
        plan.inner_capture = inner_iface.capture
        plan.dst_host = dst_host
        plan.dst_loc = dst_host.location
        plan.hops = internet.latency._pair_stats(
            plan.vp_loc, plan.dst_loc
        )[1]
        dst_iface = dst_host.interface_for_address(dst)
        plan.dst_iface = dst_iface
        plan.dst_capture = dst_iface.capture if dst_iface is not None else None
        plan.stamp = self._current_stamp(plan)
        self._remember(key, plan, host)
        return plan

    # ------------------------------------------------------------------
    # Shared receive-side dispatch (the destination host's half)
    # ------------------------------------------------------------------
    def _dispatch(
        self,
        plan: FlowPlan,
        dst_host: "Host",
        delivered: Packet,
        kind: str,
        dst_port: int,
        stages=None,
    ) -> Optional[list[Packet]]:
        """Inline of ``Host.receive`` minus the pre-validated guards.

        The caller has already established: destination firewall inactive,
        ``packet_tap`` unset, and the rx capture entry recorded.  Returns
        the handler responses exactly as ``receive`` would (``None`` for
        silently dropped packets).
        """
        dst_iface = plan.dst_iface
        if kind == "icmp":
            payload = delivered.payload
            if payload.icmp_type != "echo_request":
                return None
            reply = delivered.__dict__.get("_echo_reply")
            if reply is None:
                reply = Packet(
                    src=delivered.dst,
                    dst=delivered.src,
                    payload=IcmpPayload(
                        icmp_type="echo_reply",
                        identifier=payload.identifier,
                        sequence=payload.sequence,
                    ),
                )
                object.__setattr__(delivered, "_echo_reply", reply)
            self._record_tx(dst_host, dst_iface, reply, stages)
            return [reply]
        handler = dst_host._services.get((kind, dst_port))
        if handler is None:
            reply = Packet(
                src=delivered.dst,
                dst=delivered.src,
                payload=IcmpPayload(icmp_type="port_unreachable"),
            )
            self._record_tx(dst_host, dst_iface, reply, stages)
            return [reply]
        responses = handler(delivered, dst_host) or []
        for response in responses:
            src = response.src
            self._record_tx(
                dst_host,
                dst_iface
                if src is delivered.dst
                else dst_host.interface_for_address(src),
                response,
                stages,
            )
        return responses

    def _record_tx(
        self, host: "Host", interface, packet: Packet, stages=None
    ) -> None:
        if interface is not None:
            capture = interface.capture
            if capture.enabled:
                if stages is not None:
                    stages.enter("capture")
                capture.entries.append(
                    CaptureEntry(
                        self.internet.clock_ms,
                        "tx",
                        capture.interface,
                        packet,
                    )
                )
                if stages is not None:
                    stages.leave()

    # ------------------------------------------------------------------
    # Replay of recorded ICMP deliveries
    # ------------------------------------------------------------------
    # ------------------------------------------------------------------
    # Direct shape
    # ------------------------------------------------------------------
    def _run_direct(
        self, plan: FlowPlan, host: "Host", packet: Packet, stages=None
    ) -> "Optional[DeliveryResult]":
        internet = self.internet
        iface = plan.iface
        if not iface.up:
            return None
        dst_host = plan.dst_host
        dst_firewall = dst_host.firewall
        if (
            dst_host.packet_tap is not None
            or dst_firewall._rules
            or dst_firewall.default is not _ALLOW
        ):
            return None
        if packet.ttl <= plan.hops:
            return None  # TTL expiry (traceroute) keeps the legacy path
        blackholes = internet._blackholes
        if blackholes and (host.name, packet.dst) in blackholes:
            return None
        firewall = plan.firewall
        fw_active = (
            bool(firewall._rules) or firewall.default is not _ALLOW
        )
        iface_name = plan.iface_name
        if fw_active:
            if stages is not None:
                stages.enter("firewall")
            permitted = self._fw_allows(firewall, packet, "out", iface_name)
            if stages is not None:
                stages.leave()
            if not permitted:
                return None

        obs = internet.obs
        capture = plan.capture
        if capture.enabled:
            if stages is not None:
                stages.enter("capture")
            capture.entries.append(
                CaptureEntry(
                    internet.clock_ms, "tx", capture.interface, packet
                )
            )
            if stages is not None:
                stages.leave()
        if stages is not None:
            stages.enter("latency")
        sample = packet.__dict__.get("_jitter_sample")
        if sample is None:
            sample = internet._jitter_sample(packet)
        rtt = internet.latency.rtt_ms(plan.src_loc, plan.dst_loc, sample)
        half = rtt / 2.0
        internet.clock_ms += half
        delivered = packet.__dict__.get("_dec")
        if delivered is None:
            delivered = packet.decrement_ttl()
        if stages is not None:
            stages.leave()
        rx_capture = plan.dst_capture
        if rx_capture is not None and rx_capture.enabled:
            if stages is not None:
                stages.enter("capture")
            rx_capture.entries.append(
                CaptureEntry(
                    internet.clock_ms, "rx", rx_capture.interface, delivered
                )
            )
            if stages is not None:
                stages.leave()
        if stages is not None:
            stages.enter("dispatch")
        responses = self._dispatch(
            plan, dst_host, delivered, plan.kind, plan.dst_port, stages
        )
        if stages is not None:
            stages.leave()
        if responses is None:
            responses = []
        internet.clock_ms += half
        if obs is not None:
            obs.packet_event(host.name, packet, "delivered")
        result = self._DeliveryResult(
            packet=packet, status="delivered", rtt_ms=rtt, responses=responses
        )
        if responses:
            clock_ms = internet.clock_ms
            record_rx = capture.enabled
            for response in responses:
                if fw_active:
                    if stages is not None:
                        stages.enter("firewall")
                    permitted = self._fw_allows(
                        firewall, response, "in", iface_name
                    )
                    if stages is not None:
                        stages.leave()
                    if not permitted:
                        continue
                if record_rx:
                    if stages is not None:
                        stages.enter("capture")
                    capture.entries.append(
                        CaptureEntry(
                            clock_ms, "rx", capture.interface, response
                        )
                    )
                    if stages is not None:
                        stages.leave()
        return result

    # ------------------------------------------------------------------
    # Tunnel shape
    # ------------------------------------------------------------------
    def _run_tunnel(
        self, plan: FlowPlan, host: "Host", packet: Packet, stages=None
    ) -> "Optional[DeliveryResult]":
        internet = self.internet
        endpoint = plan.endpoint
        if endpoint.state is not self._connected_state:
            return None
        iface = plan.iface
        phys = plan.phys_iface
        if not iface.up or not phys.up:
            return None
        vp_host = plan.vp_host
        vp_firewall = vp_host.firewall
        if (
            plan.vp_capture.enabled
            or vp_host.packet_tap is not None
            or vp_firewall._rules
            or vp_firewall.default is not _ALLOW
        ):
            return None
        dst_host = plan.dst_host
        dns_in_tunnel = plan.dns_in_tunnel
        if dst_host is not None:
            dst_firewall = dst_host.firewall
            if (
                dst_host.packet_tap is not None
                or dst_firewall._rules
                or dst_firewall.default is not _ALLOW
                or plan.inner_capture.enabled
                or not plan.inner_iface.up
            ):
                return None

        firewall = plan.firewall
        fw_active = (
            bool(firewall._rules) or firewall.default is not _ALLOW
        )
        blackholes = internet._blackholes
        if blackholes:
            # The encapsulated packet's destination is always the tunnel
            # server address, so both legacy blackhole checks can run
            # before encapsulation.
            if (host.name, endpoint.server_address) in blackholes:
                return None
            if dst_host is not None and (vp_host.name, packet.dst) in blackholes:
                return None

        obs = internet.obs
        server = plan.server
        if stages is not None:
            stages.enter("encap")
        outer = endpoint._encapsulate(packet)
        if stages is not None:
            stages.leave()
        if fw_active:
            # Both legacy checkpoints: the inner packet leaving the tunnel
            # device, and the encapsulated packet leaving the physical one.
            if stages is not None:
                stages.enter("firewall")
            permitted = self._fw_allows(
                firewall, packet, "out", plan.iface_name
            ) and self._fw_allows(firewall, outer, "out", phys.name)
            if stages is not None:
                stages.leave()
            if not permitted:
                return None

        capture = plan.capture
        phys_capture = plan.phys_capture
        clock_start = internet.clock_ms
        if capture.enabled:
            if stages is not None:
                stages.enter("capture")
            capture.entries.append(
                CaptureEntry(clock_start, "tx", capture.interface, packet)
            )
            if stages is not None:
                stages.leave()
        if phys_capture.enabled:
            if stages is not None:
                stages.enter("capture")
            phys_capture.entries.append(
                CaptureEntry(clock_start, "tx", phys_capture.interface, outer)
            )
            if stages is not None:
                stages.leave()

        # ---- outer leg out: client -> vantage point ------------------
        if stages is not None:
            stages.enter("latency")
        sample_o = outer.__dict__.get("_jitter_sample")
        if sample_o is None:
            sample_o = internet._jitter_sample(outer)
        latency = internet.latency
        rtt_o = latency.rtt_ms(plan.src_loc, plan.vp_loc, sample_o)
        half_o = rtt_o / 2.0
        internet.clock_ms += half_o
        delivered_outer = outer.__dict__.get("_dec")
        if delivered_outer is None:
            delivered_outer = outer.decrement_ttl()
        if stages is not None:
            stages.leave()
        tunnel_payload = delivered_outer.payload
        inner = tunnel_payload.inner
        server.sessions_served += 1

        # ---- vantage-point side --------------------------------------
        if stages is not None:
            stages.enter("dispatch")
        if dns_in_tunnel:
            outer_responses = self._answer_dns_inline(
                server, delivered_outer, tunnel_payload, inner
            )
        elif plan.nat_address is None:
            outer_responses = []  # v6 inner with a v4-only egress
        else:
            outer_responses = self._egress_inline(
                plan, server, delivered_outer, tunnel_payload, inner, obs,
                stages,
            )
        if stages is not None:
            stages.leave()

        # ---- outer leg back: vantage point -> client -----------------
        internet.clock_ms += half_o
        if obs is not None:
            obs.packet_event(host.name, outer, "delivered")
        endpoint.consecutive_failures = 0
        endpoint.carried_packets += 1
        if obs is not None:
            obs.tunnel_carried()

        inner_responses: list[Packet] = []
        record_rx = phys_capture.enabled
        clock_end = internet.clock_ms
        for response in outer_responses:
            if record_rx:
                if stages is not None:
                    stages.enter("capture")
                phys_capture.entries.append(
                    CaptureEntry(
                        clock_end, "rx", phys_capture.interface, response
                    )
                )
                if stages is not None:
                    stages.leave()
            inner_responses.append(response.payload.inner)
        result = self._DeliveryResult(
            packet=packet,
            status="delivered",
            rtt_ms=rtt_o,
            responses=inner_responses,
        )
        if inner_responses:
            record = capture.enabled
            iface_name = plan.iface_name
            for response in inner_responses:
                if fw_active:
                    if stages is not None:
                        stages.enter("firewall")
                    permitted = self._fw_allows(
                        firewall, response, "in", iface_name
                    )
                    if stages is not None:
                        stages.leave()
                    if not permitted:
                        continue
                if record:
                    if stages is not None:
                        stages.enter("capture")
                    capture.entries.append(
                        CaptureEntry(
                            clock_end, "rx", capture.interface, response
                        )
                    )
                    if stages is not None:
                        stages.leave()
        return result

    def _answer_dns_inline(
        self,
        server,
        delivered_outer: Packet,
        tunnel_payload: TunnelPayload,
        inner: Packet,
    ) -> list[Packet]:
        """Inline of ``VantagePointServer._answer_dns`` (+ re-encap)."""
        datagram = inner.payload
        if not isinstance(datagram, UdpDatagram) or datagram.dst_port != 53:
            return []
        dns = datagram.payload
        if not isinstance(dns, DnsPayload) or dns.is_response:
            return []
        question = self._dns_question_cls(qname=dns.qname, qtype=dns.qtype)
        response = server.resolver.answer(
            question, source=str(server.egress_address)
        )
        reply_inner = Packet(
            src=inner.dst,
            dst=inner.src,
            payload=UdpDatagram(
                src_port=53,
                dst_port=datagram.src_port,
                payload=DnsPayload(
                    qname=dns.qname,
                    qtype=dns.qtype,
                    is_response=True,
                    rcode=response.rcode.value,
                    answers=response.addresses,
                    txid=dns.txid,
                ),
            ),
        )
        return [
            Packet(
                src=delivered_outer.dst,
                dst=delivered_outer.src,
                payload=TunnelPayload(
                    protocol=tunnel_payload.protocol,
                    inner=reply_inner,
                    cipher=tunnel_payload.cipher,
                ),
            )
        ]

    def _egress_inline(
        self,
        plan: FlowPlan,
        server,
        delivered_outer: Packet,
        tunnel_payload: TunnelPayload,
        inner: Packet,
        obs,
        stages=None,
    ) -> list[Packet]:
        """Inline of ``VantagePointServer._egress`` + the inner delivery.

        The inner leg re-implements ``vp_host.send`` → ``deliver`` →
        ``dst_host.receive`` with the vantage point's (pre-validated)
        inactive firewall and disabled captures elided.  TTL expiry on
        the inner path is reproduced exactly, including the legacy
        ``_egress`` quirk of discarding the time-exceeded responses
        (``outcome.ok`` is false there).
        """
        internet = self.internet
        client_tunnel_address = inner.src
        outbound = inner.with_src(plan.nat_address)
        behaviors = server.behaviors
        context = None
        if behaviors:
            context = self._egress_context_cls(
                provider_name=server.provider_name,
                vantage_country=server.claimed_country,
                outbound=outbound,
            )
            for behavior in behaviors:
                behavior.on_request(context)
                if context.synthetic_response is not None:
                    synthetic = context.synthetic_response.with_dst(
                        client_tunnel_address
                    )
                    return [
                        self._encapsulate_back(
                            delivered_outer, tunnel_payload, synthetic
                        )
                    ]
            outbound = context.outbound

        vp_host = plan.vp_host
        latency = internet.latency
        if outbound.ttl <= plan.hops:
            # Inner-path TTL expiry (tunnelled traceroute): full RTT
            # fraction on the clock, a ttl_exceeded event, and — exactly
            # as the legacy `_egress` does — no responses returned.
            hop_index = outbound.ttl
            if stages is not None:
                stages.enter("latency")
            fraction = hop_index / max(1, plan.hops)
            sample = outbound.__dict__.get("_jitter_sample")
            if sample is None:
                sample = internet._jitter_sample(outbound)
            rtt = latency.rtt_ms(plan.vp_loc, plan.dst_loc, sample) * fraction
            internet.clock_ms += rtt
            if stages is not None:
                stages.leave()
            if obs is not None:
                router_addr = internet._router_at(
                    vp_host, plan.dst_host, hop_index, plan.hops
                )[0]
                obs.packet_event(
                    vp_host.name, outbound, "ttl_exceeded", str(router_addr)
                )
            return []

        if stages is not None:
            stages.enter("latency")
        sample_i = outbound.__dict__.get("_jitter_sample")
        if sample_i is None:
            sample_i = internet._jitter_sample(outbound)
        rtt_i = latency.rtt_ms(plan.vp_loc, plan.dst_loc, sample_i)
        half_i = rtt_i / 2.0
        internet.clock_ms += half_i
        delivered_inner = outbound.__dict__.get("_dec")
        if delivered_inner is None:
            delivered_inner = outbound.decrement_ttl()
        if stages is not None:
            stages.leave()
        rx_capture = plan.dst_capture
        if rx_capture is not None and rx_capture.enabled:
            if stages is not None:
                stages.enter("capture")
            rx_capture.entries.append(
                CaptureEntry(
                    internet.clock_ms,
                    "rx",
                    rx_capture.interface,
                    delivered_inner,
                )
            )
            if stages is not None:
                stages.leave()
        if stages is not None:
            stages.enter("dispatch")
        responses = self._dispatch(
            plan, plan.dst_host, delivered_inner, plan.kind, plan.dst_port,
            stages,
        )
        if stages is not None:
            stages.leave()
        internet.clock_ms += half_i
        if obs is not None:
            obs.packet_event(vp_host.name, outbound, "delivered")
        if not responses:
            return []
        outer_responses = []
        if stages is not None:
            stages.enter("encap")
        if behaviors:
            for response in responses:
                for behavior in behaviors:
                    response = behavior.on_response(context, response)
                outer_responses.append(
                    self._encapsulate_back(
                        delivered_outer,
                        tunnel_payload,
                        response.with_dst(client_tunnel_address),
                    )
                )
        else:
            for response in responses:
                outer_responses.append(
                    self._encapsulate_back(
                        delivered_outer,
                        tunnel_payload,
                        response.with_dst(client_tunnel_address),
                    )
                )
        if stages is not None:
            stages.leave()
        return outer_responses

    @staticmethod
    def _encapsulate_back(
        delivered_outer: Packet,
        tunnel_payload: TunnelPayload,
        inner_response: Packet,
    ) -> Packet:
        return Packet(
            src=delivered_outer.dst,
            dst=delivered_outer.src,
            payload=TunnelPayload(
                protocol=tunnel_payload.protocol,
                inner=inner_response,
                cipher=tunnel_payload.cipher,
            ),
        )
