"""Packet capture.

Every :class:`~repro.net.interface.Interface` owns a :class:`Capture` that
records the packets it transmits and receives, timestamped on the simulation
clock.  The leakage tests (paper Section 5.3.3) and the P2P analysis (Section
6.6) work purely by scanning these captures, just as the real suite scanned
tcpdump output on the hardware interface.

When the stage profiler is on (``ObsConfig(stage_profile=True)``), time
spent appending capture entries on the delivery hot paths is attributed to
the ``capture`` stage (see ``repro.obs.stages``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.net.packet import (
    DnsPayload,
    Packet,
    innermost_payload,
)


@dataclass(slots=True)
class CaptureEntry:
    """A single captured packet with capture metadata.

    A plain slots dataclass (not frozen): entries are created once per
    delivered packet on the hot path, and the frozen-dataclass ``__init__``
    (one ``object.__setattr__`` per field) costs several times a plain
    slotted store.  Nothing mutates or hashes entries.
    """

    timestamp_ms: float
    direction: str  # "tx" | "rx"
    interface: str
    packet: Packet

    def describe(self) -> str:
        return (
            f"[{self.timestamp_ms:10.3f}ms {self.interface} "
            f"{self.direction}] {self.packet.describe()}"
        )


@dataclass
class Capture:
    """An append-only packet log for one interface."""

    interface: str
    entries: list[CaptureEntry] = field(default_factory=list)
    enabled: bool = True

    def record(
        self, timestamp_ms: float, direction: str, packet: Packet
    ) -> None:
        if not self.enabled:
            return
        self.entries.append(
            CaptureEntry(
                timestamp_ms=timestamp_ms,
                direction=direction,
                interface=self.interface,
                packet=packet,
            )
        )

    def clear(self) -> None:
        self.entries.clear()

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[CaptureEntry]:
        return iter(self.entries)

    # ------------------------------------------------------------------
    # Query helpers used by the leakage analyses.
    # ------------------------------------------------------------------
    def filter(
        self, predicate: Callable[[CaptureEntry], bool]
    ) -> list[CaptureEntry]:
        return [entry for entry in self.entries if predicate(entry)]

    def transmitted(self) -> list[CaptureEntry]:
        return self.filter(lambda e: e.direction == "tx")

    def received(self) -> list[CaptureEntry]:
        return self.filter(lambda e: e.direction == "rx")

    def non_tunnel(self) -> list[CaptureEntry]:
        """Packets that are NOT encapsulated in a VPN tunnel.

        These are exactly the packets an in-path observer can read — the raw
        material of every leakage detection.
        """
        return self.filter(lambda e: e.packet.payload.kind != "tunnel")

    def dns_queries(self, plaintext_only: bool = True) -> list[CaptureEntry]:
        """Captured DNS queries; by default only un-tunnelled (leaked) ones."""
        source = self.non_tunnel() if plaintext_only else self.entries
        result = []
        for entry in source:
            payload = innermost_payload(entry.packet)
            if isinstance(payload, DnsPayload) and not payload.is_response:
                result.append(entry)
        return result

    def ipv6_packets(self, plaintext_only: bool = True) -> list[CaptureEntry]:
        """Captured IPv6 packets; by default only un-tunnelled (leaked) ones."""
        source = self.non_tunnel() if plaintext_only else self.entries
        return [e for e in source if e.packet.version == 6]

    def to_bytes(self) -> bytes:
        """Serialise the capture (one encoded packet per line)."""
        lines = []
        for entry in self.entries:
            prefix = f"{entry.timestamp_ms:.3f}\t{entry.direction}\t".encode()
            lines.append(prefix + entry.packet.encode())
        return b"\n".join(lines)

    @classmethod
    def from_bytes(cls, interface: str, data: bytes) -> "Capture":
        capture = cls(interface=interface)
        if not data:
            return capture
        for line in data.split(b"\n"):
            ts_raw, direction_raw, packet_raw = line.split(b"\t", 2)
            capture.entries.append(
                CaptureEntry(
                    timestamp_ms=float(ts_raw),
                    direction=direction_raw.decode(),
                    interface=interface,
                    packet=Packet.decode(packet_raw),
                )
            )
        return capture


def merge_captures(captures: list[Capture]) -> list[CaptureEntry]:
    """Merge several captures into one timeline, ordered by timestamp."""
    merged: list[CaptureEntry] = []
    for capture in captures:
        merged.extend(capture.entries)
    merged.sort(key=lambda e: e.timestamp_ms)
    return merged
