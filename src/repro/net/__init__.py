"""Simulated internet substrate.

This subpackage provides the network layer every other component is built on:
IP addressing, a layered packet model, interfaces with packet capture,
longest-prefix-match routing, a geographic latency model, firewalls, hosts,
and the :class:`~repro.net.internet.Internet` topology that delivers packets
between hosts with realistic RTTs and TTL (traceroute) semantics.

Nothing in here touches a real socket: the substrate is deterministic and
fully in-process so the measurement suite above it can be tested exactly.
"""

from repro.net.addresses import (
    IPv4Address,
    IPv4Network,
    IPv6Address,
    IPv6Network,
    aggregate_cidrs,
    ip_in_network,
    parse_address,
    parse_network,
)
from repro.net.capture import Capture, CaptureEntry
from repro.net.firewall import Firewall, FirewallAction, FirewallRule
from repro.net.geo import (
    CITY_COORDINATES,
    GeoPoint,
    city_location,
    country_centroid,
    great_circle_km,
)
from repro.net.host import Host, Socket
from repro.net.interface import Interface
from repro.net.internet import DeliveryResult, Internet, PingResult, TracerouteHop
from repro.net.latency import LatencyModel
from repro.net.packet import (
    DnsPayload,
    HttpPayload,
    IcmpPayload,
    Packet,
    RawPayload,
    TcpSegment,
    TlsPayload,
    TunnelPayload,
    UdpDatagram,
)
from repro.net.routing import Route, RoutingTable

__all__ = [
    "IPv4Address",
    "IPv4Network",
    "IPv6Address",
    "IPv6Network",
    "aggregate_cidrs",
    "ip_in_network",
    "parse_address",
    "parse_network",
    "Capture",
    "CaptureEntry",
    "Firewall",
    "FirewallAction",
    "FirewallRule",
    "CITY_COORDINATES",
    "GeoPoint",
    "city_location",
    "country_centroid",
    "great_circle_km",
    "Host",
    "Socket",
    "Interface",
    "DeliveryResult",
    "Internet",
    "PingResult",
    "TracerouteHop",
    "LatencyModel",
    "DnsPayload",
    "HttpPayload",
    "IcmpPayload",
    "Packet",
    "RawPayload",
    "TcpSegment",
    "TlsPayload",
    "TunnelPayload",
    "UdpDatagram",
    "Route",
    "RoutingTable",
]
