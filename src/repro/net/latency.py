"""The RTT model.

One-way latency between two points is modelled as::

    latency_ms = base + distance_km / (0.66 * c_km_per_ms) * path_stretch
                 + per_hop * hops + jitter

i.e. propagation at two-thirds of the speed of light in fibre, inflated by a
path-stretch factor (real routes are not great circles), plus fixed per-hop
forwarding cost and a small deterministic jitter.  The constants are chosen so
that typical intra-European pings land under 10 ms and transatlantic pings in
the 70–120 ms band, matching the ranges the paper relies on for its
co-location inference (e.g. Avira's 'US' endpoint pinging Germany in <9 ms
while real US hosts answer in 113–173 ms).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.net.geo import GeoPoint

# Speed of light in vacuum is ~299.79 km/ms; in fibre ~0.66 c.
_FIBRE_KM_PER_MS = 299.79 * 0.66


@dataclass(frozen=True)
class LatencyModel:
    """Deterministic geographic latency model.

    Parameters
    ----------
    base_ms:
        Fixed one-way overhead (serialisation, last mile).
    path_stretch:
        Multiplier on great-circle distance to account for indirect routing.
    per_hop_ms:
        Forwarding delay added per router hop.
    jitter_ms:
        Peak-to-peak deterministic jitter; the actual offset for a pair of
        endpoints is a stable hash of their coordinates so repeated pings
        between the same endpoints vary reproducibly.
    """

    base_ms: float = 0.35
    path_stretch: float = 1.35
    per_hop_ms: float = 0.12
    jitter_ms: float = 0.25

    def propagation_ms(self, a: GeoPoint, b: GeoPoint) -> float:
        """One-way propagation delay between two points, jitter-free."""
        distance = a.distance_km(b)
        return self.base_ms + (distance * self.path_stretch) / _FIBRE_KM_PER_MS

    def hops_between(self, a: GeoPoint, b: GeoPoint) -> int:
        """Plausible router hop count, growing with distance."""
        distance = a.distance_km(b)
        if distance < 50.0:
            return 3
        # ~1 hop per 600 km after the first few.
        return 4 + int(distance // 600.0)

    def one_way_ms(self, a: GeoPoint, b: GeoPoint, sample: int = 0) -> float:
        """One-way latency including per-hop cost and deterministic jitter.

        ``sample`` selects among jitter realisations so that repeated probes
        between the same endpoints are not byte-identical.
        """
        hops = self.hops_between(a, b)
        jitter = self._jitter(a, b, sample)
        return self.propagation_ms(a, b) + hops * self.per_hop_ms + jitter

    def rtt_ms(self, a: GeoPoint, b: GeoPoint, sample: int = 0) -> float:
        """Round-trip time between two points."""
        return self.one_way_ms(a, b, sample) + self.one_way_ms(b, a, sample + 1)

    def _jitter(self, a: GeoPoint, b: GeoPoint, sample: int) -> float:
        key = f"{a.lat:.4f},{a.lon:.4f}|{b.lat:.4f},{b.lon:.4f}|{sample}"
        digest = hashlib.sha256(key.encode("ascii")).digest()
        unit = int.from_bytes(digest[:4], "big") / 0xFFFFFFFF
        return unit * self.jitter_ms


DEFAULT_LATENCY_MODEL = LatencyModel()
