"""The RTT model.

One-way latency between two points is modelled as::

    latency_ms = base + distance_km / (0.66 * c_km_per_ms) * path_stretch
                 + per_hop * hops + jitter

i.e. propagation at two-thirds of the speed of light in fibre, inflated by a
path-stretch factor (real routes are not great circles), plus fixed per-hop
forwarding cost and a small deterministic jitter.  The constants are chosen so
that typical intra-European pings land under 10 ms and transatlantic pings in
the 70–120 ms band, matching the ranges the paper relies on for its
co-location inference (e.g. Avira's 'US' endpoint pinging Germany in <9 ms
while real US hosts answer in 113–173 ms).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.net.geo import GeoPoint

# Speed of light in vacuum is ~299.79 km/ms; in fibre ~0.66 c.
_FIBRE_KM_PER_MS = 299.79 * 0.66


@dataclass(frozen=True)
class LatencyModel:
    """Deterministic geographic latency model.

    Parameters
    ----------
    base_ms:
        Fixed one-way overhead (serialisation, last mile).
    path_stretch:
        Multiplier on great-circle distance to account for indirect routing.
    per_hop_ms:
        Forwarding delay added per router hop.
    jitter_ms:
        Peak-to-peak deterministic jitter; the actual offset for a pair of
        endpoints is a stable hash of their coordinates so repeated pings
        between the same endpoints vary reproducibly.
    """

    base_ms: float = 0.35
    path_stretch: float = 1.35
    per_hop_ms: float = 0.12
    jitter_ms: float = 0.25

    # Memoisation of the pure geometry/hash functions below.  Every cached
    # value is a deterministic function of its key, so the caches cannot
    # change a single emitted byte — they only skip recomputation.  The
    # study probes the same few hundred location pairs ~10^5 times.
    _PAIR_CACHE_LIMIT = 1 << 16
    _JITTER_CACHE_LIMIT = 1 << 17

    def __post_init__(self) -> None:
        self._reset_caches()

    def _reset_caches(self) -> None:
        # The hot caches are keyed by GeoPoint *identity* — (id(a), id(b))
        # int tuples hash at C speed, whereas value keys would pay a
        # Python-level ``GeoPoint.__hash__`` frame per probe (hundreds of
        # thousands per study).  Every cached number is a pure function of
        # the coordinates, so identity keying returns identical values; an
        # equal-valued but distinct point merely recomputes.  ``_pins``
        # holds a strong reference to every keyed point so an id can never
        # be recycled while a cache entry mentions it.
        object.__setattr__(self, "_pair_cache", {})
        object.__setattr__(self, "_jitter_cache", {})
        object.__setattr__(self, "_rtt_cache", {})
        object.__setattr__(self, "_prefix_cache", {})
        object.__setattr__(self, "_pins", {})

    # The caches are derived state; keep pickled worlds lean.
    def __getstate__(self) -> dict:
        return {
            "base_ms": self.base_ms,
            "path_stretch": self.path_stretch,
            "per_hop_ms": self.per_hop_ms,
            "jitter_ms": self.jitter_ms,
        }

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)
        self._reset_caches()

    def _pair_stats(self, a: GeoPoint, b: GeoPoint) -> tuple[float, int]:
        """(propagation_ms, hop count) for an endpoint pair, memoised."""
        cache: dict = self._pair_cache  # type: ignore[attr-defined]
        key = (id(a), id(b))
        stats = cache.get(key)
        if stats is None:
            distance = a.distance_km(b)
            propagation = (
                self.base_ms
                + (distance * self.path_stretch) / _FIBRE_KM_PER_MS
            )
            if distance < 50.0:
                hops = 3
            else:
                # ~1 hop per 600 km after the first few.
                hops = 4 + int(distance // 600.0)
            if len(cache) >= self._PAIR_CACHE_LIMIT:
                self._reset_caches()
                cache = self._pair_cache  # type: ignore[attr-defined]
            pins: dict = self._pins  # type: ignore[attr-defined]
            pins[id(a)] = a
            pins[id(b)] = b
            stats = cache[key] = (propagation, hops)
        return stats

    def propagation_ms(self, a: GeoPoint, b: GeoPoint) -> float:
        """One-way propagation delay between two points, jitter-free."""
        return self._pair_stats(a, b)[0]

    def hops_between(self, a: GeoPoint, b: GeoPoint) -> int:
        """Plausible router hop count, growing with distance."""
        return self._pair_stats(a, b)[1]

    def one_way_ms(self, a: GeoPoint, b: GeoPoint, sample: int = 0) -> float:
        """One-way latency including per-hop cost and deterministic jitter.

        ``sample`` selects among jitter realisations so that repeated probes
        between the same endpoints are not byte-identical.
        """
        propagation, hops = self._pair_stats(a, b)
        jitter = self._jitter(a, b, sample)
        return propagation + hops * self.per_hop_ms + jitter

    def rtt_ms(self, a: GeoPoint, b: GeoPoint, sample: int = 0) -> float:
        """Round-trip time between two points.

        The miss path inlines ``one_way_ms``/``_jitter``: RTT is the hottest
        latency entry point and packet-derived samples rarely repeat, so the
        intermediate per-sample caches cannot pay for their probes here.  The
        arithmetic keeps the exact expression shape of ``one_way_ms(a, b, s)
        + one_way_ms(b, a, s + 1)`` so every float rounds identically.
        """
        cache: dict = self._rtt_cache  # type: ignore[attr-defined]
        id_a = id(a)
        id_b = id(b)
        key = (id_a, id_b, sample)
        rtt = cache.get(key)
        if rtt is None:
            per_hop = self.per_hop_ms
            jitter_ms = self.jitter_ms
            prop_ab, hops_ab = self._pair_stats(a, b)
            prop_ba, hops_ba = self._pair_stats(b, a)
            prefixes: dict = self._prefix_cache  # type: ignore[attr-defined]
            prefix_ab = prefixes.get((id_a, id_b))
            if prefix_ab is None:
                prefix_ab = prefixes[(id_a, id_b)] = (
                    f"{a.lat:.4f},{a.lon:.4f}|{b.lat:.4f},{b.lon:.4f}|"
                ).encode("ascii")
            prefix_ba = prefixes.get((id_b, id_a))
            if prefix_ba is None:
                prefix_ba = prefixes[(id_b, id_a)] = (
                    f"{b.lat:.4f},{b.lon:.4f}|{a.lat:.4f},{a.lon:.4f}|"
                ).encode("ascii")
            digest_ab = hashlib.sha256(
                prefix_ab + str(sample).encode("ascii")
            ).digest()
            digest_ba = hashlib.sha256(
                prefix_ba + str(sample + 1).encode("ascii")
            ).digest()
            jitter_ab = (
                int.from_bytes(digest_ab[:4], "big") / 0xFFFFFFFF
            ) * jitter_ms
            jitter_ba = (
                int.from_bytes(digest_ba[:4], "big") / 0xFFFFFFFF
            ) * jitter_ms
            rtt = (prop_ab + hops_ab * per_hop + jitter_ab) + (
                prop_ba + hops_ba * per_hop + jitter_ba
            )
            if len(cache) >= self._JITTER_CACHE_LIMIT:
                cache.clear()
            cache[key] = rtt
        return rtt

    def _jitter(self, a: GeoPoint, b: GeoPoint, sample: int) -> float:
        cache: dict = self._jitter_cache  # type: ignore[attr-defined]
        id_a = id(a)
        id_b = id(b)
        key = (id_a, id_b, sample)
        jitter = cache.get(key)
        if jitter is None:
            # The pair prefix of the hash key is memoised; concatenating the
            # encoded sample yields bytes identical to encoding the full
            # f-string (everything is ASCII), so the digest cannot change.
            prefixes: dict = self._prefix_cache  # type: ignore[attr-defined]
            prefix = prefixes.get((id_a, id_b))
            if prefix is None:
                pins: dict = self._pins  # type: ignore[attr-defined]
                pins[id_a] = a
                pins[id_b] = b
                prefix = prefixes[(id_a, id_b)] = (
                    f"{a.lat:.4f},{a.lon:.4f}|{b.lat:.4f},{b.lon:.4f}|"
                ).encode("ascii")
            digest = hashlib.sha256(prefix + str(sample).encode("ascii")).digest()
            unit = int.from_bytes(digest[:4], "big") / 0xFFFFFFFF
            if len(cache) >= self._JITTER_CACHE_LIMIT:
                cache.clear()
            jitter = cache[key] = unit * self.jitter_ms
        return jitter


DEFAULT_LATENCY_MODEL = LatencyModel()
