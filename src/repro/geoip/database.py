"""The generic geo-IP database model.

A database's answer for an address is driven by three questions:

1. Does it have coverage for this address at all?  (``coverage`` probability,
   hashed deterministically per address.)
2. Is it fooled by registration-level location spoofing?  Providers that
   virtualise vantage points register their IP space to the advertised
   country; databases differ in how often they take the bait
   (``spoof_susceptibility``).
3. Otherwise, does its measurement process make an honest mistake?
   (``error_rate``; errors resolve to the US about a third of the time,
   matching Section 6.4.1, otherwise to a pseudo-random country.)

All randomness is a stable hash of (database name, address), so results are
reproducible and per-address consistent across calls.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class GeoIpResult:
    """A database's verdict for one address."""

    address: str
    country: Optional[str]  # None = no estimate for this address
    database: str

    @property
    def has_estimate(self) -> bool:
        return self.country is not None


# Countries honest errors land in (besides the US bias), roughly the
# geography of large hosting markets.
_ERROR_COUNTRIES = (
    "DE", "NL", "GB", "FR", "CA", "SG", "JP", "SE", "PL", "RO", "AU", "BR",
)


@dataclass(frozen=True)
class GeoIpDatabase:
    """One geo-IP database with its error model."""

    name: str
    coverage: float              # P(has an estimate at all)
    error_rate: float            # P(honest mistake | not spoofed)
    spoof_susceptibility: float  # P(believes the registered country | spoofed)
    us_bias: float = 0.33        # P(error lands on 'US')

    def locate(
        self,
        address: str,
        true_country: str,
        registered_country: Optional[str] = None,
    ) -> GeoIpResult:
        """The database's country estimate for *address*.

        ``true_country`` is where the server physically is;
        ``registered_country`` is the country its WHOIS/registration data
        claims (set by providers running 'virtual' vantage points).
        """
        u_cover, u_spoof, u_err, u_us, u_pick = self._draws(address)

        if u_cover >= self.coverage:
            return GeoIpResult(address=address, country=None, database=self.name)

        spoofed = (
            registered_country is not None and registered_country != true_country
        )
        if spoofed and u_spoof < self.spoof_susceptibility:
            return GeoIpResult(
                address=address, country=registered_country, database=self.name
            )

        if u_err < self.error_rate:
            if u_us < self.us_bias and true_country != "US":
                wrong = "US"
            else:
                candidates = [
                    c for c in _ERROR_COUNTRIES if c != true_country
                ]
                wrong = candidates[int(u_pick * len(candidates)) % len(candidates)]
            return GeoIpResult(address=address, country=wrong, database=self.name)

        return GeoIpResult(
            address=address, country=true_country, database=self.name
        )

    def _draws(self, address: str) -> tuple[float, float, float, float, float]:
        """Five independent uniform draws, stable per (db, address)."""
        digest = hashlib.sha256(f"{self.name}|{address}".encode()).digest()
        return tuple(
            int.from_bytes(digest[i * 4 : i * 4 + 4], "big") / 0xFFFFFFFF
            for i in range(5)
        )  # type: ignore[return-value]
