"""Geo-IP database models.

The paper compares VPN-claimed vantage-point locations against three
databases — MaxMind GeoLite2, IP2Location Lite, and Google's location
service — finding agreement rates of 95 %, 90 % and 70 % respectively, with
roughly one third of all mismatches resolving to the US (Section 6.4.1).

Real databases are proprietary snapshots; we model each as a deterministic
function of (address, true location, spoofed location) with a per-database
error model and a per-database susceptibility to the WHOIS/registration
games providers play when 'virtualising' vantage points.
"""

from repro.geoip.database import GeoIpDatabase, GeoIpResult
from repro.geoip.providers import (
    GoogleLocationService,
    IP2LocationLite,
    MaxMindGeoLite2,
    standard_databases,
)

__all__ = [
    "GeoIpDatabase",
    "GeoIpResult",
    "GoogleLocationService",
    "IP2LocationLite",
    "MaxMindGeoLite2",
    "standard_databases",
]
