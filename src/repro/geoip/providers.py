"""The three concrete databases of Section 6.4.1.

Calibration
-----------
Let *v* be the fraction of vantage points whose advertised country differs
from their physical country (the paper reports 5–30 % depending on ground
truth; the catalogue realises ≈15 %).  A database agrees with the *claimed*
location either by being fooled by the registration spoof (susceptibility
*s*) on virtual points, or by being right (1 − error rate *e*) on honest
points::

    agreement ≈ (1 − v)(1 − e) + v·s

The constants below solve that for the paper's agreement rates — MaxMind
95 %, IP2Location 90 %, Google 70 % — with coverage matching the reported
answer counts (612/626 for the free databases, 541/626 for Google).  Google
is modelled as hardest to fool (active measurement) and the free databases
as registration-trusting, which reproduces the paper's observation that the
highest-fidelity source shows the *most* disagreement with claimed locations.
"""

from __future__ import annotations

from repro.geoip.database import GeoIpDatabase


def MaxMindGeoLite2() -> GeoIpDatabase:
    """MaxMind GeoLite2 model: broad coverage, trusts registration data."""
    return GeoIpDatabase(
        name="maxmind-geolite2",
        coverage=0.978,
        error_rate=0.041,
        spoof_susceptibility=0.90,
    )


def IP2LocationLite() -> GeoIpDatabase:
    """IP2Location Lite model: broad coverage, mostly registration-based."""
    return GeoIpDatabase(
        name="ip2location-lite",
        coverage=0.978,
        error_rate=0.074,
        spoof_susceptibility=0.75,
    )


def GoogleLocationService() -> GeoIpDatabase:
    """Google location API model: lower coverage, hardest to spoof."""
    return GeoIpDatabase(
        name="google-location",
        coverage=0.864,
        error_rate=0.194,
        spoof_susceptibility=0.10,
    )


def standard_databases() -> list[GeoIpDatabase]:
    """The three databases the paper compares, in its order."""
    return [GoogleLocationService(), IP2LocationLite(), MaxMindGeoLite2()]
