"""The study configuration: one frozen object instead of seven kwargs.

:class:`StudyConfig` is the single source of truth for how a study runs —
what to measure (seed, providers, vantage-point cap), how to schedule it
(workers, backend, checkpointing, snapshots) and what to observe
(:class:`~repro.obs.config.ObsConfig`).  The CLI builds one from its flags,
``repro.api`` accepts one via ``config=`` (the individual kwargs survive as
a deprecated shim), and the executor/scheduler construct themselves from
one — so a config value round-trips unchanged from flag to worker.

Frozen and hashable on purpose: a config can key caches, be compared for
checkpoint compatibility, and cannot drift mid-study.  ``to_dict`` /
``from_dict`` give a stable JSON round-trip for archiving alongside
results.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Optional, Sequence

from repro.obs.config import ObsConfig
from repro.source import StudySource

_BACKENDS = ("thread", "process")


@dataclass(frozen=True)
class StudyConfig:
    """Everything that determines a study run.

    Measurement identity (what the archive fingerprint is a function of):
    ``seed``, ``source`` (what to measure: catalogue, an explicit provider
    list, or a generated ecosystem — ``providers`` survives as the legacy
    spelling of an explicit list), and ``max_vantage_points`` (None = test
    every vantage point).

    Scheduling (must never change results): ``workers``, ``backend``,
    ``shards`` (worlds built per-provider-slice instead of monolithically),
    ``stream`` (archive-as-you-go, flat memory; requires ``archive_dir``),
    ``checkpoint_dir`` (resume a killed study), ``snapshots`` +
    ``reseed`` (longitudinal re-runs), ``archive_dir``, ``progress``.

    Observability (a side channel — never perturbs results): ``obs``.
    """

    seed: int = 2018
    providers: Optional[tuple[str, ...]] = None
    max_vantage_points: Optional[int] = 5
    workers: int = 1
    backend: str = "thread"
    checkpoint_dir: Optional[str] = None
    snapshots: int = 1
    reseed: bool = True
    archive_dir: Optional[str] = None
    progress: bool = False
    obs: ObsConfig = field(default_factory=ObsConfig)
    source: Optional[StudySource] = None
    shards: int = 1
    stream: bool = False

    def __post_init__(self) -> None:
        # Normalise providers to a tuple so the config stays hashable and
        # list/tuple callers compare equal.
        if self.providers is not None and not isinstance(
            self.providers, tuple
        ):
            object.__setattr__(self, "providers", tuple(self.providers))
        if self.providers is not None and self.source is not None:
            raise ValueError("pass providers= or source=, not both")
        if self.source is not None and not isinstance(
            self.source, StudySource
        ):
            raise TypeError("source must be a StudySource")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.stream and not self.archive_dir:
            raise ValueError("stream=True requires archive_dir")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.backend not in _BACKENDS:
            raise ValueError(
                f"backend must be one of {_BACKENDS}, got {self.backend!r}"
            )
        if self.snapshots < 1:
            raise ValueError("snapshots must be >= 1")
        if (
            self.max_vantage_points is not None
            and self.max_vantage_points < 1
        ):
            raise ValueError("max_vantage_points must be >= 1 or None")
        if not isinstance(self.obs, ObsConfig):
            raise TypeError("obs must be an ObsConfig")

    # ------------------------------------------------------------------
    def replace(self, **changes: object) -> "StudyConfig":
        return replace(self, **changes)  # type: ignore[arg-type]

    @property
    def provider_list(self) -> Optional[list[str]]:
        """Providers as the list the lower layers expect (or None)."""
        if self.providers is not None:
            return list(self.providers)
        if self.source is not None and self.source.kind == "explicit":
            return list(self.source.providers or ())
        return None

    def resolved_source(self) -> StudySource:
        """The study's :class:`StudySource`, whichever way it was given."""
        if self.source is not None:
            return self.source
        if self.providers is not None:
            return StudySource.explicit(self.providers)
        return StudySource.catalog()

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        out: dict = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if spec.name == "obs":
                value = {
                    "trace": value.trace,
                    "trace_path": value.trace_path,
                    "trace_packets": value.trace_packets,
                    "metrics": value.metrics,
                    "metrics_path": value.metrics_path,
                    "flight_recorder": value.flight_recorder,
                    "profile": value.profile,
                    "stage_profile": value.stage_profile,
                    "stage_sample": value.stage_sample,
                }
            elif spec.name == "providers" and value is not None:
                value = list(value)
            elif spec.name == "source" and value is not None:
                value = value.to_dict()
            out[spec.name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "StudyConfig":
        known = {spec.name for spec in fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in known}
        obs = kwargs.get("obs")
        if isinstance(obs, dict):
            kwargs["obs"] = ObsConfig(**obs)
        providers = kwargs.get("providers")
        if providers is not None:
            kwargs["providers"] = tuple(providers)
        source = kwargs.get("source")
        if isinstance(source, dict):
            kwargs["source"] = StudySource.from_dict(source)
        return cls(**kwargs)

    # ------------------------------------------------------------------
    @classmethod
    def for_providers(
        cls, providers: Sequence[str], **kwargs: object
    ) -> "StudyConfig":
        """Convenience: a config scoped to a provider subset."""
        return cls(providers=tuple(providers), **kwargs)  # type: ignore[arg-type]


@dataclass(frozen=True)
class ServeConfig:
    """How the audit service (:mod:`repro.serve`) runs.

    Deliberately separate from :class:`StudyConfig`: a daemon hosts *many*
    studies, each carrying its own StudyConfig inside its job request,
    while this object fixes what is per-process — where state lives
    (``state_dir``), the listen address, the size of the one shared worker
    pool every job multiplexes onto (``workers``), how many jobs may run
    concurrently (``max_active_jobs``), and whether checkpoints of
    finished jobs are kept for forensics instead of pruned
    (``keep_checkpoints``).
    """

    host: str = "127.0.0.1"
    port: int = 8321
    state_dir: str = "serve-state"
    workers: int = 2
    max_active_jobs: int = 2
    poll_interval_s: float = 0.05
    keep_checkpoints: bool = False
    #: Cadence of each job's runtime resource sampler (RSS, queue depth,
    #: shard residency); feeds ``GET /jobs/{id}/top``.  None disables it.
    sample_interval_s: Optional[float] = 1.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.sample_interval_s is not None and self.sample_interval_s <= 0:
            raise ValueError("sample_interval_s must be > 0 or None")
        if self.max_active_jobs < 1:
            raise ValueError("max_active_jobs must be >= 1")
        if self.poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be > 0")
        if not (0 <= self.port <= 65535):
            raise ValueError("port must be in [0, 65535] (0 = ephemeral)")

    def replace(self, **changes: object) -> "ServeConfig":
        return replace(self, **changes)  # type: ignore[arg-type]

    def to_dict(self) -> dict:
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "ServeConfig":
        known = {spec.name for spec in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})
