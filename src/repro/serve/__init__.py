"""repro.serve — the audit-as-a-service daemon.

One persistent process that runs audits on demand instead of one process
per study:

- :class:`~repro.serve.daemon.AuditDaemon` composes the pieces and owns
  the lifecycle (recover -> serve -> drain);
- :class:`~repro.serve.jobs.JobQueue` accepts typed jobs with priorities
  and dedups active work;
- :class:`~repro.serve.scheduler.JobScheduler` multiplexes every job
  over one shared worker pool, with per-job checkpoints, cancellation,
  and drain-requeue;
- :class:`~repro.serve.store.ResultStore` makes every job and result a
  file on disk — the daemon can die at any instant and pick up where it
  left off;
- :mod:`~repro.serve.protocol` is the versioned wire schema, and
  :class:`~repro.serve.client.ServeClient` the stdlib HTTP client.

Lazy exports keep ``import repro.serve`` cheap; submodules load on
attribute access.
"""

from __future__ import annotations

_EXPORTS = {
    "AuditDaemon": ("repro.serve.daemon", "AuditDaemon"),
    "JobQueue": ("repro.serve.jobs", "JobQueue"),
    "UnknownJobError": ("repro.serve.jobs", "UnknownJobError"),
    "JobScheduler": ("repro.serve.scheduler", "JobScheduler"),
    "ResultStore": ("repro.serve.store", "ResultStore"),
    "ServeClient": ("repro.serve.client", "ServeClient"),
    "ServeError": ("repro.serve.client", "ServeError"),
    "build_server": ("repro.serve.httpapi", "build_server"),
    "PROTOCOL_VERSION": ("repro.serve.protocol", "PROTOCOL_VERSION"),
    "ProtocolError": ("repro.serve.protocol", "ProtocolError"),
    "JobKind": ("repro.serve.protocol", "JobKind"),
    "JobState": ("repro.serve.protocol", "JobState"),
    "JobRequest": ("repro.serve.protocol", "JobRequest"),
    "JobRecord": ("repro.serve.protocol", "JobRecord"),
    "SubmitReply": ("repro.serve.protocol", "SubmitReply"),
    "JobStatusReply": ("repro.serve.protocol", "JobStatusReply"),
    "TraceQueryReply": ("repro.serve.protocol", "TraceQueryReply"),
    "EventsReply": ("repro.serve.protocol", "EventsReply"),
    "JobEventLog": ("repro.serve.stream", "JobEventLog"),
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
