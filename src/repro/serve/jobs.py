"""The daemon's job queue.

A thread-safe priority queue of :class:`~repro.serve.protocol.JobRecord`
objects.  Three properties matter for a long-running service:

- **priority with FIFO ties** — higher ``priority`` runs first; equal
  priorities run in submission order (a monotonic sequence breaks ties),
  so a flood of background jobs can never starve an operator's urgent
  re-check, and two equal jobs never swap;
- **dedup of active work** — submitting a request whose
  :meth:`~repro.serve.protocol.JobRequest.fingerprint` matches a job that
  is already queued or running returns that job instead of enqueuing a
  twin (a snapshot tick that fires while the previous tick still runs
  must not pile up);  finished jobs never dedup — re-submitting measures
  again, which is the point of a re-check;
- **every transition is observable** — an ``on_change`` callback fires
  with each new record (the store persists it, so the queue's view and
  the disk's view never drift).

The queue holds no threads of its own; the scheduler pulls from it.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from typing import Callable, Optional

from repro.serve.protocol import (
    JobKind,
    JobRecord,
    JobRequest,
    JobState,
)


class UnknownJobError(KeyError):
    """No job with that ID."""


class JobQueue:
    """Priority queue + registry of every job the daemon knows about."""

    def __init__(
        self,
        on_change: Optional[Callable[[JobRecord], None]] = None,
        make_job_id: Optional[Callable[[int, JobRequest], str]] = None,
        metrics=None,
    ) -> None:
        self._lock = threading.Condition()
        self._records: dict[str, JobRecord] = {}
        # (-priority, sequence, job_id): heapq pops the smallest tuple,
        # so higher priority first, then submission order.
        self._heap: list[tuple[int, int, str]] = []
        self._sequence = itertools.count(1)
        self._on_change = on_change
        self._make_job_id = make_job_id or (
            lambda seq, request: f"job-{seq:05d}-{request.fingerprint()[:8]}"
        )
        #: Optional MetricsRegistry; ``serve.jobs.*`` counters and the
        #: ``serve.queue.wait_s`` histogram land here when wired.
        self.metrics = metrics
        self._queued_at: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, request: JobRequest) -> tuple[JobRecord, bool]:
        """Enqueue *request*; returns ``(record, deduplicated)``.

        ``deduplicated`` is True when an active (queued or running) job
        with the same work fingerprint already exists — that job's record
        is returned and nothing is enqueued.
        """
        with self._lock:
            fingerprint = request.fingerprint()
            for record in self._records.values():
                if record.terminal:
                    continue
                if record.request.fingerprint() == fingerprint:
                    self._inc("serve.jobs.dedup_hits")
                    return record, True
            sequence = next(self._sequence)
            record = JobRecord(
                job_id=self._make_job_id(sequence, request),
                request=request,
                state=JobState.QUEUED,
                sequence=sequence,
            )
            self._store(record)
            self._inc("serve.jobs.submitted")
            self._queued_at[record.job_id] = time.monotonic()
            heapq.heappush(
                self._heap, (-request.priority, sequence, record.job_id)
            )
            self._lock.notify()
            return record, False

    def restore(self, record: JobRecord) -> None:
        """Re-register a job recovered from disk (daemon restart).

        Non-terminal jobs are re-queued — a job that was ``running`` when
        the daemon died resumes from its checkpoint.  The internal
        sequence counter advances past the record's, keeping later
        submissions behind recovered ones at equal priority.
        """
        with self._lock:
            if record.job_id in self._records:
                return
            if not record.terminal and record.state is not JobState.QUEUED:
                record = record.advance(JobState.QUEUED)
            self._store(record)
            while record.sequence >= next(self._sequence):
                pass
            if record.state is JobState.QUEUED:
                self._queued_at[record.job_id] = time.monotonic()
                heapq.heappush(
                    self._heap,
                    (
                        -record.request.priority,
                        record.sequence,
                        record.job_id,
                    ),
                )
                self._lock.notify()

    # ------------------------------------------------------------------
    # Dispatch (scheduler side)
    # ------------------------------------------------------------------
    def claim(self, timeout: Optional[float] = None) -> Optional[JobRecord]:
        """Pop the best queued job and mark it running; None on timeout."""
        with self._lock:
            while True:
                record = self._pop_queued_locked()
                if record is not None:
                    queued_at = self._queued_at.pop(record.job_id, None)
                    if queued_at is not None and self.metrics is not None:
                        self.metrics.observe(
                            "serve.queue.wait_s",
                            time.monotonic() - queued_at,
                        )
                    self._inc("serve.jobs.dispatched")
                    record = record.advance(JobState.RUNNING)
                    self._store(record)
                    return record
                if not self._lock.wait(timeout=timeout):
                    return None

    def _pop_queued_locked(self) -> Optional[JobRecord]:
        while self._heap:
            _, _, job_id = heapq.heappop(self._heap)
            record = self._records.get(job_id)
            # Stale heap entries (cancelled while queued) are dropped here.
            if record is not None and record.state is JobState.QUEUED:
                return record
        return None

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def resolve(
        self,
        job_id: str,
        state: JobState,
        error: Optional[str] = None,
        progress: Optional[dict] = None,
    ) -> JobRecord:
        """Move a job to *state* (terminal, or back to QUEUED on drain)."""
        with self._lock:
            record = self._get_locked(job_id).advance(
                state, error=error, progress=progress
            )
            self._store(record)
            if record.terminal:
                self._inc(f"serve.jobs.{state.value}")
            if state is JobState.QUEUED:
                self._queued_at[record.job_id] = time.monotonic()
                heapq.heappush(
                    self._heap,
                    (
                        -record.request.priority,
                        record.sequence,
                        record.job_id,
                    ),
                )
                self._lock.notify()
            return record

    def cancel_queued(self, job_id: str) -> Optional[JobRecord]:
        """Cancel a job that has not started; None if it is not queued.

        Running jobs are cancelled by the scheduler (their stop event),
        not by the queue — the caller falls back to that path.
        """
        with self._lock:
            record = self._get_locked(job_id)
            if record.state is not JobState.QUEUED:
                return None
            record = record.advance(JobState.CANCELLED)
            self._store(record)
            self._queued_at.pop(job_id, None)
            self._inc("serve.jobs.cancelled")
            return record

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            return self._get_locked(job_id)

    def jobs(self) -> list[JobRecord]:
        """Every known job, newest submission first."""
        with self._lock:
            return sorted(
                self._records.values(),
                key=lambda r: r.sequence,
                reverse=True,
            )

    def counts(self) -> dict[str, int]:
        with self._lock:
            out = {state.value: 0 for state in JobState}
            for record in self._records.values():
                out[record.state.value] += 1
            return out

    # ------------------------------------------------------------------
    def _get_locked(self, job_id: str) -> JobRecord:
        try:
            return self._records[job_id]
        except KeyError:
            raise UnknownJobError(job_id) from None

    def _store(self, record: JobRecord) -> None:
        self._records[record.job_id] = record
        if self._on_change is not None:
            self._on_change(record)

    def _inc(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.inc(name)


__all__ = ["JobQueue", "UnknownJobError", "JobKind", "JobState"]
