"""Per-job event logs behind the ``GET /jobs/{id}/events`` stream.

A :class:`JobEventLog` subscribes to one job's private
:class:`~repro.runtime.events.EventBus` and keeps every event in wire
form (:func:`~repro.runtime.events.event_to_dict` plus a monotonic
``seq``).  Clients long-poll with a cursor — ``read(since, wait_s)``
blocks until events past ``since`` exist or the log closes — so a watch
that disconnects mid-run reattaches at its last cursor and sees the
remainder with no gap, duplicate or reordering.  The scheduler closes
and persists the log at job resolution, *after* the final events have
been published, which gives the protocol its key invariant: a terminal
job's event log is complete.
"""

from __future__ import annotations

import threading
import time

from repro.runtime import events as ev


class JobEventLog:
    """An append-only, seekable record of one job's event stream."""

    def __init__(self) -> None:
        self._lock = threading.Condition()
        self._events: list[dict] = []
        self._closed = False

    # -- bus side ------------------------------------------------------
    def __call__(self, event: ev.Event) -> None:
        record = ev.event_to_dict(event)
        if record is None:
            return
        with self._lock:
            record["seq"] = len(self._events)
            self._events.append(record)
            self._lock.notify_all()

    def close(self) -> None:
        """No more events will arrive; wake every blocked reader."""
        with self._lock:
            self._closed = True
            self._lock.notify_all()

    # -- reader side ---------------------------------------------------
    def read(
        self, since: int = 0, wait_s: float = 0.0
    ) -> tuple[list[dict], bool]:
        """Events with ``seq >= since`` and whether the log is closed.

        Blocks up to *wait_s* seconds while no such events exist and the
        log is still open (the long-poll).  An empty result with
        ``closed=True`` tells the client the stream is over.
        """
        deadline = time.monotonic() + wait_s
        with self._lock:
            while len(self._events) <= since and not self._closed:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._lock.wait(timeout=remaining):
                    break
            return list(self._events[since:]), self._closed

    def records(self) -> list[dict]:
        """Every event so far (the persistence snapshot)."""
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


__all__ = ["JobEventLog"]
