"""A small urllib client for the audit service.

:class:`ServeClient` speaks the daemon's HTTP/JSON protocol — the same
:mod:`repro.serve.protocol` payloads the server emits — so `repro client`
and the tests never hand-build URLs or parse ad-hoc JSON.  Errors come
back as :class:`ServeError` carrying the server's status code and
machine-readable error token.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Optional

from repro.serve.protocol import (
    EventsReply,
    JobRequest,
    JobStatusReply,
    SubmitReply,
    TERMINAL_STATES,
    TraceQueryReply,
)


class ServeError(RuntimeError):
    """An error reply from the daemon (or a transport failure)."""

    def __init__(self, status: int, error: str, detail: str) -> None:
        super().__init__(f"{error} (HTTP {status}): {detail}")
        self.status = status
        self.error = error
        self.detail = detail


class ServeClient:
    """Talk to a running :class:`~repro.serve.daemon.AuditDaemon`."""

    def __init__(self, endpoint: str, timeout_s: float = 10.0) -> None:
        self.endpoint = endpoint.rstrip("/")
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def submit(self, request: JobRequest) -> SubmitReply:
        payload = self._request("POST", "/jobs", body=request.to_dict())
        return SubmitReply.from_dict(payload)

    def status(self, job_id: str) -> JobStatusReply:
        return JobStatusReply.from_dict(
            self._request("GET", f"/jobs/{job_id}")
        )

    def jobs(self) -> list[JobStatusReply]:
        payload = self._request("GET", "/jobs")
        return [JobStatusReply.from_dict(d) for d in payload["jobs"]]

    def cancel(self, job_id: str) -> JobStatusReply:
        return JobStatusReply.from_dict(
            self._request("DELETE", f"/jobs/{job_id}")
        )

    def result(self, job_id: str, name: str) -> dict:
        return self._request("GET", f"/results/{job_id}/{name}")

    def events(
        self, job_id: str, since: int = 0, wait_s: float = 0.0
    ) -> EventsReply:
        """One page of the job's event stream from cursor *since*.

        ``wait_s > 0`` long-polls: the daemon holds the request until
        events past the cursor exist (or the wait expires).  The HTTP
        timeout stretches to cover the wait.
        """
        query = urllib.parse.urlencode(
            {"since": since, "wait": f"{wait_s:g}"}
        )
        payload = self._request(
            "GET",
            f"/jobs/{job_id}/events?{query}",
            timeout_s=self.timeout_s + wait_s,
        )
        return EventsReply.from_dict(payload)

    def watch(
        self,
        job_id: str,
        handler,
        since: int = 0,
        poll_wait_s: float = 10.0,
        timeout_s: Optional[float] = None,
    ) -> EventsReply:
        """Follow a job's event stream, feeding each event to *handler*.

        *handler* receives wire-form event dicts in ``seq`` order,
        starting at *since* — the full history when 0, so a watcher
        attached mid-run replays what it missed first.  Returns the
        final (terminal) reply; a terminal state guarantees the stream
        was delivered completely, so the loop ends exactly then.
        """
        deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )
        cursor = since
        while True:
            reply = self.events(job_id, since=cursor, wait_s=poll_wait_s)
            for event in reply.events:
                handler(event)
            cursor = reply.next
            if reply.terminal:
                return reply
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id!r} still {reply.state.value} "
                    f"after {timeout_s:.0f}s"
                )

    def top(self, job_id: str) -> dict:
        """The job's dashboard numbers from ``GET /jobs/{id}/top``.

        The dict is :meth:`repro.runtime.dashboard.DashboardState.top`
        output — render it with
        :func:`repro.runtime.dashboard.render_top`.
        """
        return self._request("GET", f"/jobs/{job_id}/top")

    def trace_query(self, job_id: str, expression: str) -> TraceQueryReply:
        query = urllib.parse.urlencode({"job": job_id, "q": expression})
        return TraceQueryReply.from_dict(
            self._request("GET", f"/trace/query?{query}")
        )

    def wait(
        self,
        job_id: str,
        timeout_s: float = 120.0,
        poll_interval_s: float = 0.1,
    ) -> JobStatusReply:
        """Poll until the job reaches a terminal state; raises on timeout."""
        deadline = time.monotonic() + timeout_s
        while True:
            reply = self.status(job_id)
            if reply.record.state in TERMINAL_STATES:
                return reply
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id!r} still {reply.record.state.value} "
                    f"after {timeout_s:.0f}s"
                )
            time.sleep(poll_interval_s)

    def metrics_text(self) -> str:
        """The raw Prometheus exposition from ``GET /metrics``."""
        request = urllib.request.Request(
            self.endpoint + "/metrics", method="GET"
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                return response.read().decode()
        except urllib.error.HTTPError as exc:
            raise ServeError(exc.code, "http_error", str(exc)) from None
        except urllib.error.URLError as exc:
            raise ServeError(0, "unreachable", str(exc.reason)) from None

    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        timeout_s: Optional[float] = None,
    ) -> dict:
        data = (
            json.dumps(body, sort_keys=True).encode()
            if body is not None
            else None
        )
        request = urllib.request.Request(
            self.endpoint + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(
                request,
                timeout=timeout_s if timeout_s is not None else self.timeout_s,
            ) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read())
            except (json.JSONDecodeError, ValueError):
                payload = {}
            raise ServeError(
                exc.code,
                payload.get("error", "http_error"),
                payload.get("detail", str(exc)),
            ) from None
        except urllib.error.URLError as exc:
            raise ServeError(0, "unreachable", str(exc.reason)) from None


__all__ = ["ServeClient", "ServeError"]
