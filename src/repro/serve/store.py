"""Durable job state and results.

The store owns the daemon's state directory.  Every job gets one
directory whose contents answer every read query the HTTP API serves —
no result is ever recomputed, and nothing the daemon knows lives only in
memory:

    <state_dir>/
      sequence.json                   # monotonic job-ID counter
      jobs/<job_id>/
        job.json                      # JobRecord (state machine, durable)
        checkpoint/                   # CheckpointStore (crash-resume)
        archive/                      # the byte-exact study archive
        report.json                   # StudyReport.to_dict()
        evidence.json                 # explain_document() per provider
        metrics.json                  # merged MetricsRegistry snapshot
        trace.jsonl                   # span trace (when the job traced)
        fingerprint.json              # archive_fingerprint(archive/)

``job.json`` is rewritten on every state transition (the queue's
``on_change`` hook), so a killed daemon recovers its whole queue by
scanning ``jobs/*/job.json`` — jobs that were running resume from their
checkpoints, results of finished jobs stay fetchable forever (or until
pruned).
"""

from __future__ import annotations

import json
import pathlib
from typing import TYPE_CHECKING, Optional

from repro.serve.protocol import (
    JobRecord,
    JobRequest,
    JobState,
    ProtocolError,
    TERMINAL_STATES,
)

if TYPE_CHECKING:
    from repro.core.harness import StudyReport
    from repro.runtime.scheduler import LongitudinalReport

_SEQUENCE = "sequence.json"
_JOBS = "jobs"
_JOB = "job.json"
_CHECKPOINT = "checkpoint"
_ARCHIVE = "archive"
_EVENTS = "events.jsonl"

#: Fetchable result documents: name -> filename.
RESULT_FILES = {
    "report": "report.json",
    "evidence": "evidence.json",
    "metrics": "metrics.json",
    "fingerprint": "fingerprint.json",
}


class ResultStore:
    """Filesystem-backed job registry and result index."""

    def __init__(self, root: str | pathlib.Path, metrics=None) -> None:
        self.root = pathlib.Path(root)
        self.jobs_root = self.root / _JOBS
        self.jobs_root.mkdir(parents=True, exist_ok=True)
        #: Optional MetricsRegistry; the daemon wires its own in so
        #: ``serve.store.*`` counters show up on ``GET /metrics``.
        self.metrics = metrics

    # ------------------------------------------------------------------
    # Job identity
    # ------------------------------------------------------------------
    def next_job_id(self, sequence: int, request: JobRequest) -> str:
        """Durable job IDs: persisted counter + work fingerprint prefix.

        The persisted counter dominates the queue's in-memory sequence so
        IDs never collide across daemon restarts.
        """
        path = self.root / _SEQUENCE
        persisted = 0
        if path.exists():
            try:
                persisted = int(json.loads(path.read_text())["next"])
            except (ValueError, KeyError, json.JSONDecodeError):
                persisted = 0
        number = max(sequence, persisted)
        path.write_text(json.dumps({"next": number + 1}))
        return f"job-{number:05d}-{request.fingerprint()[:8]}"

    # ------------------------------------------------------------------
    # Records
    # ------------------------------------------------------------------
    def job_dir(self, job_id: str) -> pathlib.Path:
        return self.jobs_root / job_id

    def checkpoint_dir(self, job_id: str) -> pathlib.Path:
        return self.job_dir(job_id) / _CHECKPOINT

    def archive_dir(self, job_id: str) -> pathlib.Path:
        return self.job_dir(job_id) / _ARCHIVE

    def save_record(self, record: JobRecord) -> None:
        directory = self.job_dir(record.job_id)
        directory.mkdir(parents=True, exist_ok=True)
        self._write_json(directory / _JOB, record.to_dict())

    def load_records(self) -> list[JobRecord]:
        """Every persisted job, oldest first; unreadable ones skipped."""
        records = []
        for path in sorted(self.jobs_root.glob(f"*/{_JOB}")):
            try:
                records.append(
                    JobRecord.from_dict(json.loads(path.read_text()))
                )
            except (json.JSONDecodeError, ProtocolError, KeyError, ValueError):
                continue  # a job dir killed mid-write; results stay on disk
        records.sort(key=lambda r: r.sequence)
        return records

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def store_study_result(
        self,
        record: JobRecord,
        report: "StudyReport",
        trace_records: Optional[list[dict]] = None,
        metrics_snapshot: Optional[dict] = None,
    ) -> str:
        """Index a finished study/recheck; returns the archive fingerprint."""
        from repro.core.archive import archive_fingerprint, write_study_archive
        from repro.obs.evidence import explain_document

        directory = self.job_dir(record.job_id)
        directory.mkdir(parents=True, exist_ok=True)
        archive_root = write_study_archive(report, self.archive_dir(record.job_id))
        fingerprint = archive_fingerprint(archive_root)

        self._write_json(directory / RESULT_FILES["report"], report.to_dict())
        self._write_json(
            directory / RESULT_FILES["evidence"],
            {
                name: explain_document(provider_report)
                for name, provider_report in report.providers.items()
            },
        )
        if metrics_snapshot is not None:
            self._write_json(
                directory / RESULT_FILES["metrics"], metrics_snapshot
            )
        if trace_records:
            from repro.obs.trace import JsonlSpanSink

            sink = JsonlSpanSink(str(directory / "trace.jsonl"))
            try:
                for trace_record in trace_records:
                    sink.write(trace_record)
            finally:
                sink.close()
        self._write_json(
            directory / RESULT_FILES["fingerprint"],
            {
                "fingerprint": fingerprint,
                "algorithm": "sha256/path-nul-bytes-nul over sorted *.json",
                "archive": str(archive_root),
            },
        )
        return fingerprint

    def store_longitudinal_result(
        self, record: JobRecord, report: "LongitudinalReport"
    ) -> None:
        directory = self.job_dir(record.job_id)
        directory.mkdir(parents=True, exist_ok=True)
        self._write_json(
            directory / RESULT_FILES["report"], report.to_dict()
        )

    def result(self, job_id: str, name: str) -> Optional[dict]:
        """A stored result document by name, or None if absent."""
        filename = RESULT_FILES.get(name)
        if filename is None:
            raise KeyError(name)
        path = self.job_dir(job_id) / filename
        if not path.exists():
            return None
        return json.loads(path.read_text())

    def available_results(self, job_id: str) -> tuple[str, ...]:
        directory = self.job_dir(job_id)
        return tuple(
            name
            for name, filename in sorted(RESULT_FILES.items())
            if (directory / filename).exists()
        )

    def trace_path(self, job_id: str) -> Optional[pathlib.Path]:
        path = self.job_dir(job_id) / "trace.jsonl"
        return path if path.exists() else None

    # ------------------------------------------------------------------
    # Event logs (the durable side of GET /jobs/{id}/events)
    # ------------------------------------------------------------------
    def save_events(self, job_id: str, records: list[dict]) -> None:
        """Persist a job's full event log as ``events.jsonl``.

        Written at job resolution so a terminal job's stream replays
        byte-identically from disk after the daemon restarts.
        """
        directory = self.job_dir(job_id)
        directory.mkdir(parents=True, exist_ok=True)
        body = "".join(
            json.dumps(record, sort_keys=True) + "\n" for record in records
        )
        (directory / _EVENTS).write_text(body)
        self._account(len(body.encode()))

    def load_events(self, job_id: str) -> list[dict]:
        """The persisted event log, in order; [] when none was stored."""
        path = self.job_dir(job_id) / _EVENTS
        if not path.exists():
            return []
        records = []
        for line in path.read_text().splitlines():
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                break  # truncated tail from a mid-write kill
        return records

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------
    def prune_checkpoints(
        self, records: Optional[list[JobRecord]] = None
    ) -> dict[str, int]:
        """Prune checkpoints of every terminal job; {job_id: files removed}.

        Results, archives and the job record are kept — only the
        crash-resume scaffolding goes.  Jobs still queued or running are
        never touched.
        """
        from repro.runtime.checkpoint import CheckpointStore

        if records is None:
            records = self.load_records()
        pruned: dict[str, int] = {}
        for record in records:
            if record.state not in TERMINAL_STATES:
                continue
            checkpoint = self.checkpoint_dir(record.job_id)
            if checkpoint.exists():
                pruned[record.job_id] = CheckpointStore(checkpoint).prune()
        return pruned

    # ------------------------------------------------------------------
    def _write_json(self, path: pathlib.Path, payload: dict) -> None:
        body = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        path.write_text(body)
        self._account(len(body.encode()))

    def _account(self, size: int) -> None:
        if self.metrics is not None:
            self.metrics.inc("serve.store.writes")
            self.metrics.inc("serve.store.bytes_written", size)


__all__ = ["ResultStore", "RESULT_FILES", "JobState"]
