"""Job execution over one shared worker pool.

The scheduler is the daemon's engine room: a dispatcher thread claims
jobs off the :class:`~repro.serve.jobs.JobQueue` (priority order, at most
``max_active_jobs`` concurrently) and runs each one on a lightweight
runner thread.  The *unit work* of every job, however, executes on a
single shared :class:`~concurrent.futures.ThreadPoolExecutor` — each
job's :class:`~repro.runtime.executor.StudyExecutor` borrows the pool via
its ``pool=`` parameter — so two concurrent jobs interleave at unit
granularity on the same ``workers`` threads instead of each spawning its
own pool.  Results stay byte-identical regardless of the interleaving
because unit results are independent of scheduling order by construction.

Each job also gets:

- a **checkpoint** under its store directory, so a daemon killed mid-job
  resumes the job from its last committed unit on restart;
- a **stop event**, the one mechanism behind both job cancellation and
  graceful daemon drain — setting it makes the executor finish in-flight
  units, flush the checkpoint, and raise
  :class:`~repro.runtime.executor.StudyInterrupted`;
- a **private EventBus** with a :class:`~repro.runtime.events.StatsCollector`,
  which is where ``GET /jobs/{id}`` progress numbers come from.

On drain (SIGTERM) interrupted jobs go back to ``queued`` — the state a
restarted daemon re-dispatches from — while an explicit cancellation
lands in ``cancelled``.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from repro.config import ServeConfig
from repro.runtime import events as ev
from repro.runtime.checkpoint import CheckpointMismatchError
from repro.runtime.executor import StudyExecutor, StudyInterrupted
from repro.serve.jobs import JobQueue
from repro.serve.protocol import JobKind, JobRecord, JobState
from repro.serve.store import ResultStore
from repro.serve.stream import JobEventLog


class JobScheduler:
    """Claim, run, and resolve jobs until told to shut down."""

    def __init__(
        self,
        queue: JobQueue,
        store: ResultStore,
        config: ServeConfig,
        metrics=None,
    ) -> None:
        self.queue = queue
        self.store = store
        self.config = config
        #: Optional daemon-wide MetricsRegistry (job wall-time lands here).
        self.metrics = metrics
        self.pool = ThreadPoolExecutor(
            max_workers=config.workers, thread_name_prefix="repro-serve"
        )
        self._dispatcher: Optional[threading.Thread] = None
        self._runners: dict[str, threading.Thread] = {}
        self._stop_events: dict[str, threading.Event] = {}
        self._stats: dict[str, ev.StatsCollector] = {}
        self._event_logs: dict[str, JobEventLog] = {}
        self._aggregators: dict[str, ev.MetricsAggregator] = {}
        self._cancelled: set[str] = set()
        self._active = threading.Semaphore(config.max_active_jobs)
        self._shutdown = threading.Event()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._dispatcher is not None:
            raise RuntimeError("scheduler already started")
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch",
            daemon=True,
        )
        self._dispatcher.start()

    def shutdown(self, drain: bool = True) -> None:
        """Stop dispatching; drain running jobs back to the queue.

        ``drain=True`` (the graceful path) sets every active job's stop
        event: executors finish their in-flight units, flush checkpoints,
        and the jobs are re-queued for the next daemon.  The call returns
        when every runner thread has finished and the pool is down.
        """
        self._shutdown.set()
        if drain:
            with self._lock:
                for event in self._stop_events.values():
                    event.set()
        if self._dispatcher is not None:
            self._dispatcher.join()
        while True:
            with self._lock:
                runners = list(self._runners.values())
            if not runners:
                break
            for runner in runners:
                runner.join()
        self.pool.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Cancellation
    # ------------------------------------------------------------------
    def cancel(self, job_id: str) -> Optional[JobRecord]:
        """Cancel a queued or running job; None when already terminal."""
        record = self.queue.cancel_queued(job_id)
        if record is not None:
            return record
        with self._lock:
            event = self._stop_events.get(job_id)
            if event is None:
                return None
            self._cancelled.add(job_id)
            event.set()
        return self.queue.get(job_id)

    # ------------------------------------------------------------------
    # Progress
    # ------------------------------------------------------------------
    def progress(self, job_id: str) -> dict:
        """Live counters for a running job; {} when none are tracked."""
        with self._lock:
            collector = self._stats.get(job_id)
        if collector is None:
            return {}
        return _progress_dict(collector.stats)

    def event_log(self, job_id: str) -> Optional[JobEventLog]:
        """The live event log of a running job, or None once resolved."""
        with self._lock:
            return self._event_logs.get(job_id)

    def metrics_snapshots(self) -> list[dict]:
        """Per-job obs metrics snapshots of every running job.

        Each running job's :class:`~repro.runtime.events.MetricsAggregator`
        folds the unit deltas flowing over its bus; snapshot merging is
        commutative, so ``GET /metrics`` can merge these into the daemon
        registry at scrape time without perturbing the jobs.
        """
        with self._lock:
            aggregators = list(self._aggregators.values())
        return [agg.registry.snapshot() for agg in aggregators]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while not self._shutdown.is_set():
            if not self._active.acquire(timeout=self.config.poll_interval_s):
                continue
            record = self.queue.claim(timeout=self.config.poll_interval_s)
            if record is None:
                self._active.release()
                continue
            if self._shutdown.is_set():
                # Claimed during shutdown: hand it straight back.
                self.queue.resolve(record.job_id, JobState.QUEUED)
                self._active.release()
                break
            runner = threading.Thread(
                target=self._run_job,
                args=(record,),
                name=f"repro-serve-{record.job_id}",
                daemon=True,
            )
            with self._lock:
                self._runners[record.job_id] = runner
            runner.start()

    def _run_job(self, record: JobRecord) -> None:
        stop_event = threading.Event()
        bus = ev.EventBus()
        collector = ev.StatsCollector()
        bus.subscribe(collector, replay=False)
        # Subscribed before the executor starts, so the log holds the
        # complete stream and /jobs/{id}/events never joins blind.
        event_log = JobEventLog()
        bus.subscribe(event_log, replay=False)
        aggregator = ev.MetricsAggregator()
        bus.subscribe(aggregator, replay=False)
        started = time.monotonic()
        with self._lock:
            self._stop_events[record.job_id] = stop_event
            self._stats[record.job_id] = collector
            self._event_logs[record.job_id] = event_log
            self._aggregators[record.job_id] = aggregator
        if self._shutdown.is_set():
            stop_event.set()
        try:
            if record.request.kind is JobKind.SNAPSHOTS:
                self._run_snapshots(record, bus, stop_event)
            else:
                self._run_study(record, bus, stop_event)
        except StudyInterrupted:
            progress = _progress_dict(collector.stats)
            if record.job_id in self._cancelled:
                self.queue.resolve(
                    record.job_id, JobState.CANCELLED, progress=progress
                )
            else:
                # Drain: the checkpoint holds every committed unit; the
                # job waits in the queue for this daemon's successor.
                self.queue.resolve(
                    record.job_id, JobState.QUEUED, progress=progress
                )
        except CheckpointMismatchError as exc:
            self.queue.resolve(
                record.job_id, JobState.FAILED, error=str(exc)
            )
        except Exception as exc:  # noqa: BLE001 - job isolation
            self.queue.resolve(
                record.job_id, JobState.FAILED, error=repr(exc)
            )
        finally:
            # Close wakes blocked /events readers; persist before
            # dropping the live log so the stream replays from disk with
            # no gap (the record went terminal before this point, and
            # every event was published before the record resolved).
            event_log.close()
            self.store.save_events(record.job_id, event_log.records())
            if self.metrics is not None:
                self.metrics.observe(
                    "serve.job.wall_s", time.monotonic() - started
                )
            with self._lock:
                self._stop_events.pop(record.job_id, None)
                self._runners.pop(record.job_id, None)
                self._event_logs.pop(record.job_id, None)
                self._aggregators.pop(record.job_id, None)
                self._cancelled.discard(record.job_id)
            self._active.release()

    def _run_study(
        self,
        record: JobRecord,
        bus: ev.EventBus,
        stop_event: threading.Event,
    ) -> None:
        config = record.request.config
        if record.request.kind is JobKind.RECHECK:
            # A re-check must come back explainable: force tracing so the
            # evidence document carries resolvable chains.
            config = config.replace(obs=config.obs.replace(trace=True))
        executor = StudyExecutor.from_config(
            config,
            bus=bus,
            workers=self.config.workers,
            backend="thread",
            checkpoint_dir=str(self.store.checkpoint_dir(record.job_id)),
            stop_event=stop_event,
            pool=self.pool,
            # Resource telemetry rides the job bus (and thus the event
            # log), which is what /jobs/{id}/top reads its RSS/queue
            # numbers from.  A side channel: results stay byte-identical.
            sample_interval_s=self.config.sample_interval_s,
        )
        report = executor.run()
        metrics = executor.metrics
        fingerprint = self.store.store_study_result(
            record,
            report,
            trace_records=executor.trace_records,
            metrics_snapshot=(
                metrics.snapshot() if metrics is not None else None
            ),
        )
        progress = _progress_dict(self._collector_stats(record.job_id))
        progress["archive_fingerprint"] = fingerprint
        resolved = self.queue.resolve(
            record.job_id, JobState.COMPLETED, progress=progress
        )
        self._maybe_prune(resolved)

    def _run_snapshots(
        self,
        record: JobRecord,
        bus: ev.EventBus,
        stop_event: threading.Event,
    ) -> None:
        from repro.runtime.scheduler import LongitudinalScheduler

        config = record.request.config
        scheduler = LongitudinalScheduler(
            seed=config.seed,
            snapshots=config.snapshots,
            providers=config.provider_list,
            max_vantage_points=config.max_vantage_points,
            workers=self.config.workers,
            backend="thread",
            archive_root=self.store.archive_dir(record.job_id),
            bus=bus,
            reseed=config.reseed,
            obs=config.obs if config.obs.enabled else None,
            stop_event=stop_event,
            pool=self.pool,
            checkpoint_root=self.store.checkpoint_dir(record.job_id),
        )
        report = scheduler.run()
        self.store.store_longitudinal_result(record, report)
        progress = _progress_dict(self._collector_stats(record.job_id))
        progress["snapshots_completed"] = len(report.snapshots)
        if report.interrupted:
            # The series stopped early; its completed prefix is stored,
            # and the job re-queues to finish the remaining snapshots.
            raise StudyInterrupted(
                completed=len(report.snapshots),
                remaining=config.snapshots - len(report.snapshots),
            )
        resolved = self.queue.resolve(
            record.job_id, JobState.COMPLETED, progress=progress
        )
        self._maybe_prune(resolved)

    def _collector_stats(self, job_id: str) -> ev.ExecutionStats:
        with self._lock:
            collector = self._stats.get(job_id)
        return collector.stats if collector is not None else ev.ExecutionStats()

    def _maybe_prune(self, record: JobRecord) -> None:
        if self.config.keep_checkpoints:
            return
        self.store.prune_checkpoints([record])


def _progress_dict(stats: ev.ExecutionStats) -> dict:
    return {
        "total_units": stats.total_units,
        "completed_units": stats.completed_units,
        "skipped_units": stats.skipped_units,
        "failed_units": stats.failed_units,
        "retried_units": stats.retried_units,
        "connect_retries": stats.connect_retries,
        "halted": stats.halted,
    }


__all__ = ["JobScheduler"]
