"""Wire protocol of the audit service.

Every payload that crosses the daemon's HTTP boundary — job submissions,
status views, error replies — is a frozen dataclass here with a versioned
``to_dict`` / ``from_dict`` round-trip.  Schema first: the daemon, the
Python client, the CLI and the tests all build and parse exactly these
shapes, so a field added here is a field everywhere (and an unknown
protocol version fails loudly at the edge instead of corrupting a job).

Jobs are typed by :class:`JobKind`:

- ``study`` — a full (or provider-subset) audit, the one-shot
  ``repro study`` as a service;
- ``recheck`` — a single-provider re-audit with tracing forced on, so the
  result carries evidence chains for every verdict;
- ``snapshots`` — a longitudinal series driven by
  :class:`repro.runtime.scheduler.LongitudinalScheduler`.

The measurement itself is pinned by the embedded
:class:`repro.config.StudyConfig`; the request adds only service-level
concerns (priority, a human label).  Two active requests with the same
:meth:`JobRequest.fingerprint` are the same work — the queue deduplicates
them onto one job.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.config import StudyConfig
from repro.runtime.retry import stable_hash

#: Bumped whenever a payload shape changes.  ``from_dict`` accepts
#: payloads without a version (assumed current) and any version in
#: ``SUPPORTED_VERSIONS`` — v2 added the optional ``source``/``shards``
#: config fields, which a v1 payload simply omits, so v1 submissions
#: still parse — but rejects anything newer or unknown, so a client from
#: the future fails at parse time, not at interpretation time.
PROTOCOL_VERSION = 2

#: Versions this daemon parses.  v1 payloads are a strict subset of v2.
SUPPORTED_VERSIONS = frozenset({1, 2})


class ProtocolError(ValueError):
    """A payload that does not parse as this protocol version."""


def _check_version(data: dict, payload: str) -> None:
    version = data.get("version", PROTOCOL_VERSION)
    if version not in SUPPORTED_VERSIONS:
        raise ProtocolError(
            f"{payload} has protocol version {version!r}, "
            f"this daemon speaks {PROTOCOL_VERSION}"
        )


class JobKind(enum.Enum):
    STUDY = "study"
    RECHECK = "recheck"
    SNAPSHOTS = "snapshots"


class JobState(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: States a job never leaves (and whose checkpoints are prunable).
TERMINAL_STATES = frozenset(
    {JobState.COMPLETED, JobState.FAILED, JobState.CANCELLED}
)


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JobRequest:
    """What a client asks the daemon to run."""

    kind: JobKind
    config: StudyConfig
    priority: int = 0
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.kind, JobKind):
            object.__setattr__(self, "kind", JobKind(self.kind))
        if not isinstance(self.config, StudyConfig):
            raise TypeError("config must be a StudyConfig")
        if self.config.stream:
            # Streamed runs return a StreamedStudy (archive on the shared
            # filesystem), which the daemon's result store cannot serve
            # over HTTP yet; keep the failure at the protocol edge.
            raise ProtocolError(
                "streamed studies (config.stream) are not servable jobs; "
                "run them via the CLI or api"
            )
        if self.kind is JobKind.RECHECK:
            provider_list = self.config.provider_list
            if provider_list is None or len(provider_list) != 1:
                raise ProtocolError(
                    "a recheck job must name exactly one provider"
                )
        if self.kind is JobKind.SNAPSHOTS and self.config.snapshots < 2:
            raise ProtocolError(
                "a snapshots job needs config.snapshots >= 2"
            )

    def fingerprint(self) -> str:
        """Identity of the *work*: two active requests with equal
        fingerprints would measure the same thing, so the queue runs one.

        Priority and label are presentation, not work — excluded on
        purpose.
        """
        config = self.config.to_dict()
        return f"{stable_hash(self.kind.value, repr(sorted(config.items()))):016x}"

    def to_dict(self) -> dict:
        return {
            "version": PROTOCOL_VERSION,
            "kind": self.kind.value,
            "config": self.config.to_dict(),
            "priority": self.priority,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobRequest":
        _check_version(data, "job request")
        try:
            kind = JobKind(data["kind"])
        except (KeyError, ValueError) as exc:
            raise ProtocolError(
                f"unknown job kind {data.get('kind')!r}; expected one of "
                f"{[k.value for k in JobKind]}"
            ) from exc
        raw_config = data.get("config")
        if not isinstance(raw_config, dict):
            raise ProtocolError("job request needs a 'config' object")
        try:
            config = StudyConfig.from_dict(raw_config)
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"bad study config: {exc}") from exc
        return cls(
            kind=kind,
            config=config,
            priority=int(data.get("priority", 0)),
            label=data.get("label"),
        )


# ----------------------------------------------------------------------
# Job records (persisted by the store, served by GET /jobs/{id})
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JobRecord:
    """One job's durable identity and state.

    Frozen: state transitions produce a new record via :meth:`advance`,
    which keeps every mutation an explicit, persistable step (the store
    writes the record back to ``job.json`` on each one).
    """

    job_id: str
    request: JobRequest
    state: JobState = JobState.QUEUED
    sequence: int = 0
    error: Optional[str] = None
    #: Final execution counters, filled at the terminal transition
    #: (live counters come from the scheduler while running).
    progress: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.state, JobState):
            object.__setattr__(self, "state", JobState(self.state))

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def advance(
        self,
        state: JobState,
        error: Optional[str] = None,
        progress: Optional[dict] = None,
    ) -> "JobRecord":
        return JobRecord(
            job_id=self.job_id,
            request=self.request,
            state=state,
            sequence=self.sequence,
            error=error if error is not None else self.error,
            progress=progress if progress is not None else self.progress,
        )

    def to_dict(self) -> dict:
        return {
            "version": PROTOCOL_VERSION,
            "job_id": self.job_id,
            "request": self.request.to_dict(),
            "state": self.state.value,
            "sequence": self.sequence,
            "error": self.error,
            "progress": dict(self.progress),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobRecord":
        _check_version(data, "job record")
        return cls(
            job_id=data["job_id"],
            request=JobRequest.from_dict(data["request"]),
            state=JobState(data["state"]),
            sequence=int(data.get("sequence", 0)),
            error=data.get("error"),
            progress=dict(data.get("progress") or {}),
        )


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SubmitReply:
    """Answer to ``POST /jobs``."""

    job_id: str
    state: JobState
    deduplicated: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.state, JobState):
            object.__setattr__(self, "state", JobState(self.state))

    def to_dict(self) -> dict:
        return {
            "version": PROTOCOL_VERSION,
            "job_id": self.job_id,
            "state": self.state.value,
            "deduplicated": self.deduplicated,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SubmitReply":
        _check_version(data, "submit reply")
        return cls(
            job_id=data["job_id"],
            state=JobState(data["state"]),
            deduplicated=bool(data.get("deduplicated", False)),
        )


@dataclass(frozen=True)
class JobStatusReply:
    """Answer to ``GET /jobs/{id}``: the record plus live progress."""

    record: JobRecord
    progress: dict = field(default_factory=dict)
    results: tuple[str, ...] = ()  # fetchable result names, e.g. "report"

    def to_dict(self) -> dict:
        return {
            "version": PROTOCOL_VERSION,
            "job": self.record.to_dict(),
            "progress": dict(self.progress),
            "results": list(self.results),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobStatusReply":
        _check_version(data, "job status reply")
        return cls(
            record=JobRecord.from_dict(data["job"]),
            progress=dict(data.get("progress") or {}),
            results=tuple(data.get("results") or ()),
        )


@dataclass(frozen=True)
class ErrorReply:
    """Any non-2xx body."""

    error: str
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "version": PROTOCOL_VERSION,
            "error": self.error,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ErrorReply":
        _check_version(data, "error reply")
        return cls(error=data["error"], detail=data.get("detail", ""))


@dataclass(frozen=True)
class EventsReply:
    """Answer to ``GET /jobs/{id}/events?since=N&wait=S``.

    ``events`` are wire-form bus events (``event`` key names the type,
    ``seq`` is the monotonic cursor); ``next`` is the cursor to pass as
    ``since`` on the following poll.  A terminal ``state`` means the log
    is complete — once the client has drained past it, the stream is
    over and no further polls are needed.
    """

    job_id: str
    state: JobState
    events: tuple[dict, ...] = ()
    next: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.state, JobState):
            object.__setattr__(self, "state", JobState(self.state))

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> dict:
        return {
            "version": PROTOCOL_VERSION,
            "job_id": self.job_id,
            "state": self.state.value,
            "events": list(self.events),
            "next": self.next,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EventsReply":
        _check_version(data, "events reply")
        return cls(
            job_id=data["job_id"],
            state=JobState(data["state"]),
            events=tuple(data.get("events") or ()),
            next=int(data.get("next", 0)),
        )


@dataclass(frozen=True)
class TraceQueryReply:
    """Answer to ``GET /trace/query``."""

    job_id: str
    expression: str
    matches: tuple[dict, ...]
    total_records: int

    def to_dict(self) -> dict:
        return {
            "version": PROTOCOL_VERSION,
            "job_id": self.job_id,
            "expression": self.expression,
            "matches": list(self.matches),
            "total_records": self.total_records,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceQueryReply":
        _check_version(data, "trace query reply")
        return cls(
            job_id=data["job_id"],
            expression=data["expression"],
            matches=tuple(data.get("matches") or ()),
            total_records=int(data.get("total_records", 0)),
        )
