"""The audit daemon: queue + scheduler + store + HTTP, composed.

:class:`AuditDaemon` is the long-running process behind ``repro serve``.
It owns the four serve components and wires their lifecycles together:

- on **start** it recovers every persisted job from the
  :class:`~repro.serve.store.ResultStore` (jobs that were running when a
  previous daemon died re-queue and resume from their checkpoints),
  starts the :class:`~repro.serve.scheduler.JobScheduler`'s dispatcher,
  and binds the HTTP server (port 0 picks an ephemeral port — the bound
  address is ``endpoint``);
- while **serving** it answers the HTTP surface from memory and disk
  only — submissions enqueue, reads never block on running jobs;
- on **SIGTERM/SIGINT** (or :meth:`shutdown`) it drains: the HTTP server
  stops accepting, every running job finishes its in-flight units and
  flushes its checkpoint, interrupted jobs return to ``queued``, and the
  process exits — ``128 + signum`` when a signal initiated it, so
  supervisors can tell a drain from a crash.

Everything the daemon knows survives in the state directory; killing it
at any instant costs at most the units that were mid-flight.
"""

from __future__ import annotations

import signal
import sys
import threading
import time
from typing import Optional

from repro.config import ServeConfig
from repro.obs.metrics import MetricsRegistry
from repro.serve.jobs import JobQueue
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    EventsReply,
    JobRecord,
    JobRequest,
    JobState,
    JobStatusReply,
    SubmitReply,
    TraceQueryReply,
)
from repro.serve.scheduler import JobScheduler
from repro.serve.store import ResultStore


class AuditDaemon:
    """Compose the serve components into one controllable process."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        log=None,
    ) -> None:
        self.config = config or ServeConfig()
        #: Daemon-wide registry: queue/store/scheduler counters live
        #: here; running jobs' obs snapshots merge in at scrape time.
        self.metrics = MetricsRegistry()
        self.store = ResultStore(self.config.state_dir, metrics=self.metrics)
        self.queue = JobQueue(
            on_change=self.store.save_record,
            make_job_id=self.store.next_job_id,
            metrics=self.metrics,
        )
        self.scheduler = JobScheduler(
            self.queue, self.store, self.config, metrics=self.metrics
        )
        self._log = log
        self._server = None
        self._server_thread: Optional[threading.Thread] = None
        self._started = False
        self._started_mono = time.monotonic()
        self._draining = threading.Event()
        self._signal = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Recover persisted jobs, start the scheduler and bind HTTP."""
        from repro.serve.httpapi import build_server

        if self._started:
            raise RuntimeError("daemon already started")
        self._started = True
        for record in self.store.load_records():
            self.queue.restore(record)
        self.scheduler.start()
        self._server = build_server(
            self, self.config.host, self.config.port
        )
        self._server_thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        self._server_thread.start()
        self.log(f"serving on {self.endpoint}, state in {self.store.root}")

    def shutdown(self, drain: bool = True) -> None:
        """Stop HTTP, drain (or abandon) running jobs, stop the pool."""
        if not self._started:
            return
        self._draining.set()
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
        if self._server_thread is not None:
            self._server_thread.join()
        self.scheduler.shutdown(drain=drain)
        self._started = False
        self.log("drained and stopped")

    def serve_forever(self, install_signals: bool = True) -> int:
        """Block until SIGTERM/SIGINT, then drain; returns the exit code.

        The handler only sets an event — the actual drain runs on the
        main thread after the wait returns, so in-flight units finish and
        checkpoints flush no matter which instant the signal hit.
        """
        woken = threading.Event()

        def _on_signal(signum: int, frame: object) -> None:
            self._signal = signum
            woken.set()

        if install_signals:
            signal.signal(signal.SIGTERM, _on_signal)
            signal.signal(signal.SIGINT, _on_signal)
        self._started_mono = time.monotonic()
        self.start()
        woken.wait()
        self.log(
            f"signal {self._signal}: draining "
            f"({self.queue.counts()['running']} job(s) running)"
        )
        self.shutdown(drain=True)
        return 128 + self._signal if self._signal else 0

    @property
    def endpoint(self) -> str:
        """The bound ``http://host:port`` (resolves port 0)."""
        if self._server is None:
            return f"http://{self.config.host}:{self.config.port}"
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    # ------------------------------------------------------------------
    # Operations (what the HTTP layer and tests call)
    # ------------------------------------------------------------------
    def submit(self, request: JobRequest) -> SubmitReply:
        record, deduplicated = self.queue.submit(request)
        return SubmitReply(
            job_id=record.job_id,
            state=record.state,
            deduplicated=deduplicated,
        )

    def status(self, job_id: str) -> JobStatusReply:
        record = self.queue.get(job_id)
        progress = dict(record.progress)
        if record.state is JobState.RUNNING:
            progress.update(self.scheduler.progress(job_id))
        return JobStatusReply(
            record=record,
            progress=progress,
            results=self.store.available_results(job_id),
        )

    def list_jobs(self) -> list[JobStatusReply]:
        return [self.status(record.job_id) for record in self.queue.jobs()]

    def cancel(self, job_id: str) -> Optional[JobRecord]:
        self.queue.get(job_id)  # raises UnknownJobError first
        return self.scheduler.cancel(job_id)

    def result(self, job_id: str, name: str) -> Optional[dict]:
        self.queue.get(job_id)
        return self.store.result(job_id, name)

    def events(
        self, job_id: str, since: int = 0, wait_s: float = 0.0
    ) -> EventsReply:
        """The job's event stream from cursor *since* (long-poll).

        The record's state is read *before* the events: every event is
        published before a job resolves, so a terminal state in the
        reply guarantees the events returned alongside it complete the
        stream — the client can stop polling after draining them.
        """
        record = self.queue.get(job_id)
        log = self.scheduler.event_log(job_id)
        if log is not None:
            events, _ = log.read(
                since, wait_s=0.0 if record.terminal else wait_s
            )
        else:
            events = [
                event
                for event in self.store.load_events(job_id)
                if event.get("seq", 0) >= since
            ]
        return EventsReply(
            job_id=job_id,
            state=record.state,
            events=tuple(events),
            next=since + len(events),
        )

    def top(self, job_id: str) -> dict:
        """The job's dashboard numbers (``GET /jobs/{id}/top``).

        Rebuilt by replaying the job's event log — the live in-memory
        log while it runs, the persisted ``events.jsonl`` afterwards —
        through the same :class:`~repro.runtime.dashboard.DashboardState`
        a local ``--dashboard`` uses, so the remote view and the local
        panel derive identical numbers from identical frames.
        """
        from repro.runtime.dashboard import state_from_events

        self.queue.get(job_id)  # raises UnknownJobError first
        log = self.scheduler.event_log(job_id)
        events = (
            log.records() if log is not None
            else self.store.load_events(job_id)
        )
        payload = state_from_events(events).top()
        payload["job_id"] = job_id
        return payload

    def metrics_registry(self) -> MetricsRegistry:
        """A scrape-time merge of daemon counters + running jobs' obs.

        Gauges are computed here (not maintained incrementally) so the
        scrape always reflects the queue's current truth.
        """
        merged = MetricsRegistry()
        merged.merge(self.metrics.snapshot())
        for snapshot in self.scheduler.metrics_snapshots():
            merged.merge(snapshot)
        counts = self.queue.counts()
        for state, count in counts.items():
            merged.set_gauge(f"serve.jobs.state.{state}", count)
        merged.set_gauge("serve.queue.depth", counts.get("queued", 0))
        merged.set_gauge(
            "serve.uptime_s", time.monotonic() - self._started_mono
        )
        merged.set_gauge("serve.workers", self.config.workers)
        return merged

    def metrics_text(self) -> str:
        """The Prometheus text exposition served at ``GET /metrics``."""
        from repro.obs.export import render_prometheus

        return render_prometheus(self.metrics_registry().snapshot())

    def trace_query(self, job_id: str, expression: str) -> TraceQueryReply:
        from repro.obs.analyze import query_trace
        from repro.obs.trace import read_trace

        self.queue.get(job_id)
        path = self.store.trace_path(job_id)
        if path is None:
            raise FileNotFoundError(job_id)
        # Counted skips (trace.corrupt_lines) land in the daemon registry
        # and therefore in the /metrics exposition.
        records = read_trace(path, metrics=self.metrics)
        matches = query_trace(records, expression)
        return TraceQueryReply(
            job_id=job_id,
            expression=expression,
            matches=tuple(matches),
            total_records=len(records),
        )

    def health(self) -> dict:
        counts = self.queue.counts()
        return {
            "version": PROTOCOL_VERSION,
            "protocol_version": PROTOCOL_VERSION,
            "status": "draining" if self.draining else "ok",
            "workers": self.config.workers,
            "jobs": counts,
            "uptime_s": round(time.monotonic() - self._started_mono, 3),
            "queue_depth": counts.get("queued", 0),
            "active_jobs": counts.get("running", 0),
            "terminal_jobs": sum(
                counts.get(state, 0)
                for state in ("completed", "failed", "cancelled")
            ),
        }

    # ------------------------------------------------------------------
    def log(self, message: str) -> None:
        if self._log is not None:
            self._log(message)
        elif self._log is None and sys.stderr is not None:
            pass  # quiet by default; pass log=print-like for chatter

    def log_http(self, message: str) -> None:
        # Per-request lines are debug noise; route them with the same
        # hook so a verbose daemon can surface them.
        if self._log is not None:
            self._log(f"http: {message}")


__all__ = ["AuditDaemon"]
