"""The daemon's HTTP/JSON surface (stdlib only).

A thin, schema-first edge over :class:`~repro.serve.daemon.AuditDaemon`:
every body is a :mod:`repro.serve.protocol` payload, every handler does
parse -> delegate -> serialize and nothing else.  Built on
``http.server.ThreadingHTTPServer`` so the daemon needs no dependency
beyond the standard library.

Routes::

    GET    /healthz                    liveness + job counts + uptime
    GET    /metrics                    Prometheus text exposition
    POST   /jobs                       submit a JobRequest -> SubmitReply
    GET    /jobs                       every job, newest first
    GET    /jobs/{id}                  JobStatusReply (state + progress)
    GET    /jobs/{id}/events           EventsReply (long-poll stream)
    GET    /jobs/{id}/top              dashboard numbers (progress/rss/stages)
    DELETE /jobs/{id}                  cancel (queued or running)
    GET    /results/{id}/report        stored StudyReport / series dict
    GET    /results/{id}/evidence      explain_document per provider
    GET    /results/{id}/metrics       merged metrics snapshot
    GET    /results/{id}/fingerprint   archive fingerprint record
    GET    /trace/query?job=ID&q=EXPR  trace query over the stored trace

Errors are :class:`~repro.serve.protocol.ErrorReply` bodies with the
matching status code (400 bad payload, 404 unknown job or result, 409
uncancellable state, 503 draining).

Every verb tolerates the client vanishing mid-reply: watch clients are
long-pollers that get killed routinely (Ctrl-C on ``repro client
watch``), and a ``BrokenPipeError`` must neither traceback nor wedge
the handler thread — the connection just closes.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Optional
from urllib.parse import parse_qs, urlsplit

from repro.serve.jobs import UnknownJobError
from repro.serve.protocol import (
    ErrorReply,
    JobRequest,
    ProtocolError,
    TraceQueryReply,
)

if TYPE_CHECKING:
    from repro.serve.daemon import AuditDaemon

_MAX_BODY = 1 << 20  # 1 MiB: a JobRequest is tiny; refuse anything huge.
_MAX_EVENT_WAIT_S = 30.0  # long-poll ceiling; clients re-poll from a cursor


def build_server(
    daemon: "AuditDaemon", host: str, port: int
) -> ThreadingHTTPServer:
    """An HTTP server bound to *host:port* (0 = ephemeral) for *daemon*."""

    class Handler(_ServeHandler):
        pass

    Handler.daemon_ref = daemon
    server = ThreadingHTTPServer((host, port), Handler)
    server.daemon_threads = True
    return server


class _ServeHandler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"
    daemon_ref: "AuditDaemon"  # injected by build_server

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------
    # A client that disconnects mid-reply (a killed watch, a timed-out
    # scraper) raises BrokenPipeError/ConnectionResetError out of
    # wfile.write; swallow it and close — anything else would spam the
    # log and leave the ThreadingHTTPServer thread in a bad state.
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        try:
            self._do_get()
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True

    def do_POST(self) -> None:  # noqa: N802
        try:
            self._do_post()
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True

    def do_DELETE(self) -> None:  # noqa: N802
        try:
            self._do_delete()
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True

    def _do_get(self) -> None:
        url = urlsplit(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["healthz"]:
                self._reply(200, self.daemon_ref.health())
            elif parts == ["metrics"]:
                self._reply_text(200, self.daemon_ref.metrics_text())
            elif parts == ["jobs"]:
                self._reply(
                    200,
                    {
                        "version": 1,
                        "jobs": [
                            reply.to_dict()
                            for reply in self.daemon_ref.list_jobs()
                        ],
                    },
                )
            elif len(parts) == 2 and parts[0] == "jobs":
                self._reply(200, self.daemon_ref.status(parts[1]).to_dict())
            elif (
                len(parts) == 3
                and parts[0] == "jobs"
                and parts[2] == "events"
            ):
                self._job_events(parts[1], parse_qs(url.query))
            elif (
                len(parts) == 3
                and parts[0] == "jobs"
                and parts[2] == "top"
            ):
                self._reply(200, self.daemon_ref.top(parts[1]))
            elif len(parts) == 3 and parts[0] == "results":
                self._get_result(parts[1], parts[2])
            elif parts == ["trace", "query"]:
                self._trace_query(parse_qs(url.query))
            else:
                self._error(404, "not_found", f"no route for {url.path}")
        except UnknownJobError as exc:
            self._error(404, "unknown_job", f"no job {exc.args[0]!r}")

    def _do_post(self) -> None:
        parts = [p for p in urlsplit(self.path).path.split("/") if p]
        if parts != ["jobs"]:
            self._error(404, "not_found", f"no POST route for {self.path}")
            return
        if self.daemon_ref.draining:
            self._error(
                503, "draining", "daemon is shutting down; resubmit later"
            )
            return
        body = self._read_body()
        if body is None:
            return
        try:
            request = JobRequest.from_dict(json.loads(body))
        except json.JSONDecodeError as exc:
            self._error(400, "bad_json", str(exc))
            return
        except ProtocolError as exc:
            self._error(400, "bad_request", str(exc))
            return
        reply = self.daemon_ref.submit(request)
        self._reply(202, reply.to_dict())

    def _do_delete(self) -> None:
        parts = [p for p in urlsplit(self.path).path.split("/") if p]
        if len(parts) != 2 or parts[0] != "jobs":
            self._error(404, "not_found", f"no DELETE route for {self.path}")
            return
        try:
            record = self.daemon_ref.cancel(parts[1])
        except UnknownJobError as exc:
            self._error(404, "unknown_job", f"no job {exc.args[0]!r}")
            return
        if record is None:
            self._error(
                409,
                "not_cancellable",
                "job already reached a terminal state",
            )
            return
        self._reply(200, self.daemon_ref.status(parts[1]).to_dict())

    # ------------------------------------------------------------------
    # Route bodies
    # ------------------------------------------------------------------
    def _get_result(self, job_id: str, name: str) -> None:
        try:
            document = self.daemon_ref.result(job_id, name)
        except KeyError:
            self._error(
                404, "unknown_result",
                f"no result kind {name!r}; see /jobs/{job_id} 'results'",
            )
            return
        if document is None:
            self._error(
                404, "result_not_ready",
                f"job {job_id!r} has no {name!r} result (yet)",
            )
            return
        self._reply(200, document)

    def _job_events(self, job_id: str, query: dict[str, list[str]]) -> None:
        try:
            since = int((query.get("since") or ["0"])[0])
            wait_s = float((query.get("wait") or ["0"])[0])
        except ValueError:
            self._error(
                400, "bad_query",
                "events query takes ?since=<int>&wait=<seconds>",
            )
            return
        # Cap the long-poll below common client/proxy timeouts; the
        # client simply re-polls from its cursor.
        wait_s = max(0.0, min(wait_s, _MAX_EVENT_WAIT_S))
        reply = self.daemon_ref.events(job_id, since=since, wait_s=wait_s)
        self._reply(200, reply.to_dict())

    def _trace_query(self, query: dict[str, list[str]]) -> None:
        job_id = (query.get("job") or [None])[0]
        expression = (query.get("q") or [None])[0]
        if not job_id or expression is None:
            self._error(
                400, "bad_query",
                "trace query needs ?job=<job id>&q=<expression>",
            )
            return
        try:
            reply = self.daemon_ref.trace_query(job_id, expression)
        except UnknownJobError as exc:
            self._error(404, "unknown_job", f"no job {exc.args[0]!r}")
            return
        except FileNotFoundError:
            self._error(
                404, "no_trace",
                f"job {job_id!r} stored no trace (submit with obs.trace)",
            )
            return
        except ValueError as exc:
            self._error(400, "bad_query", str(exc))
            return
        self._reply(200, reply.to_dict())

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _read_body(self) -> Optional[bytes]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > _MAX_BODY:
            self._error(400, "bad_length", "missing or oversized body")
            return None
        return self.rfile.read(length)

    def _reply(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode() + b"\n"
        self._send(status, "application/json", body)

    def _reply_text(self, status: int, text: str) -> None:
        self._send(
            status,
            "text/plain; version=0.0.4; charset=utf-8",
            text.encode(),
        )

    def _send(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, error: str, detail: str) -> None:
        self._reply(status, ErrorReply(error=error, detail=detail).to_dict())

    def log_message(self, format: str, *args: object) -> None:
        # One quiet hook instead of stderr spam; the daemon decides.
        self.daemon_ref.log_http(
            f"{self.address_string()} {format % args}"
        )


__all__ = ["build_server", "TraceQueryReply"]
