"""Command-line interface.

The paper ships its test suite as a tool others can run against arbitrary
VPN services; this CLI is the reproduction's equivalent front door:

    python -m repro list                       # the 62-provider catalogue
    python -m repro audit Seed4.me             # full audit of one provider
    python -m repro study [--max-vps N] [--providers NAME ...]
                          [--source SPEC] [--shards N] [--stream]
                          [--archive DIR] [--workers N] [--resume DIR]
                          [--snapshots N] [--progress] [--profile]
                          [--profile-stages] [--dashboard] [--ledger [PATH]]
                          [--trace FILE] [--metrics] [--metrics-out FILE]
                          [--flight-recorder N]
    python -m repro ledger show ledger.jsonl   # run-ledger telemetry summary
    python -m repro trace summarize out.jsonl  # span-tree / packet summary
    python -m repro trace flows out.jsonl      # per-packet causal hop chains
    python -m repro trace query 'kind=packet_send status=delivered' out.jsonl
    python -m repro trace diff a.jsonl b.jsonl # span-exact run comparison
    python -m repro report explain Seed4.me [--json]  # verdicts + evidence
    python -m repro ecosystem                  # Section 4 statistics
    python -m repro ecosystem generate --providers 1000 --out spec.json
    python -m repro experiments                # table/figure registry
    python -m repro serve [--port N] [--state-dir DIR]   # audit daemon
    python -m repro client submit|status|watch|top|fetch|cancel|list|trace
    python -m repro checkpoint prune DIR       # drop crash-resume state
    python -m repro archive fingerprint DIR    # content hash of an archive

Flags are folded into one frozen :class:`repro.config.StudyConfig`, the
same object the Python API takes — the CLI is a thin argv-to-config shim.

``repro study`` installs a SIGTERM/SIGINT handler that drains instead of
dying: in-flight units finish, the checkpoint flushes, and the process
exits ``128 + signum`` — re-running with the same ``--resume`` directory
continues where it stopped.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Active-measurement audit of (simulated) commercial VPN "
            "services — reproduction of the IMC 2018 VPN ecosystem study."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the 62 catalogued providers")

    audit = sub.add_parser("audit", help="audit one provider")
    audit.add_argument("provider", help="provider name (see 'list')")
    audit.add_argument(
        "--max-vps", type=int, default=5,
        help="vantage points to test fully (default 5)",
    )
    audit.add_argument("--seed", type=int, default=2018)

    study = sub.add_parser("study", help="run the full 62-provider study")
    study.add_argument("--max-vps", type=int, default=5)
    study.add_argument("--seed", type=int, default=2018)
    study.add_argument(
        "--providers", nargs="+", metavar="NAME",
        help="restrict the study to these providers (default: all 62)",
    )
    study.add_argument(
        "--source", metavar="SPEC",
        help="what to measure: 'catalog', 'generated:COUNT[:SEED[:VPS]]', "
             "a spec file written by 'repro ecosystem generate', or a "
             "comma-separated provider list (exclusive with --providers)",
    )
    study.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="split world construction into N provider slices so workers "
             "hold one slice each instead of the whole world (default 1)",
    )
    study.add_argument(
        "--stream", action="store_true",
        help="write the archive incrementally as units finish (flat "
             "memory; requires --archive, excludes --snapshots > 1)",
    )
    study.add_argument(
        "--archive", metavar="DIR",
        help="write per-provider JSON results to this directory",
    )
    study.add_argument(
        "--workers", type=int, default=1,
        help="worker pool size (default 1 = sequential)",
    )
    study.add_argument(
        "--backend", choices=["thread", "process"], default="thread",
        help="worker pool backend (default thread)",
    )
    study.add_argument(
        "--resume", metavar="DIR",
        help="checkpoint directory; completed units found there are "
             "skipped and new ones recorded, so a killed study resumes",
    )
    study.add_argument(
        "--snapshots", type=int, default=1, metavar="N",
        help="run the study N times as a longitudinal schedule and "
             "report verdict changes between snapshots (default 1)",
    )
    study.add_argument(
        "--progress", action="store_true",
        help="print per-unit progress lines to stderr",
    )
    study.add_argument(
        "--profile", action="store_true",
        help="attribute wall-clock to simulator phases (dns/browser/tls/"
             "delivery/analysis) and print the breakdown after the study",
    )
    study.add_argument(
        "--profile-stages", action="store_true", dest="profile_stages",
        help="attribute per-packet delivery cost to stages (route/firewall/"
             "capture/latency/dispatch/encap) and print the table after "
             "the study; sampled, deterministic, <=5%% overhead",
    )
    study.add_argument(
        "--stage-sample", type=int, default=8, metavar="N",
        help="time 1 in N top-level sends under --profile-stages "
             "(counts stay exact; default 8, 1 = time everything)",
    )
    study.add_argument(
        "--dashboard", action="store_true",
        help="render a live in-terminal dashboard (per-shard progress, "
             "units/sec, ETA, worker RSS, hottest stages) on stderr",
    )
    study.add_argument(
        "--ledger", nargs="?", const="auto", metavar="PATH",
        help="persist runtime telemetry (resource samples, unit "
             "completions) as JSONL; bare --ledger writes ledger.jsonl "
             "next to --archive (or the working directory)",
    )
    study.add_argument(
        "--trace", metavar="FILE",
        help="write a deterministic JSONL span trace of the study to FILE "
             "(one span/event per line; see 'repro trace summarize')",
    )
    study.add_argument(
        "--metrics", action="store_true",
        help="collect execution metrics (packets, DNS queries, retries, "
             "per-test wall time) and print the aggregate after the study",
    )
    study.add_argument(
        "--metrics-out", metavar="FILE",
        help="write the merged metrics snapshot as JSON to FILE "
             "(implies metrics collection)",
    )
    study.add_argument(
        "--flight-recorder", type=int, default=0, metavar="N",
        help="keep the last N packet events per host and dump them into "
             "the trace when a connect/retry budget is exhausted",
    )

    trace = sub.add_parser(
        "trace", help="inspect a JSONL trace written by 'study --trace'"
    )
    trace_sub = trace.add_subparsers(dest="trace_cmd", required=True)
    trace_sum = trace_sub.add_parser(
        "summarize", help="span/packet rollup of one trace"
    )
    trace_sum.add_argument("file", help="path to the JSONL trace file")
    trace_flows = trace_sub.add_parser(
        "flows", help="reconstruct per-packet causal hop chains"
    )
    trace_flows.add_argument("file", help="path to the JSONL trace file")
    trace_flows.add_argument(
        "--test", metavar="GLOB",
        help="only tests whose name matches this glob (e.g. 'dns_*')",
    )
    trace_flows.add_argument(
        "--max-flows", type=int, metavar="N",
        help="stop after printing N flows",
    )
    trace_query = trace_sub.add_parser(
        "query", help="filter records with 'key=value' terms (ANDed; "
                      "=/!= glob-match, </<=/>/>= compare numerically)",
    )
    trace_query.add_argument(
        "expression",
        help="e.g. 'kind=packet_send status=no_route host=*client*'",
    )
    trace_query.add_argument("file", help="path to the JSONL trace file")
    trace_diff = trace_sub.add_parser(
        "diff", help="compare two runs span-by-span (exact: seeded span "
                     "IDs align identical logical spans)",
    )
    trace_diff.add_argument("file_a", help="baseline JSONL trace")
    trace_diff.add_argument("file_b", help="candidate JSONL trace")

    ledger = sub.add_parser(
        "ledger", help="inspect a run ledger written by 'study --ledger'"
    )
    ledger_sub = ledger.add_subparsers(dest="ledger_cmd", required=True)
    ledger_show = ledger_sub.add_parser(
        "show", help="summarize one ledger: peak RSS, queue depth, "
                     "shard residency, world-suite LRU hit rate",
    )
    ledger_show.add_argument("file", help="path to the ledger JSONL file")
    ledger_show.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the summary as machine-readable JSON",
    )

    report = sub.add_parser(
        "report", help="explainable views over audit verdicts"
    )
    report_sub = report.add_subparsers(dest="report_cmd", required=True)
    explain = report_sub.add_parser(
        "explain",
        help="audit one provider with tracing on and print the evidence "
             "chain behind every verdict",
    )
    explain.add_argument("provider", help="provider name (see 'list')")
    explain.add_argument("--max-vps", type=int, default=5)
    explain.add_argument("--seed", type=int, default=2018)
    explain.add_argument(
        "--all", action="store_true", dest="show_all",
        help="also print chains for clean (non-flagged) verdicts",
    )
    explain.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the machine-readable evidence document (the same "
             "serialization the service's GET /results/{id}/evidence uses)",
    )

    ecosystem = sub.add_parser(
        "ecosystem",
        help="Section 4 ecosystem stats, or generate a parametric one",
    )
    # Optional subcommand: bare 'repro ecosystem' keeps its historical
    # meaning (the stats table).
    ecosystem_sub = ecosystem.add_subparsers(dest="ecosystem_cmd")
    ecosystem_sub.add_parser(
        "stats", help="print the Section 4 ecosystem stats (the default)"
    )
    generate = ecosystem_sub.add_parser(
        "generate",
        help="write a study-source spec for a generated ecosystem of "
             "fully auditable providers",
    )
    generate.add_argument(
        "--providers", type=int, required=True, metavar="N",
        help="how many providers to generate",
    )
    generate.add_argument(
        "--seed", type=int, default=None, metavar="S",
        help="generator seed (default: follow the study seed)",
    )
    generate.add_argument(
        "--out", required=True, metavar="PATH",
        help="where to write the spec: a .json file, or a directory "
             "that gets ecosystem-spec.json",
    )
    generate.add_argument(
        "--vantage-points", type=int, default=4, metavar="K",
        help="vantage points per generated provider (default 4)",
    )

    sub.add_parser("experiments", help="list the table/figure registry")

    serve = sub.add_parser(
        "serve", help="run the audit service daemon (HTTP/JSON API)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8321,
        help="listen port (0 = pick an ephemeral port; default 8321)",
    )
    serve.add_argument(
        "--state-dir", default="serve-state", metavar="DIR",
        help="durable job/result directory (default ./serve-state)",
    )
    serve.add_argument(
        "--workers", type=int, default=2,
        help="shared worker-pool size for unit execution (default 2)",
    )
    serve.add_argument(
        "--max-active-jobs", type=int, default=2, metavar="N",
        help="jobs running concurrently on the shared pool (default 2)",
    )
    serve.add_argument(
        "--keep-checkpoints", action="store_true",
        help="keep finished jobs' checkpoints instead of pruning them",
    )
    serve.add_argument(
        "--quiet", action="store_true",
        help="suppress the daemon's stderr log lines",
    )

    client = sub.add_parser(
        "client", help="talk to a running 'repro serve' daemon"
    )
    client.add_argument(
        "--endpoint", default="http://127.0.0.1:8321", metavar="URL",
        help="daemon base URL (default http://127.0.0.1:8321)",
    )
    client_sub = client.add_subparsers(dest="client_cmd", required=True)
    submit = client_sub.add_parser(
        "submit",
        help="submit a job; prints the bare job id on stdout "
             "(scripting-friendly: JOB=$(repro client submit ...))",
    )
    submit.add_argument(
        "kind", choices=["study", "recheck", "snapshots"],
        help="job type: full/subset study, single-provider re-check, "
             "or longitudinal snapshot series",
    )
    submit.add_argument(
        "--providers", nargs="+", metavar="NAME",
        help="restrict to these providers (recheck: exactly one)",
    )
    submit.add_argument(
        "--source", metavar="SPEC",
        help="study source spec, same syntax as 'repro study --source' "
             "(exclusive with --providers)",
    )
    submit.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="shard world construction on the daemon (default 1)",
    )
    submit.add_argument("--seed", type=int, default=2018)
    submit.add_argument("--max-vps", type=int, default=5)
    submit.add_argument(
        "--snapshots", type=int, default=1,
        help="snapshot count for a 'snapshots' job (>= 2)",
    )
    submit.add_argument(
        "--priority", type=int, default=0,
        help="higher runs first; equal priorities run in submission order",
    )
    submit.add_argument("--label", help="free-form label for humans")
    submit.add_argument(
        "--trace", action="store_true",
        help="collect a span trace (rechecks always trace)",
    )
    submit.add_argument(
        "--wait", action="store_true",
        help="block until the job finishes; exit 0 only on 'completed'",
    )
    submit.add_argument(
        "--timeout", type=float, default=600.0,
        help="--wait limit in seconds (default 600)",
    )
    status = client_sub.add_parser("status", help="one job's state")
    status.add_argument("job_id")
    watch = client_sub.add_parser(
        "watch",
        help="follow a job's event stream live (replays missed events "
             "first; exits when the job reaches a terminal state)",
    )
    watch.add_argument("job_id")
    watch.add_argument(
        "--since", type=int, default=0, metavar="N",
        help="start cursor (default 0 = replay the full history)",
    )
    watch.add_argument(
        "--timeout", type=float, default=None,
        help="give up after this many seconds (default: wait forever)",
    )
    watch.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit one machine-readable event per line (the same frames "
             "the dashboard consumes) instead of rendered text",
    )
    top = client_sub.add_parser(
        "top",
        help="one job's dashboard numbers (progress, worker RSS, hottest "
             "stages) — the remote view of 'repro study --dashboard'",
    )
    top.add_argument("job_id")
    top.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the raw top document as JSON",
    )
    fetch = client_sub.add_parser(
        "fetch", help="print a stored result document as JSON"
    )
    fetch.add_argument("job_id")
    fetch.add_argument(
        "name", choices=["report", "evidence", "metrics", "fingerprint"],
    )
    cancel = client_sub.add_parser("cancel", help="cancel a job")
    cancel.add_argument("job_id")
    client_sub.add_parser("list", help="every job the daemon knows about")
    ctrace = client_sub.add_parser(
        "trace", help="query a job's stored span trace"
    )
    ctrace.add_argument("job_id")
    ctrace.add_argument(
        "expression",
        help="same syntax as 'repro trace query'",
    )

    checkpoint = sub.add_parser(
        "checkpoint", help="manage crash-resume checkpoints"
    )
    checkpoint_sub = checkpoint.add_subparsers(
        dest="checkpoint_cmd", required=True
    )
    prune = checkpoint_sub.add_parser(
        "prune",
        help="delete checkpoint state: a study --resume directory, or a "
             "serve state directory (prunes every finished job's "
             "checkpoint, never a queued or running one)",
    )
    prune.add_argument("path", help="checkpoint or serve-state directory")

    archive = sub.add_parser(
        "archive", help="operate on study archives"
    )
    archive_sub = archive.add_subparsers(dest="archive_cmd", required=True)
    fingerprint = archive_sub.add_parser(
        "fingerprint",
        help="print the content hash of an archive directory (sha256 over "
             "sorted *.json; what the service and CI compare)",
    )
    fingerprint.add_argument("path", help="archive directory")

    guide = sub.add_parser(
        "guide",
        help="run audits and print the measured vpnselection.guide ranking",
    )
    guide.add_argument(
        "providers", nargs="*",
        help="providers to rank (default: a representative subset)",
    )
    guide.add_argument("--seed", type=int, default=2018)
    return parser


def cmd_list() -> int:
    from repro.reporting.tables import render_table
    from repro.vpn.catalog import build_catalog

    catalog = build_catalog()
    rows = [
        [
            name,
            profile.subscription.value,
            profile.client_type.value,
            len(profile.vantage_points),
            len(profile.virtual_vantage_points()),
        ]
        for name, profile in sorted(catalog.items())
    ]
    print(render_table(
        ["Provider", "Subscription", "Client", "VPs", "Virtual"],
        rows,
        title="Catalogued providers",
    ))
    return 0


def cmd_audit(provider: str, max_vps: int, seed: int) -> int:
    from repro.api import build_study
    from repro.core.harness import TestSuite

    try:
        world = build_study(seed=seed, providers=[provider])
    except KeyError:
        print(f"unknown provider {provider!r}; see 'repro list'",
              file=sys.stderr)
        return 2
    suite = TestSuite(world, max_vantage_points=max_vps)
    report = suite.audit_provider(provider)
    print(report.summary())
    return 0


def cmd_study(
    config,
    archive: Optional[str],
    dashboard: bool = False,
    ledger_path: Optional[str] = None,
) -> int:
    import signal
    import threading

    from repro.runtime.executor import StudyInterrupted

    # Graceful shutdown: SIGTERM/SIGINT set the stop event instead of
    # killing the process mid-unit.  The executor finishes in-flight
    # units, flushes the checkpoint, and raises StudyInterrupted; the
    # process then exits 128+signum, and re-running with the same
    # --resume directory picks up from the last committed unit.
    stop_event = threading.Event()
    received = {"signum": 0}

    def _drain(signum: int, frame: object) -> None:
        received["signum"] = signum
        stop_event.set()

    try:
        previous = {
            signal.SIGTERM: signal.signal(signal.SIGTERM, _drain),
            signal.SIGINT: signal.signal(signal.SIGINT, _drain),
        }
    except ValueError:  # not the main thread (tests); run uninterruptible
        previous = {}

    def _interrupted(exc: StudyInterrupted) -> int:
        print(
            f"\ninterrupted by signal {received['signum']}: "
            f"{exc.completed} unit(s) committed, {exc.remaining} left"
            + (
                f"; resume with --resume {config.checkpoint_dir}"
                if config.checkpoint_dir
                else " (no --resume directory: progress was not saved)"
            ),
            file=sys.stderr,
        )
        return 128 + received["signum"]

    started = time.time()
    try:
        if config.snapshots > 1:
            from repro.api import run_longitudinal_study

            try:
                report = run_longitudinal_study(
                    config=config.replace(archive_dir=archive),
                    stop_event=stop_event,
                )
            except StudyInterrupted as exc:
                return _interrupted(exc)
            print(report.summary())
            print(f"\ncompleted in {time.time() - started:.0f}s")
            if archive:
                print(f"snapshots archived under {archive}")
            if report.interrupted:
                print(
                    f"\nseries interrupted by signal {received['signum']} "
                    f"after {len(report.snapshots)} snapshot(s)",
                    file=sys.stderr,
                )
                return 128 + received["signum"]
            return 0

        from repro.api import run_full_study

        # Telemetry riders: the dashboard subscribes to the run's bus
        # before the study starts; either the ledger or the dashboard
        # turns the background resource sampler on.
        bus = None
        panel = None
        if dashboard:
            from repro.runtime.dashboard import Dashboard
            from repro.runtime.events import EventBus

            bus = EventBus()
            panel = Dashboard(bus, stream=sys.stderr).start()
        try:
            study = run_full_study(
                config=config,
                stop_event=stop_event,
                bus=bus,
                ledger_path=ledger_path,
                sample_interval_s=0.5 if dashboard or ledger_path else None,
            )
        except StudyInterrupted as exc:
            return _interrupted(exc)
        finally:
            if panel is not None:
                panel.stop()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    print(study.summary())
    print(f"\ncompleted in {time.time() - started:.0f}s")
    if ledger_path:
        print(f"ledger written to {ledger_path}")
    if config.stream:
        # run_full_study returned a StreamedStudy: results are already on
        # disk, so there is nothing further to archive or aggregate here.
        print(f"streamed archive at {study.archive_dir}")
        print(f"fingerprint {study.fingerprint()}")
        return 0
    if getattr(study, "obs_metrics", None):
        if config.obs.profile:
            from repro.obs.profile import render_phase_table

            print("\nphase wall-clock attribution:")
            print(render_phase_table(study.obs_metrics))
        if config.obs.stage_profile:
            from repro.obs.stages import render_stage_table

            print()
            print(render_stage_table(study.obs_metrics))
        if config.obs.metrics or config.obs.metrics_path:
            from repro.obs.metrics import MetricsRegistry

            registry = MetricsRegistry()
            registry.merge(study.obs_metrics)
            print("\nexecution metrics:")
            print(registry.render())
    if config.obs.trace_path:
        print(f"trace written to {config.obs.trace_path}")
    if config.obs.metrics_path:
        print(f"metrics written to {config.obs.metrics_path}")
    if archive:
        from repro.core.archive import write_study_archive

        path = write_study_archive(study, archive)
        print(f"archived to {path}")
    return 0


def _load_trace(file: str):
    """Read a trace for the CLI; None (after a stderr message) on failure.

    ``read_trace`` already skips corrupt lines with warnings; the command
    only fails when nothing at all parsed.
    """
    from repro.obs.trace import read_trace

    try:
        records = read_trace(file)
    except OSError as exc:
        print(f"cannot read trace {file!r}: {exc}", file=sys.stderr)
        return None
    if not records:
        print(f"no trace records parsed from {file!r}", file=sys.stderr)
        return None
    return records


def cmd_trace(args) -> int:
    if args.trace_cmd == "diff":
        from repro.obs.analyze import diff_traces, render_diff

        a = _load_trace(args.file_a)
        b = _load_trace(args.file_b)
        if a is None or b is None:
            return 2
        diff = diff_traces(a, b)
        print(render_diff(diff))
        return 0 if diff.empty else 1

    records = _load_trace(args.file)
    if records is None:
        return 2
    if args.trace_cmd == "summarize":
        from repro.obs.trace import summarize_trace

        print(summarize_trace(records))
    elif args.trace_cmd == "flows":
        from repro.obs.analyze import reconstruct_flows, render_flows

        print(
            render_flows(
                reconstruct_flows(records),
                test=args.test,
                max_flows=args.max_flows,
            )
        )
    elif args.trace_cmd == "query":
        import json

        from repro.obs.analyze import query_trace

        try:
            matches = query_trace(records, args.expression)
        except ValueError as exc:
            print(f"bad query: {exc}", file=sys.stderr)
            return 2
        for record in matches:
            print(json.dumps(record, sort_keys=True, separators=(",", ":")))
        print(
            f"{len(matches)} / {len(records)} records matched",
            file=sys.stderr,
        )
    return 0


def cmd_report_explain(
    provider: str,
    max_vps: int,
    seed: int,
    show_all: bool,
    as_json: bool = False,
) -> int:
    from repro.api import explain_provider
    from repro.config import StudyConfig

    try:
        report, trace_records = explain_provider(
            provider,
            config=StudyConfig(seed=seed, max_vantage_points=max_vps),
        )
    except KeyError:
        print(f"unknown provider {provider!r}; see 'repro list'",
              file=sys.stderr)
        return 2
    if as_json:
        # The same serialization path the audit service stores and the
        # HTTP API serves — one schema for humans' scripts everywhere.
        import json

        from repro.obs.evidence import explain_document

        print(json.dumps(
            explain_document(report, trace_records),
            indent=2,
            sort_keys=True,
        ))
        return 0
    print(report.summary())
    chains = report.evidence_chains()
    flagged = 0
    clean = 0
    for hostname in sorted(chains):
        for name, chain in chains[hostname].items():
            if chain.links or chain.notes:
                flagged += 1
            else:
                clean += 1
                if not show_all:
                    continue
            print()
            print(chain.render(trace_records))
    print()
    print(
        f"{flagged} verdict(s) with incriminating evidence, "
        f"{clean} clean"
        + ("" if show_all or not clean else " (--all to show)")
    )
    return 0


def cmd_serve(args) -> int:
    from repro.config import ServeConfig
    from repro.serve.daemon import AuditDaemon

    config = ServeConfig(
        host=args.host,
        port=args.port,
        state_dir=args.state_dir,
        workers=args.workers,
        max_active_jobs=args.max_active_jobs,
        keep_checkpoints=args.keep_checkpoints,
    )
    log = None if args.quiet else (
        lambda message: print(f"repro-serve: {message}", file=sys.stderr)
    )
    daemon = AuditDaemon(config, log=log)
    return daemon.serve_forever()


def _submit_request(args):
    from repro.config import StudyConfig
    from repro.obs.config import ObsConfig
    from repro.serve.protocol import JobKind, JobRequest, ProtocolError
    from repro.source import StudySource

    if args.source and args.providers:
        raise ProtocolError("pass --source or --providers, not both")
    source = None
    if args.source:
        try:
            source = StudySource.parse(args.source)
        except ValueError as exc:
            raise ProtocolError(f"bad --source: {exc}") from exc
    config = StudyConfig(
        seed=args.seed,
        providers=tuple(args.providers) if args.providers else None,
        source=source,
        shards=args.shards,
        max_vantage_points=args.max_vps,
        snapshots=args.snapshots,
        obs=ObsConfig(trace=args.trace),
    )
    return JobRequest(
        kind=JobKind(args.kind),
        config=config,
        priority=args.priority,
        label=args.label,
    )


def cmd_client(args) -> int:
    import json

    from repro.serve.client import ServeClient, ServeError
    from repro.serve.protocol import JobState, ProtocolError

    client = ServeClient(args.endpoint)
    try:
        if args.client_cmd == "submit":
            try:
                request = _submit_request(args)
            except ProtocolError as exc:
                print(f"bad job: {exc}", file=sys.stderr)
                return 2
            reply = client.submit(request)
            if reply.deduplicated:
                print(
                    f"deduplicated onto active job {reply.job_id}",
                    file=sys.stderr,
                )
            # Bare id on stdout: JOB=$(repro client submit study ...)
            print(reply.job_id)
            if not args.wait:
                return 0
            final = client.wait(reply.job_id, timeout_s=args.timeout)
            print(
                f"{reply.job_id}: {final.record.state.value}",
                file=sys.stderr,
            )
            return 0 if final.record.state is JobState.COMPLETED else 1
        if args.client_cmd == "status":
            print(json.dumps(
                client.status(args.job_id).to_dict(),
                indent=2, sort_keys=True,
            ))
            return 0
        if args.client_cmd == "watch":
            from repro.runtime.events import (
                TextProgressRenderer,
                event_from_dict,
            )

            if args.as_json:
                # One wire-form event dict per line — exactly the frames
                # the dashboard consumes, for scripting against long jobs.
                def _render(record: dict) -> None:
                    print(json.dumps(
                        record, sort_keys=True, separators=(",", ":")
                    ))
                    sys.stdout.flush()
            else:
                renderer = TextProgressRenderer(sys.stdout)

                def _render(record: dict) -> None:
                    event = event_from_dict(record)
                    if event is not None:
                        renderer(event)

            final = client.watch(
                args.job_id,
                _render,
                since=args.since,
                timeout_s=args.timeout,
            )
            print(
                f"{args.job_id}: {final.state.value}", file=sys.stderr
            )
            return 0 if final.state is JobState.COMPLETED else 1
        if args.client_cmd == "top":
            top = client.top(args.job_id)
            if args.as_json:
                print(json.dumps(top, indent=2, sort_keys=True))
            else:
                from repro.runtime.dashboard import render_top

                print(f"job      : {top.get('job_id', args.job_id)}")
                print(render_top(top))
            return 0
        if args.client_cmd == "fetch":
            print(json.dumps(
                client.result(args.job_id, args.name),
                indent=2, sort_keys=True,
            ))
            return 0
        if args.client_cmd == "cancel":
            reply = client.cancel(args.job_id)
            print(f"{args.job_id}: {reply.record.state.value}")
            return 0
        if args.client_cmd == "list":
            for reply in client.jobs():
                record = reply.record
                label = record.request.label or record.request.kind.value
                print(
                    f"{record.job_id}  {record.state.value:9s}  "
                    f"prio={record.request.priority}  {label}"
                )
            return 0
        if args.client_cmd == "trace":
            reply = client.trace_query(args.job_id, args.expression)
            for record in reply.matches:
                print(json.dumps(
                    record, sort_keys=True, separators=(",", ":")
                ))
            print(
                f"{len(reply.matches)} / {reply.total_records} "
                f"records matched",
                file=sys.stderr,
            )
            return 0
    except TimeoutError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    except ServeError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return 2  # pragma: no cover


def cmd_ledger_show(file: str, as_json: bool = False) -> int:
    import json

    from repro.obs.sample import ledger_summary, read_ledger, render_ledger

    try:
        entries = read_ledger(file)
    except OSError as exc:
        print(f"cannot read ledger {file!r}: {exc}", file=sys.stderr)
        return 2
    if not entries:
        print(f"no ledger records parsed from {file!r}", file=sys.stderr)
        return 2
    if as_json:
        print(json.dumps(ledger_summary(entries), indent=2, sort_keys=True))
    else:
        print(render_ledger(entries))
    return 0


def cmd_checkpoint_prune(path: str) -> int:
    import pathlib

    root = pathlib.Path(path)
    if not root.exists():
        print(f"no such directory: {path}", file=sys.stderr)
        return 2
    if (root / "jobs").is_dir():
        # A serve state directory: prune every *finished* job's
        # checkpoint, leave queued/running jobs resumable.
        from repro.serve.store import ResultStore

        pruned = ResultStore(root).prune_checkpoints()
        total = sum(pruned.values())
        for job_id, count in sorted(pruned.items()):
            print(f"{job_id}: {count} file(s)")
        print(f"pruned {total} file(s) across {len(pruned)} job(s)")
        return 0
    from repro.runtime.checkpoint import CheckpointStore

    count = CheckpointStore(root).prune()
    print(f"pruned {count} file(s) from {path}")
    return 0


def cmd_archive_fingerprint(path: str) -> int:
    import pathlib

    from repro.core.archive import archive_fingerprint

    root = pathlib.Path(path)
    if not root.is_dir():
        print(f"no such directory: {path}", file=sys.stderr)
        return 2
    print(archive_fingerprint(root))
    return 0


def cmd_ecosystem() -> int:
    from repro.ecosystem import EcosystemAnalysis, generate_ecosystem
    from repro.reporting.tables import render_table

    analysis = EcosystemAnalysis(generate_ecosystem())
    print(render_table(
        ["Subscription", "# of VPNs", "Min $", "Avg $", "Max $"],
        [
            [r.period, r.provider_count, f"{r.min_monthly:.2f}",
             f"{r.avg_monthly:.2f}", f"{r.max_monthly:.2f}"]
            for r in analysis.subscription_table()
        ],
        title="Subscription costs (Table 3)",
    ))
    marketing = analysis.marketing_stats()
    transparency = analysis.transparency_stats()
    print(f"\naffiliate programmes : {marketing['affiliate_programs']}")
    print(f"no privacy policy    : {transparency['without_privacy_policy']}")
    print(f"no terms of service  : "
          f"{transparency['without_terms_of_service']}")
    print(f"'no logs' claims     : {transparency['no_logs_claims']}")
    return 0


def cmd_ecosystem_generate(args) -> int:
    import pathlib

    from repro.source import StudySource

    try:
        source = StudySource.generated(
            args.providers,
            generator_seed=args.seed,
            vantage_points=args.vantage_points,
        )
    except ValueError as exc:
        print(f"bad generated ecosystem: {exc}", file=sys.stderr)
        return 2
    out = pathlib.Path(args.out)
    if out.is_dir() or not out.suffix:
        out = out / "ecosystem-spec.json"
    path = source.write_spec(out)
    names = source.provider_names(study_seed=2018)
    print(f"spec written to {path}")
    print(
        f"{len(names)} providers "
        f"({names[0]} .. {names[-1]}), "
        f"{args.vantage_points} vantage points each"
    )
    print(f"run it with: repro study --source {path}")
    return 0


def cmd_experiments() -> int:
    from repro.reporting.experiments import EXPERIMENTS
    from repro.reporting.tables import render_table

    print(render_table(
        ["Id", "Paper", "Bench", "Description"],
        [
            [e.exp_id, e.paper_ref, e.bench, e.description[:60]]
            for e in EXPERIMENTS
        ],
        title="Experiment registry",
    ))
    return 0


_GUIDE_DEFAULTS = [
    "Mullvad", "ProtonVPN", "Windscribe", "NordVPN", "ExpressVPN",
    "CyberGhost", "Freedome VPN", "HideMyAss", "Seed4.me",
]


def cmd_guide(providers: list[str], seed: int) -> int:
    from repro.api import build_study
    from repro.core.harness import StudyReport, TestSuite
    from repro.core.scoring import build_selection_guide

    names = providers or _GUIDE_DEFAULTS
    try:
        world = build_study(seed=seed, providers=names)
    except KeyError as exc:
        print(f"unknown provider(s): {exc}", file=sys.stderr)
        return 2
    suite = TestSuite(world)
    study = StudyReport()
    for name in names:
        study.providers[name] = suite.audit_provider(name)
    guide = build_selection_guide(study)
    print(guide.render())
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "audit":
        return cmd_audit(args.provider, args.max_vps, args.seed)
    if args.command == "study":
        from repro.config import StudyConfig
        from repro.obs.config import ObsConfig
        from repro.source import StudySource

        if args.source and args.providers:
            print("pass --source or --providers, not both", file=sys.stderr)
            return 2
        if args.stream and not args.archive:
            print("--stream requires --archive", file=sys.stderr)
            return 2
        if args.stream and args.snapshots > 1:
            print("--stream does not apply to --snapshots series",
                  file=sys.stderr)
            return 2
        if args.snapshots > 1 and (args.dashboard or args.ledger):
            print("--dashboard/--ledger do not apply to --snapshots series",
                  file=sys.stderr)
            return 2
        ledger_path = args.ledger
        if ledger_path == "auto":
            # "Alongside the archive": .jsonl, so the archive fingerprint
            # (which hashes *.json) never sees it.
            import pathlib

            base = pathlib.Path(args.archive) if args.archive else (
                pathlib.Path(".")
            )
            ledger_path = str(base / "ledger.jsonl")
        source = None
        if args.source:
            try:
                source = StudySource.parse(args.source)
            except ValueError as exc:
                print(f"bad --source: {exc}", file=sys.stderr)
                return 2
        config = StudyConfig(
            seed=args.seed,
            providers=(
                tuple(args.providers) if args.providers else None
            ),
            source=source,
            shards=args.shards,
            stream=args.stream,
            max_vantage_points=args.max_vps,
            workers=args.workers,
            backend=args.backend,
            checkpoint_dir=args.resume,
            snapshots=args.snapshots,
            progress=args.progress,
            archive_dir=args.archive if args.stream else None,
            obs=ObsConfig(
                trace=bool(args.trace),
                trace_path=args.trace,
                metrics=args.metrics,
                metrics_path=args.metrics_out,
                flight_recorder=args.flight_recorder,
                profile=args.profile,
                stage_profile=args.profile_stages,
                stage_sample=args.stage_sample,
            ),
        )
        return cmd_study(
            config,
            args.archive,
            dashboard=args.dashboard,
            ledger_path=ledger_path,
        )
    if args.command == "trace":
        return cmd_trace(args)
    if args.command == "ledger":
        return cmd_ledger_show(args.file, as_json=args.as_json)
    if args.command == "report":
        return cmd_report_explain(
            args.provider, args.max_vps, args.seed, args.show_all,
            as_json=args.as_json,
        )
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "client":
        return cmd_client(args)
    if args.command == "checkpoint":
        return cmd_checkpoint_prune(args.path)
    if args.command == "archive":
        return cmd_archive_fingerprint(args.path)
    if args.command == "ecosystem":
        if getattr(args, "ecosystem_cmd", None) == "generate":
            return cmd_ecosystem_generate(args)
        return cmd_ecosystem()
    if args.command == "experiments":
        return cmd_experiments()
    if args.command == "guide":
        return cmd_guide(args.providers, args.seed)
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
