"""Command-line interface.

The paper ships its test suite as a tool others can run against arbitrary
VPN services; this CLI is the reproduction's equivalent front door:

    python -m repro list                       # the 62-provider catalogue
    python -m repro audit Seed4.me             # full audit of one provider
    python -m repro study [--max-vps N] [--archive DIR] [--workers N]
                          [--resume DIR] [--snapshots N] [--progress]
                          [--profile]
    python -m repro ecosystem                  # Section 4 statistics
    python -m repro experiments                # table/figure registry
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Active-measurement audit of (simulated) commercial VPN "
            "services — reproduction of the IMC 2018 VPN ecosystem study."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the 62 catalogued providers")

    audit = sub.add_parser("audit", help="audit one provider")
    audit.add_argument("provider", help="provider name (see 'list')")
    audit.add_argument(
        "--max-vps", type=int, default=5,
        help="vantage points to test fully (default 5)",
    )
    audit.add_argument("--seed", type=int, default=2018)

    study = sub.add_parser("study", help="run the full 62-provider study")
    study.add_argument("--max-vps", type=int, default=5)
    study.add_argument("--seed", type=int, default=2018)
    study.add_argument(
        "--archive", metavar="DIR",
        help="write per-provider JSON results to this directory",
    )
    study.add_argument(
        "--workers", type=int, default=1,
        help="worker pool size (default 1 = sequential)",
    )
    study.add_argument(
        "--backend", choices=["thread", "process"], default="thread",
        help="worker pool backend (default thread)",
    )
    study.add_argument(
        "--resume", metavar="DIR",
        help="checkpoint directory; completed units found there are "
             "skipped and new ones recorded, so a killed study resumes",
    )
    study.add_argument(
        "--snapshots", type=int, default=1, metavar="N",
        help="run the study N times as a longitudinal schedule and "
             "report verdict changes between snapshots (default 1)",
    )
    study.add_argument(
        "--progress", action="store_true",
        help="print per-unit progress lines to stderr",
    )
    study.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and print the top 25 functions by "
             "cumulative time after the study completes",
    )

    sub.add_parser("ecosystem", help="print the Section 4 ecosystem stats")
    sub.add_parser("experiments", help="list the table/figure registry")

    guide = sub.add_parser(
        "guide",
        help="run audits and print the measured vpnselection.guide ranking",
    )
    guide.add_argument(
        "providers", nargs="*",
        help="providers to rank (default: a representative subset)",
    )
    guide.add_argument("--seed", type=int, default=2018)
    return parser


def cmd_list() -> int:
    from repro.reporting.tables import render_table
    from repro.vpn.catalog import build_catalog

    catalog = build_catalog()
    rows = [
        [
            name,
            profile.subscription.value,
            profile.client_type.value,
            len(profile.vantage_points),
            len(profile.virtual_vantage_points()),
        ]
        for name, profile in sorted(catalog.items())
    ]
    print(render_table(
        ["Provider", "Subscription", "Client", "VPs", "Virtual"],
        rows,
        title="Catalogued providers",
    ))
    return 0


def cmd_audit(provider: str, max_vps: int, seed: int) -> int:
    from repro.api import build_study
    from repro.core.harness import TestSuite

    try:
        world = build_study(seed=seed, providers=[provider])
    except KeyError:
        print(f"unknown provider {provider!r}; see 'repro list'",
              file=sys.stderr)
        return 2
    suite = TestSuite(world, max_vantage_points=max_vps)
    report = suite.audit_provider(provider)
    print(report.summary())
    return 0


def cmd_study(
    max_vps: int,
    seed: int,
    archive: Optional[str],
    workers: int = 1,
    backend: str = "thread",
    resume: Optional[str] = None,
    snapshots: int = 1,
    progress: bool = False,
    profile: bool = False,
) -> int:
    if profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            return cmd_study(
                max_vps, seed, archive, workers=workers, backend=backend,
                resume=resume, snapshots=snapshots, progress=progress,
            )
        finally:
            profiler.disable()
            stats = pstats.Stats(profiler, stream=sys.stderr)
            stats.sort_stats("cumulative").print_stats(25)

    started = time.time()
    if snapshots > 1:
        from repro.api import run_longitudinal_study

        report = run_longitudinal_study(
            seed=seed,
            snapshots=snapshots,
            max_vantage_points=max_vps,
            workers=workers,
            backend=backend,
            archive_root=archive,
        )
        print(report.summary())
        print(f"\ncompleted in {time.time() - started:.0f}s")
        if archive:
            print(f"snapshots archived under {archive}")
        return 0

    from repro.api import run_full_study

    study = run_full_study(
        seed=seed,
        max_vantage_points=max_vps,
        workers=workers,
        backend=backend,
        checkpoint_dir=resume,
        progress=progress,
    )
    print(study.summary())
    print(f"\ncompleted in {time.time() - started:.0f}s")
    if archive:
        from repro.core.archive import write_study_archive

        path = write_study_archive(study, archive)
        print(f"archived to {path}")
    return 0


def cmd_ecosystem() -> int:
    from repro.ecosystem import EcosystemAnalysis, generate_ecosystem
    from repro.reporting.tables import render_table

    analysis = EcosystemAnalysis(generate_ecosystem())
    print(render_table(
        ["Subscription", "# of VPNs", "Min $", "Avg $", "Max $"],
        [
            [r.period, r.provider_count, f"{r.min_monthly:.2f}",
             f"{r.avg_monthly:.2f}", f"{r.max_monthly:.2f}"]
            for r in analysis.subscription_table()
        ],
        title="Subscription costs (Table 3)",
    ))
    marketing = analysis.marketing_stats()
    transparency = analysis.transparency_stats()
    print(f"\naffiliate programmes : {marketing['affiliate_programs']}")
    print(f"no privacy policy    : {transparency['without_privacy_policy']}")
    print(f"no terms of service  : "
          f"{transparency['without_terms_of_service']}")
    print(f"'no logs' claims     : {transparency['no_logs_claims']}")
    return 0


def cmd_experiments() -> int:
    from repro.reporting.experiments import EXPERIMENTS
    from repro.reporting.tables import render_table

    print(render_table(
        ["Id", "Paper", "Bench", "Description"],
        [
            [e.exp_id, e.paper_ref, e.bench, e.description[:60]]
            for e in EXPERIMENTS
        ],
        title="Experiment registry",
    ))
    return 0


_GUIDE_DEFAULTS = [
    "Mullvad", "ProtonVPN", "Windscribe", "NordVPN", "ExpressVPN",
    "CyberGhost", "Freedome VPN", "HideMyAss", "Seed4.me",
]


def cmd_guide(providers: list[str], seed: int) -> int:
    from repro.api import build_study
    from repro.core.harness import StudyReport, TestSuite
    from repro.core.scoring import build_selection_guide

    names = providers or _GUIDE_DEFAULTS
    try:
        world = build_study(seed=seed, providers=names)
    except KeyError as exc:
        print(f"unknown provider(s): {exc}", file=sys.stderr)
        return 2
    suite = TestSuite(world)
    study = StudyReport()
    for name in names:
        study.providers[name] = suite.audit_provider(name)
    guide = build_selection_guide(study)
    print(guide.render())
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "audit":
        return cmd_audit(args.provider, args.max_vps, args.seed)
    if args.command == "study":
        return cmd_study(
            args.max_vps,
            args.seed,
            args.archive,
            workers=args.workers,
            backend=args.backend,
            resume=args.resume,
            snapshots=args.snapshots,
            progress=args.progress,
            profile=args.profile,
        )
    if args.command == "ecosystem":
        return cmd_ecosystem()
    if args.command == "experiments":
        return cmd_experiments()
    if args.command == "guide":
        return cmd_guide(args.providers, args.seed)
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
