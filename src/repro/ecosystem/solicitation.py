"""The data-broker solicitation study (paper Section 6.2.2).

The authors emailed ~153 providers from a purpose-built domain posing as a
company interested in purchasing user data, offering market-realistic
money, one email per provider, no follow-ups.  Observed responses:

- most common by far: a system-generated ticket, subsequently closed
  without comment;
- explicit refusals ("We literally combat this type of stuff");
- promises to pass the message on for review;
- exactly three tentatively interested responses (an invitation to contact
  a staff member, a request for details, and one "will check your website
  ... if it triggers [my] interest");
- no provider clearly jumped at the offer.

This module reproduces the experiment as a response model over the
ecosystem: each provider has a deterministic response behaviour, shaped so
the aggregate matches the reported distribution.  Providers without a
reachable contact point bounce and are excluded, as in the paper.
"""

from __future__ import annotations

import enum
import hashlib
from collections import Counter
from dataclasses import dataclass, field

from repro.ecosystem.model import EcosystemProvider


class SolicitationResponse(enum.Enum):
    BOUNCED = "bounced"                      # no valid contact point
    NO_REPLY = "no-reply"
    AUTO_TICKET_CLOSED = "auto-ticket-closed"
    EXPLICIT_REFUSAL = "explicit-refusal"
    PASSED_ON = "passed-on-for-review"
    TENTATIVE_INTEREST = "tentative-interest"


# The three tentatively-interested archetypes the paper quotes.
TENTATIVE_DETAILS = (
    "invited us to contact a staff member directly",
    "asked for additional details",
    "will check the website and get back if it triggers interest",
)


@dataclass(frozen=True)
class SolicitationOutcome:
    provider: str
    response: SolicitationResponse
    detail: str = ""


@dataclass
class SolicitationReport:
    """Aggregate outcome of the solicitation campaign."""

    outcomes: list[SolicitationOutcome] = field(default_factory=list)

    @property
    def contacted(self) -> int:
        return sum(
            1 for o in self.outcomes
            if o.response is not SolicitationResponse.BOUNCED
        )

    def counts(self) -> Counter:
        return Counter(
            o.response
            for o in self.outcomes
            if o.response is not SolicitationResponse.BOUNCED
        )

    @property
    def tentatively_interested(self) -> list[SolicitationOutcome]:
        return [
            o for o in self.outcomes
            if o.response is SolicitationResponse.TENTATIVE_INTEREST
        ]

    @property
    def most_common_response(self) -> SolicitationResponse:
        return self.counts().most_common(1)[0][0]

    def summary(self) -> str:
        lines = [f"Contacted {self.contacted} providers (one email each):"]
        for response, count in self.counts().most_common():
            lines.append(f"  {response.value:22s} {count}")
        for outcome in self.tentatively_interested:
            lines.append(f"    -> {outcome.provider}: {outcome.detail}")
        return "\n".join(lines)


def _draw(provider_name: str, seed: int) -> float:
    digest = hashlib.sha256(
        f"solicitation|{seed}|{provider_name}".encode()
    ).digest()
    return int.from_bytes(digest[:4], "big") / 0xFFFFFFFF


def run_solicitation_study(
    providers: list[EcosystemProvider], seed: int = 2018
) -> SolicitationReport:
    """Simulate the campaign over the ecosystem.

    Distribution calibration: 47 of 200 bounce or lack a contact point
    (the paper reached "approximately 153"); of the contacted, the
    auto-ticket path dominates, refusals and pass-ons are a modest
    minority, and exactly three providers show tentative interest.
    """
    report = SolicitationReport()
    ranked = sorted(
        providers,
        key=lambda p: p.popularity_rank
        if p.popularity_rank is not None
        else 10_000,
    )

    # Tentative interest is deterministic: three mid-tail paid services
    # (the paper anonymises them; popularity head providers all refused or
    # ticketed).
    tentative_names = [
        p.name
        for p in ranked
        if p.popularity_rank is not None and p.popularity_rank > 40
        and not p.has_free_tier
    ][:3]

    bounced = 0
    for provider in ranked:
        draw = _draw(provider.name, seed)
        if provider.name in tentative_names:
            index = tentative_names.index(provider.name)
            report.outcomes.append(
                SolicitationOutcome(
                    provider=provider.name,
                    response=SolicitationResponse.TENTATIVE_INTEREST,
                    detail=TENTATIVE_DETAILS[index],
                )
            )
            continue
        # Tail providers are likelier to lack a working contact point.
        rank = provider.popularity_rank or 200
        bounce_probability = 0.08 if rank <= 100 else 0.40
        if bounced < 47 and draw < bounce_probability:
            bounced += 1
            report.outcomes.append(
                SolicitationOutcome(
                    provider=provider.name,
                    response=SolicitationResponse.BOUNCED,
                )
            )
            continue
        if draw < 0.55:
            response = SolicitationResponse.AUTO_TICKET_CLOSED
        elif draw < 0.72:
            response = SolicitationResponse.NO_REPLY
        elif draw < 0.88:
            response = SolicitationResponse.EXPLICIT_REFUSAL
            detail = "did you even read what our company does?"
        else:
            response = SolicitationResponse.PASSED_ON
        report.outcomes.append(
            SolicitationOutcome(
                provider=provider.name,
                response=response,
                detail=(
                    "message passed on to the proper team"
                    if response is SolicitationResponse.PASSED_ON
                    else ""
                ),
            )
        )
    return report
