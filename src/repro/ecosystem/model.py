"""The ecosystem provider record (the mined-metadata schema of Section 4)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class PaymentMethod(enum.Enum):
    # Credit cards
    VISA = "Visa"
    MASTERCARD = "MC"
    AMEX = "Amex"
    # Online payments
    PAYPAL = "Paypal"
    ALIPAY = "Alipay"
    WEBMONEY = "WM"
    # Cryptocurrencies
    BITCOIN = "Bitcoin"
    ETHEREUM = "ETH"
    LITECOIN = "Lite"

    @property
    def category(self) -> str:
        if self in (PaymentMethod.VISA, PaymentMethod.MASTERCARD,
                    PaymentMethod.AMEX):
            return "credit-card"
        if self in (PaymentMethod.PAYPAL, PaymentMethod.ALIPAY,
                    PaymentMethod.WEBMONEY):
            return "online"
        return "cryptocurrency"


class Platform(enum.Enum):
    WINDOWS = "Windows"
    MACOS = "macOS"
    LINUX = "Linux"
    ANDROID = "Android"
    IOS = "iOS"
    BROWSER_EXTENSION = "Browser"


@dataclass
class SubscriptionPlan:
    """A plan with its effective monthly cost in USD."""

    period: str         # monthly | quarterly | semiannual | annual | lifetime
    monthly_cost: float
    total_cost: float


@dataclass
class EcosystemProvider:
    """Everything Section 4 mines from one provider's website."""

    name: str
    founded: int
    business_country: str
    claimed_server_count: int
    claimed_country_count: int
    vantage_countries: tuple[str, ...] = ()
    plans: list[SubscriptionPlan] = field(default_factory=list)
    has_free_tier: bool = False
    has_trial: bool = False
    refund_days: Optional[int] = None
    payment_methods: tuple[PaymentMethod, ...] = ()
    protocols: tuple[str, ...] = ()
    platforms: tuple[Platform, ...] = ()
    has_privacy_policy: bool = True
    privacy_policy_words: Optional[int] = None
    has_terms_of_service: bool = True
    claims_no_logs: bool = False
    has_affiliate_program: bool = False
    has_facebook: bool = False
    has_twitter: bool = False
    mentions_kill_switch: bool = False
    offers_vpn_over_tor: bool = False
    allows_p2p: bool = False
    browser_extension_only: bool = False
    popularity_rank: Optional[int] = None  # 1 = most popular
    review_languages: int = 1

    # ------------------------------------------------------------------
    def plan(self, period: str) -> Optional[SubscriptionPlan]:
        for plan in self.plans:
            if plan.period == period:
                return plan
        return None

    @property
    def monthly_price(self) -> Optional[float]:
        plan = self.plan("monthly")
        return plan.monthly_cost if plan else None

    @property
    def is_cheap(self) -> bool:
        """Monthly cost under the paper's $3.99 'cheap' threshold."""
        price = self.monthly_price
        return price is not None and price < 3.99

    @property
    def accepts_credit_cards(self) -> bool:
        return any(m.category == "credit-card" for m in self.payment_methods)

    @property
    def accepts_online_payments(self) -> bool:
        return any(m.category == "online" for m in self.payment_methods)

    @property
    def accepts_cryptocurrency(self) -> bool:
        return any(
            m.category == "cryptocurrency" for m in self.payment_methods
        )
