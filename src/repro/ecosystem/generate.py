"""Calibrated synthesis of the 200-provider ecosystem.

Every marginal statistic Section 4 reports is reproduced by construction:

- founding years (90 % of the top-50 popular services founded after 2005;
  the oldest — HideMyAss, IPVanish, StrongVPN, Ironsocket — in 2005);
- business locations (US/GB/DE/SE/CA heavy; two providers in China; a
  handful in Seychelles/Belize; NordVPN in Panama);
- claimed server counts (80 % at 750 or fewer; the popular services in the
  2,000–4,000 band — Figure 2);
- subscription plans (Table 3: 161 monthly / 55 quarterly / 57 semiannual /
  134 annual, with the reported min/avg/max monthly-equivalent costs, plus
  19 services with multi-year or lifetime deals);
- payment methods (61 % cards, 59 % online, 46 % crypto, 32 % crypto+online
  without cards — Figure 4);
- tunneling protocols (OpenVPN and PPTP majorities — Figure 5);
- platforms (87 % Windows+macOS, 61 % Linux, 56 % Android+iOS);
- transparency (50 without a privacy policy, 85 without ToS, policy lengths
  70–10,965 words averaging 1,340, 45 claiming "no logs");
- marketing (126 Facebook, 131 Twitter, 88 affiliate programmes);
- features (18 kill-switch mentions, 10 VPN-over-Tor, 64 P2P-friendly);
- 45 % with a free tier or trial; 7-day refunds the most common (40 %).

The 62 actively-tested providers of Appendix A occupy the head of the
popularity ranking, with their catalogue metadata carried over.
"""

from __future__ import annotations

import random
from repro.ecosystem.model import (
    EcosystemProvider,
    PaymentMethod,
    Platform,
    SubscriptionPlan,
)
from repro.vpn.catalog import POPULAR_SERVICES, provider_profiles
from repro.vpn.provider import SubscriptionType

TOTAL_PROVIDERS = 200

# Figure 1's business-location weighting (country -> expected providers).
_BUSINESS_COUNTRIES: list[tuple[str, int]] = [
    ("US", 46), ("GB", 22), ("DE", 12), ("SE", 10), ("CA", 10),
    ("NL", 8), ("RO", 7), ("CH", 7), ("HK", 8), ("SG", 6),
    ("AU", 5), ("FR", 5), ("CY", 4), ("IL", 3), ("RU", 3),
    ("SC", 4), ("BZ", 3), ("PA", 3), ("CN", 2), ("VG", 3),
    ("MY", 3), ("CZ", 2), ("IT", 2), ("ES", 2), ("BG", 2),
    ("EE", 2), ("GI", 2), ("UA", 2), ("IN", 2), ("JP", 2),
    ("FI", 2), ("NO", 2), ("GR", 2), ("PL", 2), ("IE", 2),
    ("AT", 1), ("BE", 1), ("DK", 1), ("HU", 1), ("KR", 1),
    ("LU", 1), ("LV", 1), ("MD", 1), ("MT", 1), ("MU", 1),
    ("NZ", 1), ("PT", 1), ("SK", 1), ("TR", 1), ("ZA", 1),
]

_SYNTH_NAME_STEMS = [
    "Shield", "Ghost", "Falcon", "Aurora", "Titan", "Nimbus", "Vertex",
    "Sentry", "Cipher", "Raven", "Comet", "Zephyr", "Atlas", "Nova",
    "Harbor", "Summit", "Drift", "Ember", "Quartz", "Onyx", "Delta",
    "Mirage", "Pioneer", "Beacon", "Orbit", "Glacier", "Krypt", "Vault",
    "Stealth", "Horizon", "Pulse", "Rocket", "Breeze", "Fortress", "Lynx",
]
_SYNTH_NAME_SUFFIXES = ["VPN", "Net", "Proxy", "Tunnel", "Secure", "Privacy"]


def _solve_price_exponent(
    minimum: float, maximum: float, mean: float, count: int
) -> float:
    """Exponent k such that min + (max-min) * u^k has the target mean.

    Prices are laid out on deterministic quantiles u in (0, 1); bisection
    on k shapes the distribution so the sample mean matches the paper's.
    """
    quantiles = [(i + 0.5) / count for i in range(count)]

    def mean_for(k: float) -> float:
        return sum(minimum + (maximum - minimum) * u ** k for u in quantiles) / count

    low, high = 0.05, 20.0
    for _ in range(80):
        mid = (low + high) / 2.0
        if mean_for(mid) > mean:
            low = mid  # larger k pushes mass toward the minimum
        else:
            high = mid
    return (low + high) / 2.0


def _price_series(
    minimum: float, maximum: float, mean: float, count: int,
    rng: random.Random,
) -> list[float]:
    """*count* prices with exact min/max and calibrated mean."""
    if count == 1:
        return [round(mean, 2)]
    k = _solve_price_exponent(minimum, maximum, mean, count)
    prices = [
        round(minimum + (maximum - minimum) * ((i + 0.5) / count) ** k, 2)
        for i in range(count)
    ]
    prices[0] = minimum
    prices[-1] = maximum
    rng.shuffle(prices)
    return prices


def _founding_year(rank: int, rng: random.Random) -> int:
    if rank in (0, 1, 2, 3):
        return 2005  # HideMyAss, IPVanish, StrongVPN, Ironsocket vintage
    if rank < 50:
        # 90 % of the top-50 founded after 2005.
        return 2006 + rng.randrange(0, 11) if rng.random() < 0.9 else 2003
    return 2006 + rng.randrange(0, 11)


def _business_country_sequence() -> list[str]:
    sequence: list[str] = []
    for country, weight in _BUSINESS_COUNTRIES:
        sequence.extend([country] * weight)
    return sequence[:TOTAL_PROVIDERS]


def _claimed_servers(rank: int, rng: random.Random) -> int:
    # Figure 2: 80 % of providers claim <= 750 servers; the popular ones
    # claim 2,000-4,000.
    if rank < 8:
        return rng.randrange(2000, 4001, 50)
    if rank < 40:
        return rng.randrange(300, 1500, 10)
    if rng.random() < 0.85:
        return rng.randrange(5, 751, 5)
    return rng.randrange(751, 1800, 10)


_PROTOCOL_TARGETS = [
    # Figure 5 shape: OpenVPN ~140, PPTP ~120, IPsec ~100, SSTP ~45,
    # SSL ~30, SSH ~25.
    ("OpenVPN", 140),
    ("PPTP", 120),
    ("IPsec", 100),
    ("SSTP", 45),
    ("SSL", 30),
    ("SSH", 25),
]


def generate_ecosystem(seed: int = 2018) -> list[EcosystemProvider]:
    """The calibrated 200-provider list, deterministic in *seed*."""
    rng = random.Random(seed)
    tested = provider_profiles()
    providers: list[EcosystemProvider] = []

    # Names: the review-site popularity head first (the paper's top-15),
    # then the rest of the 62 tested services, then synthetic tails.
    names = list(POPULAR_SERVICES)
    names += [p.name for p in tested if p.name not in POPULAR_SERVICES]
    stem_pairs = [
        f"{stem}{suffix}"
        for stem in _SYNTH_NAME_STEMS
        for suffix in _SYNTH_NAME_SUFFIXES
    ]
    rng.shuffle(stem_pairs)
    for name in stem_pairs:
        if len(names) >= TOTAL_PROVIDERS:
            break
        if name not in names:
            names.append(name)

    countries = _business_country_sequence()
    rng.shuffle(countries)

    tested_by_name = {p.name: p for p in tested}
    for rank, name in enumerate(names):
        profile = tested_by_name.get(name)
        if profile is not None:
            business = profile.business_country
            founded = profile.founded
            servers = profile.claimed_server_count
            claimed_countries = profile.claimed_country_count
            vantage_countries = tuple(
                sorted({s.claimed_country for s in profile.vantage_points})
            )
        else:
            business = countries[rank % len(countries)]
            founded = _founding_year(rank, rng)
            servers = _claimed_servers(rank, rng)
            claimed_countries = max(
                1, min(100, int(servers ** 0.55) + rng.randrange(0, 12))
            )
            vantage_countries = ()
        # NordVPN's Panama headquarters is called out in the paper.
        if name == "NordVPN":
            business = "PA"
        providers.append(
            EcosystemProvider(
                name=name,
                founded=founded,
                business_country=business,
                claimed_server_count=servers,
                claimed_country_count=claimed_countries,
                vantage_countries=vantage_countries,
                popularity_rank=rank + 1,
            )
        )

    _enforce_location_facts(providers)
    _assign_plans(providers, rng, tested_by_name)
    _assign_payments(providers, rng)
    _assign_protocols(providers, rng, tested_by_name)
    _assign_platforms(providers, rng, tested_by_name)
    _assign_transparency(providers, rng)
    _assign_marketing(providers, rng)
    return providers


# ---------------------------------------------------------------------------
# Attribute assignment passes (each calibrated to a Section 4 statistic).
# ---------------------------------------------------------------------------
def _enforce_location_facts(providers: list[EcosystemProvider]) -> None:
    """Pin the exact location facts Section 4 calls out.

    Exactly two providers claim a Chinese business location (the paper
    names FreeVPN Ninja and Seed4.me; Seed4.me is in our tested set), and
    Seychelles/Belize each host at least a couple of services.
    """
    chinese = [p for p in providers if p.business_country == "CN"]
    keep: list[EcosystemProvider] = [
        p for p in chinese if p.name == "Seed4.me"
    ]
    for provider in chinese:
        if provider.name != "Seed4.me" and len(keep) < 2:
            keep.append(provider)
    for provider in chinese:
        if provider not in keep:
            provider.business_country = "HK"
    if len(keep) < 2:
        for provider in providers:
            if provider.business_country == "HK" and provider not in keep:
                provider.business_country = "CN"
                keep.append(provider)
                if len(keep) == 2:
                    break
    for country in ("SC", "BZ"):
        have = sum(1 for p in providers if p.business_country == country)
        for provider in reversed(providers):
            if have >= 2:
                break
            if (
                provider.business_country == "US"
                and provider.popularity_rank is not None
                and provider.popularity_rank > 62
            ):
                provider.business_country = country
                have += 1



def _assign_plans(
    providers: list[EcosystemProvider],
    rng: random.Random,
    tested_by_name: dict,
) -> None:
    indices = list(range(len(providers)))

    monthly_idx = rng.sample(indices, 161)
    monthly_prices = _price_series(0.99, 29.95, 10.10, 161, rng)
    for index, price in zip(monthly_idx, monthly_prices):
        providers[index].plans.append(
            SubscriptionPlan("monthly", price, price)
        )

    quarterly_idx = rng.sample(indices, 55)
    quarterly_prices = _price_series(2.20, 18.33, 6.71, 55, rng)
    for index, price in zip(quarterly_idx, quarterly_prices):
        providers[index].plans.append(
            SubscriptionPlan("quarterly", price, round(price * 3, 2))
        )

    semi_idx = rng.sample(indices, 57)
    semi_prices = _price_series(2.00, 16.33, 6.81, 57, rng)
    for index, price in zip(semi_idx, semi_prices):
        providers[index].plans.append(
            SubscriptionPlan("semiannual", price, round(price * 6, 2))
        )

    annual_idx = rng.sample(indices, 134)
    annual_prices = _price_series(0.38, 12.83, 4.80, 134, rng)
    for index, price in zip(annual_idx, annual_prices):
        providers[index].plans.append(
            SubscriptionPlan("annual", price, round(price * 12, 2))
        )

    # 19 services with beyond-annual deals; CrypticVPN and HideMyIP offer
    # lifetime access at $25 and $35.
    beyond = rng.sample(indices, 19)
    for position, index in enumerate(beyond):
        provider = providers[index]
        if position == 0:
            provider.plans.append(SubscriptionPlan("lifetime", 0.0, 25.0))
        elif position == 1:
            provider.plans.append(SubscriptionPlan("lifetime", 0.0, 35.0))
        else:
            years = rng.choice([2, 2, 3, 5])
            monthly = round(rng.uniform(1.0, 4.0), 2)
            provider.plans.append(
                SubscriptionPlan(
                    f"{years}-year", monthly, round(monthly * 12 * years, 2)
                )
            )

    # 45 % free or trial; tested providers keep their catalogue type.
    free_trial_target = int(0.45 * len(providers))
    flagged = 0
    for provider in providers:
        profile = tested_by_name.get(provider.name)
        if profile is not None:
            if profile.subscription is SubscriptionType.FREE:
                provider.has_free_tier = True
                flagged += 1
            elif profile.subscription is SubscriptionType.TRIAL:
                provider.has_trial = True
                flagged += 1
    for provider in providers:
        if flagged >= free_trial_target:
            break
        if provider.name in tested_by_name:
            continue
        if provider.has_free_tier or provider.has_trial:
            continue
        if rng.random() < 0.5:
            provider.has_free_tier = True
        else:
            provider.has_trial = True
        flagged += 1

    # Refunds range from 24 hours to 60 days; the 7-day refund is the most
    # common, offered by exactly 40 % of the services.
    refund_choices = [1, 2, 3, 14, 30, 45, 60]
    refund_idx = rng.sample(indices, 136)  # 80 seven-day + 56 other
    for position, index in enumerate(refund_idx):
        if position < 80:
            providers[index].refund_days = 7
        else:
            providers[index].refund_days = rng.choice(refund_choices)


def _assign_payments(
    providers: list[EcosystemProvider], rng: random.Random
) -> None:
    """Card/online/crypto acceptance with Figure 4's joint structure."""
    n = len(providers)
    # Targets: 61 % cards, 59 % online, 46 % crypto, 32 % online+crypto
    # without cards. With OC fixed at 64 (=32 %), the joint solution is:
    #   cards    = C_only + CO + CC + CO_CC          = 122 (61 %)
    #   online   = CO + CO_CC + OC                   = 118 (59 %)
    #   crypto   = CC + CO_CC + OC                   =  92 (46 %)
    cells = (
        [("C_only", 54)]     # cards only
        + [("CO", 40)]       # cards + online
        + [("CC", 14)]       # cards + crypto
        + [("CO_CC", 14)]    # cards + online + crypto
        + [("OC", 64)]       # online + crypto, no cards (32 %)
        + [("none", 14)]     # niche/opaque services
    )
    assignments: list[str] = []
    for label, count in cells:
        assignments.extend([label] * count)
    assignments = assignments[:n]
    rng.shuffle(assignments)

    for provider, label in zip(providers, assignments):
        methods: list[PaymentMethod] = []
        has_cards = label in ("C_only", "CO", "CC", "CO_CC")
        has_online = label in ("CO", "CO_CC", "OC")
        has_crypto = label in ("CC", "CO_CC", "OC")
        if has_cards:
            methods.append(PaymentMethod.VISA)
            methods.append(PaymentMethod.MASTERCARD)
            if rng.random() < 0.6:
                methods.append(PaymentMethod.AMEX)
        if has_online:
            methods.append(PaymentMethod.PAYPAL)
            if rng.random() < 0.35:
                methods.append(PaymentMethod.ALIPAY)
            if rng.random() < 0.25:
                methods.append(PaymentMethod.WEBMONEY)
        if has_crypto:
            methods.append(PaymentMethod.BITCOIN)
            if rng.random() < 0.40:
                methods.append(PaymentMethod.ETHEREUM)
            if rng.random() < 0.30:
                methods.append(PaymentMethod.LITECOIN)
        provider.payment_methods = tuple(methods)


def _assign_protocols(
    providers: list[EcosystemProvider],
    rng: random.Random,
    tested_by_name: dict,
) -> None:
    n = len(providers)
    for protocol, target in _PROTOCOL_TARGETS:
        # Tested providers contribute their catalogue protocols first.
        have = [
            p for p in providers
            if protocol in _normalised_protocols(p, tested_by_name)
        ]
        need = target - len(have)
        candidates = [
            p for p in providers
            if protocol not in _normalised_protocols(p, tested_by_name)
            and p.name not in tested_by_name
        ]
        rng.shuffle(candidates)
        for provider in candidates[: max(0, need)]:
            provider.protocols = provider.protocols + (protocol,)
    # Fold the tested providers' catalogue protocols into the record.
    for provider in providers:
        profile = tested_by_name.get(provider.name)
        if profile is not None:
            merged = set(provider.protocols)
            merged.update(_map_protocols(profile.protocols))
            provider.protocols = tuple(sorted(merged))
        elif not provider.protocols:
            provider.protocols = ("OpenVPN",)


def _map_protocols(protocols: tuple[str, ...]) -> list[str]:
    """Catalogue protocol names -> Figure 5 categories."""
    out = []
    for protocol in protocols:
        if protocol in ("L2TP/IPsec", "IPsec/IKEv2"):
            out.append("IPsec")
        elif protocol in ("OpenVPN", "PPTP", "SSTP", "SSL", "SSH"):
            out.append(protocol)
    return out


def _normalised_protocols(
    provider: EcosystemProvider, tested_by_name: dict
) -> set[str]:
    profile = tested_by_name.get(provider.name)
    merged = set(provider.protocols)
    if profile is not None:
        merged.update(_map_protocols(profile.protocols))
    return merged


def _assign_platforms(
    providers: list[EcosystemProvider],
    rng: random.Random,
    tested_by_name: dict,
) -> None:
    n = len(providers)
    desktop_both = set(rng.sample(range(n), int(0.87 * n)))
    linux = set(rng.sample(sorted(desktop_both), int(0.61 * n)))
    mobile_both = set(rng.sample(range(n), int(0.56 * n)))
    extension_only = set(
        rng.sample([i for i in range(n) if i not in desktop_both], 5)
    )
    for index, provider in enumerate(providers):
        platforms: list[Platform] = []
        if index in extension_only:
            provider.browser_extension_only = True
            provider.platforms = (Platform.BROWSER_EXTENSION,)
            continue
        if index in desktop_both:
            platforms += [Platform.WINDOWS, Platform.MACOS]
        else:
            platforms.append(Platform.WINDOWS)
        if index in linux:
            platforms.append(Platform.LINUX)
        if index in mobile_both:
            platforms += [Platform.ANDROID, Platform.IOS]
        provider.platforms = tuple(platforms)


def _assign_transparency(
    providers: list[EcosystemProvider], rng: random.Random
) -> None:
    n = len(providers)
    no_policy = set(rng.sample(range(n), 50))
    no_tos = set(rng.sample(range(n), 85))
    no_logs = set(rng.sample(range(n), 45))

    # Policy lengths: 70..10,965 words, mean 1,340 (same calibration trick
    # as prices). Only providers *with* a policy have a length.
    with_policy = [i for i in range(n) if i not in no_policy]
    lengths = _price_series(70, 10965, 1340, len(with_policy), rng)
    for index, length in zip(with_policy, lengths):
        providers[index].privacy_policy_words = int(length)

    for index, provider in enumerate(providers):
        provider.has_privacy_policy = index not in no_policy
        if not provider.has_privacy_policy:
            provider.privacy_policy_words = None
        provider.has_terms_of_service = index not in no_tos
        provider.claims_no_logs = index in no_logs


def _assign_marketing(
    providers: list[EcosystemProvider], rng: random.Random
) -> None:
    n = len(providers)
    facebook = set(rng.sample(range(n), 126))
    twitter = set(rng.sample(range(n), 131))
    affiliates = set(rng.sample(range(n), 88))
    kill_switch = set(rng.sample(range(n), 18))
    vpn_over_tor = set(rng.sample(range(n), 10))
    p2p = set(rng.sample(range(n), 64))
    # Multi-language reviews (Table 2 category, 53 providers).
    multilang = set(rng.sample(range(n), 53))
    for index, provider in enumerate(providers):
        provider.has_facebook = index in facebook
        provider.has_twitter = index in twitter
        provider.has_affiliate_program = index in affiliates
        provider.mentions_kill_switch = index in kill_switch
        provider.offers_vpn_over_tor = index in vpn_over_tor
        provider.allows_p2p = index in p2p
        provider.review_languages = (
            rng.randrange(2, 7) if index in multilang else 1
        )


# ---------------------------------------------------------------------------
# Parametric *auditable* providers (ecosystem scale-out).
#
# Everything above synthesises catalogue *metadata* (Section 4's marginal
# statistics).  The functions below go further: they generate full
# ground-truth :class:`~repro.vpn.provider.ProviderProfile` objects — seeded
# catalogue entries, behaviour assignments and vantage-point topologies —
# that :class:`repro.world.World` can realise into live, auditable
# endpoints.  Behaviour rates are calibrated to the paper's observed
# fractions over the 62 tested services (proxying ~8%, injection ~2%,
# IPv6 leaks ~19%, DNS leaks ~3%, virtual locations ~10% of providers).
#
# Address space: generated providers draw from 11.0.0.0/8, untouched by the
# simulation's baseline internet (the catalogue uses real-world hosting
# ranges; transit routers sit in 100.64.0.0/10).  Provider slot ``b`` owns
# ``11.(b>>8).(b&255).0/24``; a deterministic ~20% of adjacent provider
# pairs share one /24 (with disjoint last octets) so the
# shared-infrastructure analysis has structure to find at any scale.
# ---------------------------------------------------------------------------

from typing import Iterable, Optional, Sequence  # noqa: E402

from repro.net.geo import country_centroid  # noqa: E402
from repro.vpn.catalog import (  # noqa: E402
    AMERICAS,
    APAC,
    EU_CORE,
    MEA,
    _asn_for_block,
    _city_for_country,
    _stable_hash,
    catalog_names,
)
from repro.vpn.provider import (  # noqa: E402
    BehaviorFlags,
    ClientType,
    FailureMode,
    LeakFlags,
    ProviderProfile,
    VantagePointSpec,
)

#: Countries generated vantage points may claim, in rotation order.
_GEN_COUNTRY_POOL: tuple[str, ...] = tuple(
    AMERICAS + EU_CORE + APAC + MEA
)

#: Physical hub cities virtual endpoints actually live in (cf. the
#: catalogue's HideMyAss layout: a handful of data centres serving
#: hundreds of claimed locations).
_GEN_HUBS = ("Prague", "London", "Seattle", "Berlin")

#: Censoring countries and the block page physically-hosted endpoints
#: there sit behind (Table 4 destinations).
_GEN_CENSORSHIP = {
    "TR": "tr-telecom",
    "KR": "kr-warning",
    "TH": "th-ip",
    "RU": "ru-ttk",
    "NL": "nl-ip",
}

_GEN_PROTOCOL_SETS = (
    ("OpenVPN",),
    ("OpenVPN", "PPTP"),
    ("OpenVPN", "PPTP", "L2TP/IPsec"),
    ("OpenVPN", "PPTP", "L2TP/IPsec", "IPsec/IKEv2"),
    ("OpenVPN", "IPsec/IKEv2"),
)


def generated_provider_name(index: int, seed: int = 2018) -> str:
    """The name of generated provider *index* (unique per index)."""
    stem = _SYNTH_NAME_STEMS[
        _stable_hash("gen-stem", seed, index) % len(_SYNTH_NAME_STEMS)
    ]
    suffix = _SYNTH_NAME_SUFFIXES[
        _stable_hash("gen-suffix", seed, index) % len(_SYNTH_NAME_SUFFIXES)
    ]
    return f"{stem}{suffix}-{index:04d}"


def _generated_block(index: int, seed: int) -> tuple[str, int]:
    """The /24 for provider *index* and its last-octet parity offset.

    Odd-indexed providers join their even neighbour's /24 for ~20% of
    pairs; sharers interleave last octets so addresses never collide.
    """
    shared = (
        index % 2 == 1
        and _stable_hash("gen-share", seed, index // 2) % 100 < 20
    )
    base = index - 1 if shared else index
    block = f"11.{(base >> 8) & 255}.{base & 255}.0/24"
    return block, (1 if shared else 0)


def generate_provider_profile(
    index: int, seed: int = 2018, vantage_points: int = 4
) -> ProviderProfile:
    """Ground truth for one generated provider, pure in its arguments."""
    name = generated_provider_name(index, seed)
    slug = name.lower()

    def h(*parts: object) -> int:
        return _stable_hash("gen", seed, index, *parts)

    block, parity = _generated_block(index, seed)
    asn = _asn_for_block(block)
    prefix = block.rsplit(".", 1)[0]  # "11.x.y"

    pool = _GEN_COUNTRY_POOL
    start = h("pool") % len(pool)
    country_count = min(vantage_points, 2 + h("countries") % 6)
    countries = [
        pool[(start + i) % len(pool)] for i in range(country_count)
    ]

    # ~10% of providers run virtual endpoints (6/62 in the paper).
    virtual_provider = h("virtual") % 100 < 10
    hub = _GEN_HUBS[h("hub") % len(_GEN_HUBS)]

    specs: list[VantagePointSpec] = []
    for j in range(vantage_points):
        country = countries[j % country_count]
        city = (
            _city_for_country(country, h("city", j))
            or country_centroid(country).city
            or f"{country}-pop"
        )
        virtual = virtual_provider and h("vp-virtual", j) % 3 == 0
        physical = city
        if virtual:
            physical = hub if hub != city else _GEN_HUBS[
                (h("hub") + 1) % len(_GEN_HUBS)
            ]
        censorship = None
        if not virtual and country in _GEN_CENSORSHIP:
            if h("censor", j) % 3 == 0:
                censorship = _GEN_CENSORSHIP[country]
        address = f"{prefix}.{8 + 2 * j + parity}"
        specs.append(
            VantagePointSpec(
                hostname=f"{country.lower()}{j:02d}.{slug}.net",
                claimed_country=country,
                claimed_city=city,
                physical_city=physical,
                censorship=censorship,
                address=address,
                block=block,
                asn=asn,
            )
        )

    r_sub = h("subscription") % 100
    subscription = (
        SubscriptionType.PAID if r_sub < 70
        else SubscriptionType.FREE if r_sub < 85
        else SubscriptionType.TRIAL
    )
    r_fail = h("failure") % 100
    failure = (
        FailureMode.FAIL_CLOSED if r_fail < 40
        else FailureMode.FAIL_OPEN if r_fail < 70
        else FailureMode.KILL_SWITCH_DEFAULT_OFF if r_fail < 90
        else FailureMode.KILL_SWITCH_APP_ONLY
    )
    return ProviderProfile(
        name=name,
        subscription=subscription,
        client_type=(
            ClientType.CUSTOM if h("client") % 100 < 60
            else ClientType.OPENVPN_CONFIG
        ),
        protocols=_GEN_PROTOCOL_SETS[
            h("protocols") % len(_GEN_PROTOCOL_SETS)
        ],
        website_domain=f"{slug}.com",
        business_country=_GEN_COUNTRY_POOL[
            h("business") % len(_GEN_COUNTRY_POOL)
        ],
        founded=2005 + h("founded") % 14,
        vantage_points=tuple(specs),
        behaviors=BehaviorFlags(
            transparent_proxy=h("proxy") % 100 < 8,
            ad_injection=h("inject") % 100 < 2,
            tls_interception=h("tls-mitm") % 100 < 2,
            tls_stripping=h("tls-strip") % 100 < 1,
        ),
        leaks=LeakFlags(
            dns_leak=h("dns-leak") % 100 < 3,
            ipv6_leak=h("ipv6-leak") % 100 < 19,
            failure_mode=failure,
        ),
        address_blocks=(block,),
        claimed_server_count=50 + h("servers") % 3000,
        claimed_country_count=len(set(countries)),
    )


def generate_provider_profiles(
    count: int, seed: int = 2018, vantage_points: int = 4
) -> list[ProviderProfile]:
    """All *count* generated profiles at once (eager; prefer a source)."""
    return [
        generate_provider_profile(i, seed, vantage_points)
        for i in range(count)
    ]


# ---------------------------------------------------------------------------
# Provider sources: lazy, shardable provider iteration.
# ---------------------------------------------------------------------------
class ProviderSource:
    """Yields a study's providers lazily, shard by shard.

    ``names()`` is cheap — it never builds a profile — so planning a
    10,000-provider study touches no topology; ``profiles(names)``
    realises exactly one shard's worth of ground truth on demand
    (:class:`repro.world_factory.ShardedWorldFactory` calls it per shard).
    """

    def names(self) -> tuple[str, ...]:
        """All provider names, in study order."""
        raise NotImplementedError

    def profiles(self, names: Sequence[str]) -> list[ProviderProfile]:
        """Ground-truth profiles for a subset of ``names()``, in order."""
        raise NotImplementedError

    def shard_names(self, shards: int) -> list[tuple[str, ...]]:
        """Contiguous split of ``names()`` into *shards* balanced parts."""
        names = self.names()
        if shards < 1:
            raise ValueError("shards must be >= 1")
        size, extra = divmod(len(names), shards)
        out: list[tuple[str, ...]] = []
        start = 0
        for i in range(shards):
            end = start + size + (1 if i < extra else 0)
            out.append(names[start:end])
            start = end
        return out


class CatalogProviderSource(ProviderSource):
    """The paper's 62-provider catalogue (optionally a named subset)."""

    def __init__(self, only: Optional[Iterable[str]] = None) -> None:
        self.only = tuple(only) if only is not None else None

    def names(self) -> tuple[str, ...]:
        all_names = catalog_names()
        if self.only is None:
            return tuple(all_names)
        wanted = set(self.only)
        missing = wanted - set(all_names)
        if missing:
            raise KeyError(f"unknown providers: {sorted(missing)}")
        # Catalogue order, as World._build_providers has always used.
        return tuple(n for n in all_names if n in wanted)

    def profiles(self, names: Sequence[str]) -> list[ProviderProfile]:
        from repro.vpn.catalog import build_catalog

        catalog = build_catalog()
        return [catalog[name] for name in names]


class GeneratedProviderSource(ProviderSource):
    """``count`` parametric providers derived from a generator seed."""

    def __init__(
        self, count: int, seed: int = 2018, vantage_points: int = 4
    ) -> None:
        if count < 1:
            raise ValueError("count must be >= 1")
        self.count = count
        self.seed = seed
        self.vantage_points = vantage_points

    def names(self) -> tuple[str, ...]:
        return tuple(
            generated_provider_name(i, self.seed) for i in range(self.count)
        )

    def profiles(self, names: Sequence[str]) -> list[ProviderProfile]:
        out: list[ProviderProfile] = []
        for name in names:
            # Names carry their index ("AuroraNet-0042"), so a shard
            # realises its providers without enumerating all names.
            try:
                index = int(name.rsplit("-", 1)[1])
            except (IndexError, ValueError):
                raise KeyError(f"not a generated provider name: {name!r}")
            if not (0 <= index < self.count) or (
                generated_provider_name(index, self.seed) != name
            ):
                raise KeyError(f"unknown generated provider: {name!r}")
            out.append(
                generate_provider_profile(
                    index, self.seed, self.vantage_points
                )
            )
        return out
