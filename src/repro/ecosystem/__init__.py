"""The ecosystem analysis (paper Sections 3 and 4).

The paper mined the websites of 200 commercial VPN services (collected from
review sites, a Reddit crawl and personal recommendations) for pricing,
payments, protocols, platforms, policies and marketing structure.  That
mining cannot be re-run offline, so this package *synthesises* a
200-provider ecosystem calibrated to every aggregate statistic Section 4
reports, with the 62 actively-tested providers of Appendix A embedded in it.

- :mod:`repro.ecosystem.sources` — Table 1 (review sites + affiliate status)
  and Table 2 (selection-source counts);
- :mod:`repro.ecosystem.generate` — the calibrated synthesiser;
- :mod:`repro.ecosystem.selection` — the stratified 62-service sample
  (Section 5.1);
- :mod:`repro.ecosystem.analysis` — the Section 4 aggregate computations.
"""

from repro.ecosystem.analysis import EcosystemAnalysis
from repro.ecosystem.generate import generate_ecosystem
from repro.ecosystem.model import EcosystemProvider, PaymentMethod, Platform
from repro.ecosystem.selection import select_test_subset
from repro.ecosystem.sources import (
    REVIEW_WEBSITES,
    SELECTION_SOURCES,
    ReviewWebsite,
)

__all__ = [
    "EcosystemAnalysis",
    "generate_ecosystem",
    "EcosystemProvider",
    "PaymentMethod",
    "Platform",
    "select_test_subset",
    "REVIEW_WEBSITES",
    "SELECTION_SOURCES",
    "ReviewWebsite",
]
