"""The stratified 62-service test subset (paper Section 5.1).

From the 200-provider ecosystem the paper selected:

- the 15 most popular services,
- 30 services with free or trial versions,
- 16 randomly chosen services,
- plus arbitrary picks to reach 62.

The catalogue's 62 names occupy the head of the ecosystem's popularity
ranking by construction, so the selection here recovers exactly Appendix A.
"""

from __future__ import annotations

import random

from repro.ecosystem.model import EcosystemProvider
from repro.vpn.catalog import build_catalog


def select_test_subset(
    ecosystem: list[EcosystemProvider], seed: int = 2018
) -> list[EcosystemProvider]:
    """Reproduce the Section 5.1 stratified sample."""
    catalogue = build_catalog()
    tested_names = set(catalogue)
    rng = random.Random(seed)

    ranked = sorted(
        ecosystem,
        key=lambda p: p.popularity_rank
        if p.popularity_rank is not None
        else 10_000,
    )
    chosen: list[EcosystemProvider] = []
    chosen_names: set[str] = set()

    def take(provider: EcosystemProvider) -> None:
        if provider.name not in chosen_names:
            chosen.append(provider)
            chosen_names.add(provider.name)

    # 1. Top 15 popular services.
    for provider in ranked[:15]:
        take(provider)

    # 2. 30 free/trial services, preferring those the catalogue actually
    #    tested (testable ones were chosen in the paper too).
    free_trial = [
        p for p in ranked if (p.has_free_tier or p.has_trial)
    ]
    free_trial.sort(
        key=lambda p: (p.name not in tested_names, p.popularity_rank or 10_000)
    )
    for provider in free_trial:
        if sum(1 for c in chosen if c.has_free_tier or c.has_trial) >= 30:
            break
        take(provider)

    # 3. 16 random services (seeded; drawn from the testable pool first).
    pool = [p for p in ranked if p.name not in chosen_names]
    testable_pool = [p for p in pool if p.name in tested_names]
    random_picks = testable_pool[:]
    rng.shuffle(random_picks)
    for provider in random_picks[:16]:
        take(provider)

    # 4. Arbitrary additions to reach 62 — the remaining catalogue names.
    for provider in ranked:
        if len(chosen) >= 62:
            break
        if provider.name in tested_names:
            take(provider)

    return chosen[:62]
