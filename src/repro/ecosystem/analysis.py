"""Section 4 aggregate computations.

Every statistic and figure in the paper's ecosystem analysis is a method on
:class:`EcosystemAnalysis`; the benchmarks call these to regenerate
Tables 1–3 and Figures 1–5.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Optional

from repro.ecosystem.model import EcosystemProvider, Platform


@dataclass
class SubscriptionRow:
    """A Table 3 row."""

    period: str
    provider_count: int
    min_monthly: float
    avg_monthly: float
    max_monthly: float


class EcosystemAnalysis:
    """Aggregate statistics over an ecosystem provider list."""

    def __init__(self, providers: list[EcosystemProvider]) -> None:
        self.providers = providers

    # ------------------------------------------------------------------
    # Founding and location (Figure 1, 'Emergence of VPN Services')
    # ------------------------------------------------------------------
    def founding_years(self, top_n: Optional[int] = None) -> list[int]:
        pool = self._top(top_n)
        return sorted(p.founded for p in pool)

    def founded_after_2005_fraction(self, top_n: int = 50) -> float:
        pool = self._top(top_n)
        after = sum(1 for p in pool if p.founded > 2005)
        return after / len(pool) if pool else 0.0

    def business_location_distribution(self) -> Counter:
        """Figure 1: providers per business country."""
        return Counter(p.business_country for p in self.providers)

    # ------------------------------------------------------------------
    # Server counts (Figure 2)
    # ------------------------------------------------------------------
    def server_count_cdf(self) -> list[tuple[int, float]]:
        """Figure 2: (claimed server count, cumulative fraction) points."""
        counts = sorted(p.claimed_server_count for p in self.providers)
        n = len(counts)
        return [(count, (i + 1) / n) for i, count in enumerate(counts)]

    def fraction_with_servers_at_most(self, threshold: int) -> float:
        n = len(self.providers)
        if n == 0:
            return 0.0
        return sum(
            1 for p in self.providers if p.claimed_server_count <= threshold
        ) / n

    # ------------------------------------------------------------------
    # Vantage-point geography (Figure 3)
    # ------------------------------------------------------------------
    def vantage_country_heatmap(self, top_n: int = 15) -> Counter:
        """Figure 3: how many of the top-N providers claim each country."""
        heat: Counter = Counter()
        for provider in self._top(top_n):
            for country in provider.vantage_countries:
                heat[country] += 1
        return heat

    # ------------------------------------------------------------------
    # Subscriptions (Table 3)
    # ------------------------------------------------------------------
    def subscription_table(self) -> list[SubscriptionRow]:
        rows = []
        for period, label in (
            ("monthly", "Monthly"),
            ("quarterly", "Quarterly"),
            ("semiannual", "6 Months"),
            ("annual", "Annual"),
        ):
            costs = [
                plan.monthly_cost
                for provider in self.providers
                for plan in provider.plans
                if plan.period == period
            ]
            if not costs:
                continue
            rows.append(
                SubscriptionRow(
                    period=label,
                    provider_count=len(costs),
                    min_monthly=min(costs),
                    avg_monthly=sum(costs) / len(costs),
                    max_monthly=max(costs),
                )
            )
        return rows

    def beyond_annual_count(self) -> int:
        periods = {"2-year", "3-year", "5-year", "lifetime"}
        return sum(
            1
            for provider in self.providers
            if any(plan.period in periods for plan in provider.plans)
        )

    def free_or_trial_fraction(self) -> float:
        n = len(self.providers)
        return sum(
            1 for p in self.providers if p.has_free_tier or p.has_trial
        ) / n if n else 0.0

    def seven_day_refund_fraction(self) -> float:
        """Fraction of all services offering the 7-day refund (paper: 40 %)."""
        n = len(self.providers)
        if n == 0:
            return 0.0
        return sum(1 for p in self.providers if p.refund_days == 7) / n

    def refund_day_range(self) -> tuple[int, int]:
        days = [p.refund_days for p in self.providers if p.refund_days]
        return (min(days), max(days)) if days else (0, 0)

    # ------------------------------------------------------------------
    # Payments (Figure 4)
    # ------------------------------------------------------------------
    def payment_acceptance(self) -> dict[str, float]:
        n = len(self.providers)
        return {
            "credit-card": sum(
                1 for p in self.providers if p.accepts_credit_cards
            ) / n,
            "online": sum(
                1 for p in self.providers if p.accepts_online_payments
            ) / n,
            "cryptocurrency": sum(
                1 for p in self.providers if p.accepts_cryptocurrency
            ) / n,
            "online+crypto-no-card": sum(
                1
                for p in self.providers
                if not p.accepts_credit_cards
                and p.accepts_online_payments
                and p.accepts_cryptocurrency
            ) / n,
        }

    def payment_method_counts(self) -> Counter:
        """Figure 4: providers accepting each concrete method."""
        counts: Counter = Counter()
        for provider in self.providers:
            for method in set(provider.payment_methods):
                counts[method.value] += 1
        return counts

    # ------------------------------------------------------------------
    # Protocols and platforms (Figure 5, 'Platform Support')
    # ------------------------------------------------------------------
    def protocol_counts(self) -> Counter:
        counts: Counter = Counter()
        for provider in self.providers:
            for protocol in set(provider.protocols):
                counts[protocol] += 1
        return counts

    def platform_support(self) -> dict[str, float]:
        n = len(self.providers)
        both_desktop = sum(
            1
            for p in self.providers
            if Platform.WINDOWS in p.platforms and Platform.MACOS in p.platforms
        )
        linux = sum(1 for p in self.providers if Platform.LINUX in p.platforms)
        both_mobile = sum(
            1
            for p in self.providers
            if Platform.ANDROID in p.platforms and Platform.IOS in p.platforms
        )
        return {
            "windows+macos": both_desktop / n,
            "linux": linux / n,
            "android+ios": both_mobile / n,
        }

    # ------------------------------------------------------------------
    # Transparency and marketing
    # ------------------------------------------------------------------
    def transparency_stats(self) -> dict[str, object]:
        lengths = [
            p.privacy_policy_words
            for p in self.providers
            if p.privacy_policy_words is not None
        ]
        return {
            "without_privacy_policy": sum(
                1 for p in self.providers if not p.has_privacy_policy
            ),
            "without_terms_of_service": sum(
                1 for p in self.providers if not p.has_terms_of_service
            ),
            "no_logs_claims": sum(
                1 for p in self.providers if p.claims_no_logs
            ),
            "policy_words_min": min(lengths) if lengths else 0,
            "policy_words_avg": (
                sum(lengths) / len(lengths) if lengths else 0.0
            ),
            "policy_words_max": max(lengths) if lengths else 0,
        }

    def marketing_stats(self) -> dict[str, int]:
        return {
            "facebook": sum(1 for p in self.providers if p.has_facebook),
            "twitter": sum(1 for p in self.providers if p.has_twitter),
            "affiliate_programs": sum(
                1 for p in self.providers if p.has_affiliate_program
            ),
            "kill_switch_mentions": sum(
                1 for p in self.providers if p.mentions_kill_switch
            ),
            "vpn_over_tor": sum(
                1 for p in self.providers if p.offers_vpn_over_tor
            ),
            "p2p_allowed": sum(1 for p in self.providers if p.allows_p2p),
        }

    # ------------------------------------------------------------------
    def _top(self, top_n: Optional[int]) -> list[EcosystemProvider]:
        ranked = sorted(
            self.providers,
            key=lambda p: p.popularity_rank
            if p.popularity_rank is not None
            else 10_000,
        )
        return ranked if top_n is None else ranked[:top_n]
