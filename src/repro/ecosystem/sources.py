"""Data sources (paper Section 3, Tables 1 and 2)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ReviewWebsite:
    """One review website with its affiliate-marketing status (Table 1)."""

    domain: str
    affiliate_based: bool


# Table 1 verbatim: the websites used to populate the aggregated VPN list.
REVIEW_WEBSITES: tuple[ReviewWebsite, ...] = (
    ReviewWebsite("360topreviews.com", True),
    ReviewWebsite("bbestvpn.com", True),
    ReviewWebsite("best.offers.com", True),
    ReviewWebsite("bestvpn4u.com", True),
    ReviewWebsite("freedomhacker.net", True),
    ReviewWebsite("ign.com", True),
    ReviewWebsite("pcmag.com", True),
    ReviewWebsite("pcworld.com", True),
    ReviewWebsite("reddit.com", False),
    ReviewWebsite("securethoughts.com", True),
    ReviewWebsite("techsupportalert.com", True),
    ReviewWebsite("thatoneprivacysite.net", False),
    ReviewWebsite("tomsguide.com", True),
    ReviewWebsite("top10fastvpns.com", True),
    ReviewWebsite("torrentfreak.com", True),
    ReviewWebsite("trustedreviews.com", True),
    ReviewWebsite("vpnfan.com", True),
    ReviewWebsite("vpnmentor.com", True),
    ReviewWebsite("vpnsrus.com", True),
    ReviewWebsite("vpnservice.reviews", True),
)


@dataclass(frozen=True)
class SelectionSource:
    """One Table 2 row: a selection category and how many VPNs it yielded."""

    name: str
    count: int


# Table 2 verbatim. Sources overlap substantially; the union is 200.
SELECTION_SOURCES: tuple[SelectionSource, ...] = (
    SelectionSource("Popular Services (from review websites)", 74),
    SelectionSource("Reddit Crawl", 31),
    SelectionSource("Personal Recommendations", 13),
    SelectionSource("Cheap & Free VPNs (The One Privacy Site)", 78),
    SelectionSource("Multiple Language Reviews (VPN Mentor)", 53),
    SelectionSource("Large Number of Vantage Points (VPN Mentor)", 58),
    SelectionSource("Others (VPN Mentor)", 45),
)

TOTAL_UNIQUE_PROVIDERS = 200

# Selection criteria thresholds from Section 3.
CHEAP_MONTHLY_THRESHOLD_USD = 3.99
LARGE_VANTAGE_COUNTRY_THRESHOLD = 30
