"""Top-level convenience API.

These helpers wire the full stack together: build the simulated internet with
the site catalogue and public resolvers, instantiate a provider from the
catalogue, run the measurement suite against its vantage points, and return
an analysis report.  They are what the examples and the quickstart use;
everything they do can also be done piecemeal through the subpackages.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from repro.core.harness import StudyReport, TestSuite
    from repro.world import World


def build_study(
    seed: int = 2018, providers: Optional[list[str]] = None
) -> "World":
    """Build the simulated world: internet, sites, resolvers, providers.

    ``providers`` selects a subset of the 62-provider catalogue by name;
    ``None`` builds all of them.
    """
    from repro.world import World

    return World.build(seed=seed, provider_names=providers)


def audit_provider(name: str, seed: int = 2018):
    """Run the full measurement suite against a single provider.

    Returns a :class:`repro.core.harness.ProviderReport`.
    """
    world = build_study(seed=seed, providers=[name])
    from repro.core.harness import TestSuite

    suite = TestSuite(world)
    return suite.audit_provider(name)


def run_full_study(seed: int = 2018, max_vantage_points: int | None = 5):
    """Run the paper's full study: all 62 providers.

    ``max_vantage_points`` caps vantage points per manually-evaluated
    provider (the paper used ~5); ``None`` tests every vantage point.
    Returns a :class:`repro.core.harness.StudyReport`.
    """
    world = build_study(seed=seed)
    from repro.core.harness import TestSuite

    suite = TestSuite(world, max_vantage_points=max_vantage_points)
    return suite.run_study()
