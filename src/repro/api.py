"""Top-level convenience API.

These helpers wire the full stack together: build the simulated internet with
the site catalogue and public resolvers, instantiate a provider from the
catalogue, run the measurement suite against its vantage points, and return
an analysis report.  They are what the examples and the quickstart use;
everything they do can also be done piecemeal through the subpackages.

Configuration flows through a single frozen :class:`repro.config.StudyConfig`
passed as ``config=``.  The historical keyword arguments still work but are
a deprecated shim: each entry point warns once per process and folds them
into a ``StudyConfig`` internally, so both spellings execute the exact same
path.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from repro.config import StudyConfig
    from repro.core.harness import StudyReport, TestSuite
    from repro.world import World

#: Sentinel distinguishing "keyword not passed" from any real value
#: (including ``None``, which is meaningful for e.g. ``providers``).
_UNSET = object()

#: Entry points that have already emitted their legacy-kwargs warning.
_DEPRECATION_WARNED: set[str] = set()


def _legacy_config(func_name: str, passed: dict) -> "StudyConfig":
    """Fold legacy keyword arguments into a StudyConfig, warning once.

    The warning renders the exact ``config=`` call that replaces the
    legacy spelling, so migrating is a copy-paste.
    """
    from repro.config import StudyConfig

    config = StudyConfig(**passed)
    if func_name not in _DEPRECATION_WARNED:
        _DEPRECATION_WARNED.add(func_name)
        rendered = ", ".join(
            f"{name}={passed[name]!r}" for name in sorted(passed)
        )
        warnings.warn(
            f"passing keyword arguments to {func_name}() is deprecated; "
            f"replace the call with "
            f"{func_name}(config=repro.StudyConfig({rendered}))",
            DeprecationWarning,
            stacklevel=3,
        )
    return config


def _resolve_config(
    func_name: str,
    config: Optional["StudyConfig"],
    legacy: dict,
) -> "StudyConfig":
    from repro.config import StudyConfig

    passed = {k: v for k, v in legacy.items() if v is not _UNSET}
    if config is not None:
        if passed:
            raise TypeError(
                f"{func_name}() takes either config= or legacy keyword "
                f"arguments, not both (got config and "
                f"{', '.join(sorted(passed))})"
            )
        return config
    if passed:
        return _legacy_config(func_name, passed)
    return StudyConfig()


def build_study(
    seed: int = 2018, providers: Optional[list[str]] = None
) -> "World":
    """Build the simulated world: internet, sites, resolvers, providers.

    ``providers`` selects a subset of the 62-provider catalogue by name;
    ``None`` builds all of them.

    Worlds come from the process-wide snapshot cache: the first build of a
    ``(seed, providers)`` key constructs from scratch, later calls restore
    an isolated clone from the pickled template (~10x faster).
    """
    from repro.world_factory import WorldFactory

    return WorldFactory.clone(seed=seed, provider_names=providers)


def audit_provider(
    name: str,
    seed=_UNSET,
    config: Optional["StudyConfig"] = None,
):
    """Run the full measurement suite against a single provider.

    Returns a :class:`repro.core.harness.ProviderReport`.  When the config
    enables metrics, the report gains an ``obs_metrics`` snapshot dict.
    """
    from repro.core.harness import TestSuite

    config = _resolve_config("audit_provider", config, {"seed": seed})
    world = build_study(seed=config.seed, providers=[name])
    obs_config = config.obs if config.obs.enabled else None
    suite = TestSuite(
        world,
        max_vantage_points=config.max_vantage_points,
        obs_config=obs_config,
    )
    report = suite.audit_provider(name)
    if suite.obs is not None and suite.obs.metrics is not None:
        report.obs_metrics = suite.obs.metrics.snapshot()
    return report


def run_full_study(
    config: Optional["StudyConfig"] = None,
    *,
    stop_event=None,
    bus=None,
    ledger_path=None,
    sample_interval_s=None,
    seed=_UNSET,
    max_vantage_points=_UNSET,
    providers=_UNSET,
    workers=_UNSET,
    backend=_UNSET,
    checkpoint_dir=_UNSET,
    progress=_UNSET,
    obs=_UNSET,
):
    """Run the paper's full study: all 62 providers.

    ``config.max_vantage_points`` caps vantage points per manually-evaluated
    provider (the paper used ~5); ``None`` tests every vantage point.

    Orchestration goes through :class:`repro.runtime.StudyExecutor`:
    ``config.workers`` sets the pool size (1 = inline sequential),
    ``config.backend`` picks ``"thread"`` or ``"process"`` workers,
    ``config.checkpoint_dir`` makes progress durable so re-running with the
    same directory resumes a killed study, and ``config.progress`` prints
    per-unit progress lines.  ``config.obs`` turns on tracing, metrics, and
    the flight recorder.  The report is byte-identical at any worker count.

    ``stop_event`` (a :class:`threading.Event`) requests a graceful stop:
    when set, the executor finishes in-flight units, flushes the
    checkpoint, and raises :class:`repro.runtime.StudyInterrupted` — this
    is what the CLI's SIGTERM handler and the serve daemon use.

    ``bus`` supplies the :class:`repro.runtime.EventBus` the run publishes
    on (pass one to attach subscribers — a dashboard, a renderer — before
    the study starts); ``ledger_path`` persists the runtime telemetry
    stream as JSONL (``repro ledger show`` reads it back) and
    ``sample_interval_s`` sets the background resource sampler's cadence
    — either turns the sampler on.  Telemetry is a side channel: results
    and archive bytes are identical with or without it.

    ``config.source`` generalises ``config.providers``: a
    :class:`repro.StudySource` naming the catalogue, an explicit provider
    list, or a generated ecosystem; ``config.shards`` splits world
    construction so workers only hold a provider slice.

    Returns a :class:`repro.core.harness.StudyReport`.  With obs enabled
    the report gains ``obs_metrics`` (merged snapshot dict or ``None``) and
    ``trace_records`` (the assembled span list or ``None``).  With
    ``config.stream=True`` the archive is written incrementally to
    ``config.archive_dir`` and a
    :class:`repro.runtime.executor.StreamedStudy` is returned instead —
    verdicts and manifest in memory, results on disk only.
    """
    import sys

    from repro.runtime.events import EventBus, TextProgressRenderer
    from repro.runtime.executor import StudyExecutor

    config = _resolve_config(
        "run_full_study",
        config,
        {
            "seed": seed,
            "max_vantage_points": max_vantage_points,
            "providers": providers,
            "workers": workers,
            "backend": backend,
            "checkpoint_dir": checkpoint_dir,
            "progress": progress,
            "obs": obs,
        },
    )
    if bus is None:
        bus = EventBus()
    if config.progress:
        bus.subscribe(TextProgressRenderer(sys.stderr))
    executor = StudyExecutor.from_config(
        config,
        bus=bus,
        stop_event=stop_event,
        ledger_path=ledger_path,
        sample_interval_s=sample_interval_s,
    )
    if config.stream:
        # One combined archive regardless of shard count; per-shard
        # archives are the executor-level run_streamed(per_shard=True).
        return executor.run_streamed(config.archive_dir)
    report = executor.run()
    metrics = executor.metrics
    report.obs_metrics = metrics.snapshot() if metrics is not None else None
    report.trace_records = executor.trace_records
    return report


def explain_provider(
    name: str,
    config: Optional["StudyConfig"] = None,
):
    """Audit one provider with tracing forced on; return explainable output.

    Runs the study through the executor (the unit-span path — evidence
    chains only exist inside unit/test spans) with ``obs.trace`` enabled
    regardless of what *config* says, so every verdict comes back with an
    :class:`~repro.obs.evidence.EvidenceChain` resolvable against the
    returned trace.

    Returns ``(ProviderReport, trace_records)`` — the report's
    ``evidence_chains()`` reference span IDs found in ``trace_records``.
    This is the engine behind ``repro report explain <provider>``.
    """
    from repro.config import StudyConfig

    if config is None:
        config = StudyConfig()
    config = config.replace(
        providers=(name,),
        obs=config.obs.replace(trace=True),
    )
    study = run_full_study(config=config)
    return study.providers[name], study.trace_records


def run_longitudinal_study(
    config: Optional["StudyConfig"] = None,
    *,
    stop_event=None,
    seed=_UNSET,
    snapshots=_UNSET,
    max_vantage_points=_UNSET,
    providers=_UNSET,
    workers=_UNSET,
    backend=_UNSET,
    archive_root=_UNSET,
    reseed=_UNSET,
    obs=_UNSET,
):
    """Re-run the study as *snapshots* measurements and diff the verdicts.

    ``config.reseed=True`` rebuilds each snapshot's world from a derived
    seed (an ecosystem that may drift); ``reseed=False`` re-measures the
    same world every time, so any verdict change is a reproducibility
    failure.  Returns a :class:`repro.runtime.scheduler.LongitudinalReport`
    whose ``diffs`` list what changed between consecutive snapshots (empty
    when the ecosystem — here, the simulation — is stable).
    """
    from repro.runtime.scheduler import LongitudinalScheduler

    legacy = {
        "seed": seed,
        "snapshots": snapshots,
        "max_vantage_points": max_vantage_points,
        "providers": providers,
        "workers": workers,
        "backend": backend,
        "reseed": reseed,
        "obs": obs,
        # Historical name: the scheduler calls it archive_root, the
        # config calls it archive_dir.
        "archive_dir": archive_root,
    }
    config = _resolve_config("run_longitudinal_study", config, legacy)
    scheduler = LongitudinalScheduler(
        seed=config.seed,
        snapshots=config.snapshots,
        providers=config.provider_list,
        max_vantage_points=config.max_vantage_points,
        workers=config.workers,
        backend=config.backend,
        archive_root=config.archive_dir,
        reseed=config.reseed,
        obs=config.obs if config.obs.enabled else None,
        stop_event=stop_event,
        checkpoint_root=config.checkpoint_dir,
    )
    return scheduler.run()
