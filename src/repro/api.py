"""Top-level convenience API.

These helpers wire the full stack together: build the simulated internet with
the site catalogue and public resolvers, instantiate a provider from the
catalogue, run the measurement suite against its vantage points, and return
an analysis report.  They are what the examples and the quickstart use;
everything they do can also be done piecemeal through the subpackages.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from repro.core.harness import StudyReport, TestSuite
    from repro.world import World


def build_study(
    seed: int = 2018, providers: Optional[list[str]] = None
) -> "World":
    """Build the simulated world: internet, sites, resolvers, providers.

    ``providers`` selects a subset of the 62-provider catalogue by name;
    ``None`` builds all of them.

    Worlds come from the process-wide snapshot cache: the first build of a
    ``(seed, providers)`` key constructs from scratch, later calls restore
    an isolated clone from the pickled template (~10x faster).
    """
    from repro.world_factory import WorldFactory

    return WorldFactory.clone(seed=seed, provider_names=providers)


def audit_provider(name: str, seed: int = 2018):
    """Run the full measurement suite against a single provider.

    Returns a :class:`repro.core.harness.ProviderReport`.
    """
    world = build_study(seed=seed, providers=[name])
    from repro.core.harness import TestSuite

    suite = TestSuite(world)
    return suite.audit_provider(name)


def run_full_study(
    seed: int = 2018,
    max_vantage_points: int | None = 5,
    providers: Optional[list[str]] = None,
    workers: int = 1,
    backend: str = "thread",
    checkpoint_dir: Optional[str] = None,
    progress: bool = False,
):
    """Run the paper's full study: all 62 providers.

    ``max_vantage_points`` caps vantage points per manually-evaluated
    provider (the paper used ~5); ``None`` tests every vantage point.

    Orchestration goes through :class:`repro.runtime.StudyExecutor`:
    ``workers`` sets the pool size (1 = inline sequential), ``backend``
    picks ``"thread"`` or ``"process"`` workers, ``checkpoint_dir`` makes
    progress durable so re-running with the same directory resumes a
    killed study, and ``progress`` prints per-unit progress lines.  The
    report is byte-identical at any worker count.

    Returns a :class:`repro.core.harness.StudyReport`.
    """
    import sys

    from repro.runtime.events import EventBus, TextProgressRenderer
    from repro.runtime.executor import StudyExecutor

    bus = EventBus()
    if progress:
        bus.subscribe(TextProgressRenderer(sys.stderr))
    executor = StudyExecutor(
        seed=seed,
        providers=providers,
        max_vantage_points=max_vantage_points,
        workers=workers,
        backend=backend,
        checkpoint_dir=checkpoint_dir,
        bus=bus,
    )
    return executor.run()


def run_longitudinal_study(
    seed: int = 2018,
    snapshots: int = 2,
    max_vantage_points: int | None = 5,
    providers: Optional[list[str]] = None,
    workers: int = 1,
    backend: str = "thread",
    archive_root: Optional[str] = None,
    reseed: bool = True,
):
    """Re-run the study as *snapshots* measurements and diff the verdicts.

    ``reseed=True`` rebuilds each snapshot's world from a derived seed (an
    ecosystem that may drift); ``reseed=False`` re-measures the same world
    every time, so any verdict change is a reproducibility failure.
    Returns a :class:`repro.runtime.scheduler.LongitudinalReport` whose
    ``diffs`` list what changed between consecutive snapshots (empty when
    the ecosystem — here, the simulation — is stable).
    """
    from repro.runtime.scheduler import LongitudinalScheduler

    scheduler = LongitudinalScheduler(
        seed=seed,
        snapshots=snapshots,
        providers=providers,
        max_vantage_points=max_vantage_points,
        workers=workers,
        backend=backend,
        archive_root=archive_root,
        reseed=reseed,
    )
    return scheduler.run()
