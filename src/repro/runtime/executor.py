"""Parallel, checkpointable execution of a study plan.

:class:`StudyExecutor` owns study orchestration: it decomposes the study
into :class:`~repro.runtime.units.AuditUnit` records, dispatches them onto
a worker pool, retries failures under a :class:`RetryPolicy`, persists
every completed unit through a :class:`CheckpointStore`, publishes progress
events, and finally assembles the per-unit results — in plan order, never
completion order — into the same :class:`~repro.core.harness.StudyReport`
a sequential run produces.

Determinism is the design constraint everything else bends around:

- every worker (thread or process) builds its *own* world from the study
  seed; worlds are deterministic, and units are independent of what else
  ran before them in the same world, so a unit computes identical results
  on any worker of any run;
- assembly iterates the plan, so scheduling order never reaches the
  report; archived verdicts from ``workers=8`` are byte-identical to
  ``workers=1`` (asserted in ``tests/test_determinism.py``).

Backends: ``thread`` (default; worlds are cheap to build and share nothing)
and ``process`` (sidesteps the GIL for real multi-core scaling; unit
results travel home by pickle).  The simulation is pure CPU-bound Python,
so thread workers only help on interpreters without a GIL — the backend
exists for correctness on both and for the process pool to exploit real
cores where the hardware has them.

The per-unit timeout is *hard* for units still queued (they are cancelled)
and advisory for units already running — a GIL-bound worker cannot be
preempted — which keeps timeouts from ever introducing nondeterminism into
results that did complete.
"""

from __future__ import annotations

import concurrent.futures
import pathlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.core.harness import TestSuite
from repro.runtime import events as ev
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.retry import RetryPolicy
from repro.runtime.units import AuditUnit, StudyPlan
from repro.source import StudySource
from repro.world_factory import ShardedWorldFactory, WorldFactory

if TYPE_CHECKING:
    from repro.config import StudyConfig
    from repro.core.archive import StreamingArchiveWriter
    from repro.core.harness import StudyReport
    from repro.core.results import VantagePointResults
    from repro.obs.config import ObsConfig
    from repro.obs.metrics import MetricsRegistry

_BACKENDS = ("thread", "process")

# Per-worker cap on live shard suites: units arrive roughly in shard
# order, so two is enough to ride out stragglers without a worker ever
# holding every shard's world at once.
_WORKER_SUITE_CACHE = 2

# One attempt at a unit: (results, connect retries spent, wall
# milliseconds, drained observability payload or None, worker resource
# payload).  The resource payload travels with the results rather than
# inside the obs snapshot so the deterministic metric series stay free
# of machine-dependent values.
UnitOutcome = tuple[
    list["VantagePointResults"], int, float, Optional[dict], dict
]


class SuiteCache(OrderedDict):
    """Per-worker LRU of shard suites, with hit/miss counters.

    Plain class-attribute defaults keep lookups allocation-free until the
    first bump; the counters are cumulative for the worker's lifetime and
    ride home with each unit as part of its resource payload.
    """

    hits: int = 0
    misses: int = 0


class StudyInterrupted(RuntimeError):
    """The executor stopped on request before the plan finished.

    Raised (after every in-flight unit has been committed and the
    checkpoint flushed) when the executor's ``stop_event`` is set — by a
    SIGTERM handler, a job cancellation, or a daemon drain.  ``completed``
    counts units committed this run, ``remaining`` the units that were
    still pending when the stop took effect; re-running with the same
    checkpoint directory resumes exactly at the cut.
    """

    def __init__(self, completed: int, remaining: int) -> None:
        super().__init__(
            f"study interrupted: {completed} unit(s) committed, "
            f"{remaining} left for resume"
        )
        self.completed = completed
        self.remaining = remaining


def _build_suite(
    seed: int,
    providers: Optional[list[str]],
    suite_kwargs: dict,
) -> TestSuite:
    # Clone from the snapshot cache instead of rebuilding: each worker
    # still gets a fully isolated world, but pays pickle.loads (~10 ms)
    # rather than World.build (~100 ms).  With a fork start method the
    # process backend inherits the coordinator's warmed template
    # copy-on-write, so worker processes never rebuild either.
    world = WorldFactory.clone(seed=seed, provider_names=providers)
    return TestSuite(world, **suite_kwargs)


def _build_shard_suite(
    seed: int,
    source: StudySource,
    shard: int,
    shards: int,
    suite_kwargs: dict,
) -> TestSuite:
    """A suite over one shard's world (the whole world when shards=1)."""
    world = ShardedWorldFactory.clone(
        seed=seed, source=source, shard=shard, shards=shards
    )
    return TestSuite(world, **suite_kwargs)


def _shard_suite_cached(
    cache: "OrderedDict[int, TestSuite]",
    seed: int,
    source: StudySource,
    shard: int,
    shards: int,
    suite_kwargs: dict,
) -> TestSuite:
    """Fetch/build a shard suite through a small per-worker LRU."""
    suite = cache.get(shard)
    if suite is None:
        cache.misses = getattr(cache, "misses", 0) + 1
        suite = _build_shard_suite(seed, source, shard, shards, suite_kwargs)
        cache[shard] = suite
        while len(cache) > _WORKER_SUITE_CACHE:
            cache.popitem(last=False)
    else:
        cache.hits = getattr(cache, "hits", 0) + 1
        cache.move_to_end(shard)
    return suite


def _worker_resources(cache: Optional[OrderedDict]) -> dict:
    """One worker resource reading, taken at a unit boundary.

    A couple of microseconds per unit (one /proc read), cheap enough to
    collect unconditionally; the executor decides whether anyone is
    listening.  The worker name combines thread name and pid so it is
    unique across both pool backends.
    """
    import os

    from repro.obs.sample import rss_kb

    return {
        "worker": f"{threading.current_thread().name}@{os.getpid()}",
        "rss_kb": rss_kb(),
        "shards_resident": len(cache) if cache is not None else 1,
        "suite_hits": getattr(cache, "hits", 0),
        "suite_misses": getattr(cache, "misses", 0),
    }


def _timed_run_unit(
    suite: TestSuite, unit: AuditUnit, cache: Optional[OrderedDict] = None
) -> UnitOutcome:
    retries_before = suite.connect_retries
    started = time.perf_counter()
    try:
        results = suite.run_unit(unit)
    except BaseException:
        # Discard the partial unit's obs buffers (and the delivery
        # engine's identity-keyed plan caches) so a retry (or the next
        # unit on this worker) starts from clean per-unit state.
        if suite.obs is not None:
            suite.obs.drain_unit()
        engine = suite.world.internet.engine
        if engine is not None:
            engine.begin_unit()
        raise
    wall_ms = (time.perf_counter() - started) * 1000.0
    obs_payload = suite.obs.drain_unit() if suite.obs is not None else None
    return (
        results,
        suite.connect_retries - retries_before,
        wall_ms,
        obs_payload,
        _worker_resources(cache),
    )


# ----------------------------------------------------------------------
# Process-backend worker side: a small LRU of shard suites per worker
# process (one world per worker when the study is unsharded).
# ----------------------------------------------------------------------
_PROCESS_STATE: dict = {}


def _process_worker_init(
    seed: int, source: StudySource, shards: int, suite_kwargs: dict
) -> None:
    _PROCESS_STATE.update(
        seed=seed,
        source=source,
        shards=shards,
        suite_kwargs=suite_kwargs,
        suites=SuiteCache(),
    )


def _process_run_unit(unit: AuditUnit) -> UnitOutcome:
    suites = _PROCESS_STATE["suites"]
    suite = _shard_suite_cached(
        suites,
        _PROCESS_STATE["seed"],
        _PROCESS_STATE["source"],
        unit.shard,
        _PROCESS_STATE["shards"],
        _PROCESS_STATE["suite_kwargs"],
    )
    return _timed_run_unit(suite, unit, suites)


@dataclass
class StreamedStudy:
    """What a streamed run returns instead of a :class:`StudyReport`.

    The full per-provider reports were written straight to disk and
    dropped; what remains in memory is the archive location(s), the
    manifest (merged across shards when the run was per-shard), and the
    per-provider verdict summaries — everything the CLI and serve layers
    report, at O(providers) not O(results) memory.
    """

    archive_dir: pathlib.Path
    shard_dirs: list[pathlib.Path] = field(default_factory=list)
    providers: list[str] = field(default_factory=list)
    manifest: dict = field(default_factory=dict)
    verdicts: dict[str, dict] = field(default_factory=dict)

    def fingerprint(self) -> str:
        """Byte fingerprint of the archive tree that was written."""
        from repro.core.archive import archive_fingerprint

        return archive_fingerprint(self.archive_dir)

    def summary(self) -> str:
        lines = [
            f"Streamed study over {len(self.providers)} providers "
            f"-> {self.archive_dir}",
        ]
        if self.shard_dirs:
            lines.append(
                f"  shard archives               : {len(self.shard_dirs)}"
            )
        lines += [
            f"  intercept/manipulate traffic : "
            f"{len(self.manifest.get('intercepting', []))}",
            f"  fail open on tunnel failure  : "
            f"{len(self.manifest.get('failing_open', []))}",
            f"  misrepresent locations       : "
            f"{len(self.manifest.get('misrepresenting', []))}",
        ]
        return "\n".join(lines)


class StudyExecutor:
    """Run a study as a unit graph on a worker pool.

    ``workers=1`` executes inline on the coordinator's own world — exactly
    the classic ``TestSuite.run_study()`` path.  ``checkpoint_dir`` makes
    progress durable: re-running with the same directory (and parameters)
    skips every unit whose results are already journalled there.
    """

    def __init__(
        self,
        seed: int = 2018,
        providers: Optional[list[str]] = None,
        max_vantage_points: Optional[int] = 5,
        workers: int = 1,
        backend: str = "thread",
        retry: Optional[RetryPolicy] = None,
        unit_timeout_s: Optional[float] = None,
        checkpoint_dir: Optional[str] = None,
        bus: Optional[ev.EventBus] = None,
        sleep_on_retry: bool = False,
        obs: Optional["ObsConfig"] = None,
        stop_event: Optional[threading.Event] = None,
        pool: Optional[concurrent.futures.Executor] = None,
        source: Optional[StudySource] = None,
        shards: int = 1,
        ledger_path: Optional[str | pathlib.Path] = None,
        sample_interval_s: Optional[float] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}")
        if pool is not None and backend != "thread":
            # A shared pool cannot re-run per-job process initializers, so
            # only the thread backend may borrow one.
            raise ValueError("an external pool requires the thread backend")
        if providers is not None and source is not None:
            raise ValueError("pass providers= or source=, not both")
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.seed = seed
        if source is None:
            source = (
                StudySource.explicit(providers)
                if providers is not None
                else StudySource.catalog()
            )
        self.source = source
        # Kept for callers that still read it; None means "whole catalogue".
        self.providers = (
            list(source.providers) if source.kind == "explicit" else None
        )
        self.shards = shards
        self.max_vantage_points = max_vantage_points
        self.workers = workers
        self.backend = backend
        self.retry = retry or RetryPolicy.single_retry()
        self.unit_timeout_s = unit_timeout_s
        self.checkpoint_dir = checkpoint_dir
        self.bus = bus or ev.EventBus()
        self.sleep_on_retry = sleep_on_retry
        # stop_event is the cooperative cancellation point: when set, the
        # executor stops dispatching, commits every unit already running,
        # and raises StudyInterrupted.  pool, when given, is an external
        # ThreadPoolExecutor shared with other executors (the serve
        # daemon's); the executor then never shuts it down.
        self.stop_event = stop_event
        self.pool = pool
        self.obs_config = obs if obs is not None and obs.enabled else None
        # Internal collectors see only this executor's run: a shared bus
        # (the longitudinal scheduler reuses one across snapshots) must
        # not replay a previous executor's events into them.
        self._stats_collector = ev.StatsCollector()
        self.bus.subscribe(self._stats_collector, replay=False)
        self._metrics_aggregator: Optional[ev.MetricsAggregator] = None
        if self.obs_config is not None and self.obs_config.metrics_enabled:
            self._metrics_aggregator = ev.MetricsAggregator()
            self.bus.subscribe(self._metrics_aggregator, replay=False)
        self._obs_payloads: dict[str, dict] = {}
        self.trace_records: Optional[list[dict]] = None
        self.plan: Optional[StudyPlan] = None
        # Runtime telemetry: a background ResourceSampler ticks while
        # either is set, and a RunLedger persists the stream as JSONL.
        self.ledger_path = ledger_path
        self.sample_interval_s = sample_interval_s
        self._telemetry_on = (
            ledger_path is not None or sample_interval_s is not None
        )
        # Live dispatch-state counters the sampler probe reads; plain int
        # stores under the GIL, no lock needed for a telemetry read.
        self._live = {"queue_depth": 0, "in_flight": 0}
        # Coordinator-side shard suites (planning, inline runs, assembly).
        self._suites: SuiteCache = SuiteCache()
        # Set for the duration of run_streamed(): unit.shard -> writer.
        self._stream_writers: Optional[dict[int, "StreamingArchiveWriter"]]
        self._stream_writers = None

    @classmethod
    def from_config(
        cls,
        config: "StudyConfig",
        bus: Optional[ev.EventBus] = None,
        **overrides,
    ) -> "StudyExecutor":
        """Build an executor from a :class:`repro.config.StudyConfig`."""
        kwargs = dict(
            seed=config.seed,
            max_vantage_points=config.max_vantage_points,
            workers=config.workers,
            backend=config.backend,
            checkpoint_dir=config.checkpoint_dir,
            obs=config.obs,
            bus=bus,
            shards=config.shards,
        )
        if config.source is not None:
            kwargs["source"] = config.source
        else:
            kwargs["providers"] = config.provider_list
        kwargs.update(overrides)
        return cls(**kwargs)

    def request_stop(self) -> None:
        """Ask the run to drain: finish in-flight units, then interrupt.

        Creates the stop event lazily so callers that constructed the
        executor without one (the CLI's signal handler) can still stop it.
        """
        if self.stop_event is None:
            self.stop_event = threading.Event()
        self.stop_event.set()

    @property
    def stats(self) -> ev.ExecutionStats:
        return self._stats_collector.stats

    @property
    def metrics(self) -> Optional["MetricsRegistry"]:
        """The merged study-wide registry (None unless metrics enabled)."""
        if self._metrics_aggregator is None:
            return None
        return self._metrics_aggregator.registry

    @property
    def flight_dumps(self) -> list[dict]:
        """Flight-recorder dumps from executed units, in plan order."""
        if self.plan is None:
            return []
        dumps: list[dict] = []
        for unit in self.plan.units:
            payload = self._obs_payloads.get(unit.unit_id)
            if payload:
                dumps.extend(payload.get("flight_dumps") or [])
        return dumps

    def _suite_kwargs(self) -> dict:
        return {
            "max_vantage_points": self.max_vantage_points,
            "retry_policy": self.retry,
            "obs_config": self.obs_config,
        }

    # ------------------------------------------------------------------
    # Runtime telemetry: sampler + ledger lifecycle
    # ------------------------------------------------------------------
    def _resource_probe(self, elapsed_s: float) -> ev.ResourceSample:
        """One coordinator resource reading (called from the sampler)."""
        from repro.obs.sample import rss_kb

        cache = self._suites
        return ev.ResourceSample(
            elapsed_s=round(elapsed_s, 3),
            rss_kb=rss_kb(),
            queue_depth=self._live["queue_depth"],
            in_flight=self._live["in_flight"],
            shards_resident=len(cache),
            suite_hits=getattr(cache, "hits", 0),
            suite_misses=getattr(cache, "misses", 0),
        )

    def _start_telemetry(self):
        """Start the resource sampler (and ledger) when requested.

        Returns an opaque handle for :meth:`_stop_telemetry`; None when
        telemetry is off — the zero-overhead default.
        """
        if not self._telemetry_on:
            return None
        from repro.obs.sample import ResourceSampler, RunLedger

        ledger = (
            RunLedger(self.ledger_path, bus=self.bus)
            if self.ledger_path is not None
            else None
        )
        sampler = ResourceSampler(
            bus=self.bus,
            probe=self._resource_probe,
            interval_s=self.sample_interval_s or 0.5,
        )
        sampler.start()
        handle = [sampler, ledger]
        self._telemetry_handle = handle
        return handle

    def _stop_sampler(self) -> None:
        """Stop the ticker ahead of the terminal bus event.

        Stop emits one final sample so even sub-interval runs ledger at
        least one reading; calling this *before* StudyFinished/StudyHalted
        publishes keeps the terminal event last on the bus — consumers
        (the serve event stream, watch) rely on that ordering.
        """
        handle = getattr(self, "_telemetry_handle", None)
        if not handle or handle[0] is None:
            return
        handle[0].stop()
        handle[0] = None

    def _stop_telemetry(self, handle) -> None:
        if handle is None:
            return
        self._stop_sampler()
        # The ledger closes after the terminal event so it records wall_s.
        if handle[1] is not None:
            handle[1].close()
        self._telemetry_handle = None

    def _shard_suite(self, shard: int) -> TestSuite:
        """The coordinator's suite for one shard (small LRU)."""
        return _shard_suite_cached(
            self._suites,
            self.seed,
            self.source,
            shard,
            self.shards,
            self._suite_kwargs(),
        )

    def _plan(self, suite: TestSuite) -> StudyPlan:
        """The study plan: shard decompositions concatenated in order.

        Shard order equals source order equals the monolithic provider
        order, so the sharded plan lists the same providers and units, in
        the same sequence, as the unsharded one — only the ``shard`` tags
        differ.
        """
        if self.shards == 1:
            plan = suite.plan_study()
        else:
            from repro.runtime.units import decompose_study

            plan = StudyPlan(
                seed=self.seed, max_vantage_points=self.max_vantage_points
            )
            for shard in range(self.shards):
                sub = decompose_study(self._shard_suite(shard), shard=shard)
                plan.providers.extend(sub.providers)
                plan.units.extend(sub.units)
        plan.source_key = self.source.plan_key()
        return plan

    # ------------------------------------------------------------------
    def run(self, limit_units: Optional[int] = None) -> "StudyReport":
        """Execute the study; returns the assembled report.

        ``limit_units`` stops after that many units have been *executed*
        (checkpointed units don't count) and assembles a partial report —
        the hook the resume tests and benchmarks use to simulate a study
        killed mid-run without actually killing a process.
        """
        telemetry = self._start_telemetry()
        try:
            return self._run(limit_units)
        finally:
            self._stop_telemetry(telemetry)

    def _run(self, limit_units: Optional[int] = None) -> "StudyReport":
        started = time.perf_counter()
        suite = self._shard_suite(0)
        plan = self._plan(suite)
        self.plan = plan

        checkpoint = (
            CheckpointStore(self.checkpoint_dir)
            if self.checkpoint_dir
            else None
        )
        journal = checkpoint.open(plan) if checkpoint else {}

        unit_results: dict[str, list["VantagePointResults"]] = {}
        skipped: list[AuditUnit] = []
        pending: list[AuditUnit] = []
        for unit in plan.units:
            entry = journal.get(unit.unit_id)
            loaded = (
                checkpoint.load_unit_results(entry)
                if checkpoint and entry is not None
                else None
            )
            if loaded is not None:
                unit_results[unit.unit_id] = loaded
                skipped.append(unit)
            else:
                pending.append(unit)
        if limit_units is not None:
            pending = pending[:limit_units]

        self.bus.publish(
            ev.StudyStarted(
                total_units=len(plan.units),
                providers=len(plan.providers),
                vantage_points=plan.total_vantage_points,
                workers=self.workers,
                resumed_units=len(skipped),
            )
        )
        for unit in skipped:
            entry = journal[unit.unit_id]
            self.bus.publish(
                ev.UnitSkipped(unit_id=unit.unit_id, wall_ms=entry.wall_ms)
            )

        if pending:
            if self.workers == 1 and self.pool is None:
                self._run_inline(suite, plan, pending, unit_results, checkpoint)
            else:
                self._run_pooled(plan, pending, unit_results, checkpoint)

        if self.shards == 1:
            report = suite.assemble_study(plan, unit_results)
        else:
            report = self._assemble_sharded(suite, plan, unit_results)
        if suite.obs is not None:
            # Assembly runs on the coordinator outside any unit; its
            # profiled "analysis" phase joins the study aggregate as one
            # extra delta at the same merge point as everything else.
            snapshot = suite.obs.drain_phases()
            if snapshot is not None:
                self.bus.publish(
                    ev.UnitMetrics(unit_id="__analysis__", snapshot=snapshot)
                )
        self._finalize_obs(plan)
        self._stop_sampler()
        wall_s = time.perf_counter() - started
        self.bus.publish(
            ev.StudyFinished(
                wall_s=wall_s,
                completed=self.stats.completed_units,
                skipped=len(skipped),
                failed=self.stats.failed_units,
                retried=self.stats.retried_units,
            )
        )
        return report

    # ------------------------------------------------------------------
    # Sharded assembly (shards>1, in-memory)
    # ------------------------------------------------------------------
    def _assemble_sharded(
        self,
        suite: TestSuite,
        plan: StudyPlan,
        unit_results: dict[str, list["VantagePointResults"]],
    ) -> "StudyReport":
        """Assemble a sharded run into one report, in plan order.

        Each provider is assembled on its own shard's suite (only that
        world contains it); the study-wide aggregates fold in per
        provider exactly as the monolithic ``_assemble_study`` does, so
        the report is identical to an unsharded run's.
        """
        from repro.core.harness import StudyReport

        shard_of: dict[str, int] = {}
        for unit in plan.units:
            shard_of.setdefault(unit.provider, unit.shard)

        def assemble() -> "StudyReport":
            study = StudyReport()
            for name in plan.providers:
                shard_suite = self._shard_suite(shard_of.get(name, 0))
                report = shard_suite.assemble_provider_from_plan(
                    plan, name, unit_results
                )
                study.providers[name] = report
                shard_suite.ingest_provider_aggregates(study, name, report)
            return study

        profile = suite.obs.profile if suite.obs is not None else None
        if profile is None:
            return assemble()
        with profile.phase("analysis"):
            return assemble()

    # ------------------------------------------------------------------
    # Streaming execution: archive-as-you-go, flat memory
    # ------------------------------------------------------------------
    def run_streamed(
        self,
        archive_dir: str | pathlib.Path,
        per_shard: bool = False,
        limit_units: Optional[int] = None,
    ) -> StreamedStudy:
        """Execute the study, writing the archive as units complete.

        Unlike :meth:`run`, unit results never accumulate in memory: each
        completed unit's files are appended to the archive immediately
        (via :class:`~repro.core.archive.StreamingArchiveWriter`) and the
        per-provider reports are assembled one at a time from those files,
        then dropped once their verdicts are written.  Peak memory is
        O(one provider), flat in study size.

        ``per_shard=True`` writes one self-contained archive per shard
        (``<archive_dir>/shard-NNNN/``), each with its own manifest;
        :func:`repro.core.archive.merge_archives` combines them into an
        archive byte-identical to an unsharded, unstreamed run's.  With
        ``per_shard=False`` the single streamed archive itself is
        byte-identical to ``write_study_archive`` of :meth:`run`'s report.

        ``limit_units`` mirrors :meth:`run`: stop after that many executed
        units, leaving a readable archive prefix for resume tests.
        """
        telemetry = self._start_telemetry()
        try:
            return self._run_streamed(archive_dir, per_shard, limit_units)
        finally:
            self._stop_telemetry(telemetry)

    def _run_streamed(
        self,
        archive_dir: str | pathlib.Path,
        per_shard: bool,
        limit_units: Optional[int],
    ) -> StreamedStudy:
        from repro.core.archive import StreamingArchiveWriter

        started = time.perf_counter()
        suite = self._shard_suite(0)
        plan = self._plan(suite)
        self.plan = plan

        archive_dir = pathlib.Path(archive_dir)
        if per_shard:
            writers = {
                shard: StreamingArchiveWriter(
                    archive_dir / f"shard-{shard:04d}"
                )
                for shard in range(self.shards)
            }
        else:
            writer = StreamingArchiveWriter(archive_dir)
            writers = {shard: writer for shard in range(self.shards)}
        self._stream_writers = writers

        checkpoint = (
            CheckpointStore(self.checkpoint_dir)
            if self.checkpoint_dir
            else None
        )
        journal = checkpoint.open(plan) if checkpoint else {}

        unit_results: dict[str, object] = {}
        skipped: list[AuditUnit] = []
        pending: list[AuditUnit] = []
        try:
            for unit in plan.units:
                entry = journal.get(unit.unit_id)
                loaded = (
                    checkpoint.load_unit_results(entry)
                    if checkpoint and entry is not None
                    else None
                )
                if loaded is not None:
                    # Replay the checkpointed bytes into the archive, then
                    # let them go — a resumed streamed run re-persists, it
                    # never re-holds.
                    for vp_results in loaded:
                        writers[unit.shard].append_result(vp_results)
                    unit_results[unit.unit_id] = True
                    skipped.append(unit)
                else:
                    pending.append(unit)
            if limit_units is not None:
                pending = pending[:limit_units]

            self.bus.publish(
                ev.StudyStarted(
                    total_units=len(plan.units),
                    providers=len(plan.providers),
                    vantage_points=plan.total_vantage_points,
                    workers=self.workers,
                    resumed_units=len(skipped),
                )
            )
            for unit in skipped:
                entry = journal[unit.unit_id]
                self.bus.publish(
                    ev.UnitSkipped(
                        unit_id=unit.unit_id, wall_ms=entry.wall_ms
                    )
                )

            if pending:
                if self.workers == 1 and self.pool is None:
                    self._run_inline(
                        suite, plan, pending, unit_results, checkpoint
                    )
                else:
                    self._run_pooled(
                        plan, pending, unit_results, checkpoint
                    )

            streamed = self._assemble_streamed(
                suite, plan, unit_results, writers, per_shard, archive_dir
            )
        finally:
            self._stream_writers = None
        if suite.obs is not None:
            snapshot = suite.obs.drain_phases()
            if snapshot is not None:
                self.bus.publish(
                    ev.UnitMetrics(unit_id="__analysis__", snapshot=snapshot)
                )
        self._finalize_obs(plan)
        self._stop_sampler()
        wall_s = time.perf_counter() - started
        self.bus.publish(
            ev.StudyFinished(
                wall_s=wall_s,
                completed=self.stats.completed_units,
                skipped=len(skipped),
                failed=self.stats.failed_units,
                retried=self.stats.retried_units,
            )
        )
        return streamed

    def _assemble_streamed(
        self,
        suite: TestSuite,
        plan: StudyPlan,
        unit_results: dict[str, object],
        writers: dict[int, "StreamingArchiveWriter"],
        per_shard: bool,
        archive_dir: pathlib.Path,
    ) -> StreamedStudy:
        """Assemble providers one at a time from the archived bytes.

        Per provider: read its unit files back, build the report on its
        shard's suite, write its verdicts, fold it into the per-archive
        aggregates, drop it.  Finally each archive's manifest is built
        from those aggregates — through the same
        :func:`~repro.core.archive.build_manifest` as the monolithic
        writer, so the bytes agree.
        """
        from repro.core.archive import (
            _merge_manifests,
            _slug,
            build_manifest,
            geoip_row_dicts,
            read_vantage_point_results,
            redirect_row_dicts,
        )
        from repro.core.harness import StudyReport

        shard_of: dict[str, int] = {}
        for unit in plan.units:
            shard_of.setdefault(unit.provider, unit.shard)

        # One aggregate bundle per distinct archive directory.
        accs: dict[pathlib.Path, dict] = {}

        def acc_for(writer: "StreamingArchiveWriter") -> dict:
            acc = accs.get(writer.root)
            if acc is None:
                acc = {
                    "study": StudyReport(),
                    "providers": [],
                    "intercepting": set(),
                    "failing_open": set(),
                    "misrepresenting": set(),
                }
                accs[writer.root] = acc
            return acc

        verdicts: dict[str, dict] = {}

        def assemble() -> None:
            for name in plan.providers:
                shard = shard_of.get(name, 0)
                writer = writers[shard]
                shard_suite = self._shard_suite(shard)
                per_unit: dict[str, list] = {}
                for unit in plan.units:
                    if unit.provider != name:
                        continue
                    if not unit_results.get(unit.unit_id):
                        continue
                    directory = writer.root / _slug(name)
                    loaded = []
                    complete = True
                    for hostname in unit.hostnames:
                        path = directory / (_slug(hostname) + ".json")
                        try:
                            loaded.append(read_vantage_point_results(path))
                        except (OSError, ValueError, KeyError, TypeError):
                            complete = False
                            break
                    if complete:
                        per_unit[unit.unit_id] = loaded
                report = shard_suite.assemble_provider_from_plan(
                    plan, name, per_unit
                )
                acc = acc_for(writer)
                acc["providers"].append(name)
                shard_suite.ingest_provider_aggregates(
                    acc["study"], name, report
                )
                if (
                    report.injection_detected
                    or report.proxy_detected
                    or report.tls_interception_detected
                ):
                    acc["intercepting"].add(name)
                if report.fails_open:
                    acc["failing_open"].add(name)
                if report.misrepresents_locations:
                    acc["misrepresenting"].add(name)
                verdicts[name] = writer.write_verdicts(report)

        profile = suite.obs.profile if suite.obs is not None else None
        if profile is None:
            assemble()
        else:
            with profile.phase("analysis"):
                assemble()

        manifests: list[dict] = []
        shard_dirs: list[pathlib.Path] = []
        finalized: set[pathlib.Path] = set()
        for shard in sorted(writers):
            writer = writers[shard]
            if writer.root in finalized:
                continue
            finalized.add(writer.root)
            acc = acc_for(writer)
            manifest = build_manifest(
                providers=acc["providers"],
                intercepting=acc["intercepting"],
                failing_open=acc["failing_open"],
                misrepresenting=acc["misrepresenting"],
                geoip_rows=geoip_row_dicts(acc["study"]),
                redirect_rows=redirect_row_dicts(acc["study"]),
            )
            writer.finalize(manifest)
            manifests.append(manifest)
            if per_shard:
                shard_dirs.append(writer.root)
        merged = (
            manifests[0] if len(manifests) == 1
            else _merge_manifests(manifests)
        )
        return StreamedStudy(
            archive_dir=archive_dir,
            shard_dirs=shard_dirs,
            providers=list(plan.providers),
            manifest=merged,
            verdicts=verdicts,
        )

    # ------------------------------------------------------------------
    # Inline (workers=1): the sequential reference path
    # ------------------------------------------------------------------
    def _run_inline(
        self,
        suite: TestSuite,
        plan: StudyPlan,
        pending: list[AuditUnit],
        unit_results: dict,
        checkpoint: Optional[CheckpointStore],
    ) -> None:
        index_of = {u.unit_id: i + 1 for i, u in enumerate(plan.units)}
        for position, unit in enumerate(pending):
            if self._stopped():
                self._halt(remaining=len(pending) - position)
            self._live["queue_depth"] = len(pending) - position - 1
            self._live["in_flight"] = 1
            self.bus.publish(
                ev.UnitStarted(
                    unit_id=unit.unit_id,
                    provider=unit.provider,
                    kind=unit.kind.value,
                    index=index_of[unit.unit_id],
                    total=len(plan.units),
                    shard=unit.shard,
                )
            )
            unit_suite = (
                suite if self.shards == 1 else self._shard_suite(unit.shard)
            )
            outcome = self._attempt_with_retry(
                unit,
                lambda: _timed_run_unit(unit_suite, unit, self._suites),
            )
            if outcome is None:
                continue
            self._commit(
                unit,
                outcome,
                unit_results,
                checkpoint,
                queue_depth=len(pending) - position - 1,
            )
        self._live["queue_depth"] = 0
        self._live["in_flight"] = 0

    # ------------------------------------------------------------------
    # Cooperative stop
    # ------------------------------------------------------------------
    def _stopped(self) -> bool:
        return self.stop_event is not None and self.stop_event.is_set()

    def _halt(self, remaining: int) -> None:
        """Publish the halt and raise; every committed unit is durable."""
        completed = self.stats.completed_units
        self._stop_sampler()
        self.bus.publish(
            ev.StudyHalted(completed=completed, remaining=remaining)
        )
        raise StudyInterrupted(completed=completed, remaining=remaining)

    # ------------------------------------------------------------------
    # Pooled (workers>1 or a shared pool): thread or process backend
    # ------------------------------------------------------------------
    def _run_pooled(
        self,
        plan: StudyPlan,
        pending: list[AuditUnit],
        unit_results: dict,
        checkpoint: Optional[CheckpointStore],
    ) -> None:
        if self.backend == "process":
            pool: concurrent.futures.Executor = (
                concurrent.futures.ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_process_worker_init,
                    initargs=(
                        self.seed,
                        self.source,
                        self.shards,
                        self._suite_kwargs(),
                    ),
                )
            )
            run_unit: Callable[[AuditUnit], UnitOutcome] = _process_run_unit
        else:
            pool = self.pool or concurrent.futures.ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-runtime",
            )
            thread_state = threading.local()

            def run_unit(unit: AuditUnit) -> UnitOutcome:
                suites = getattr(thread_state, "suites", None)
                if suites is None:
                    suites = SuiteCache()
                    thread_state.suites = suites
                suite = _shard_suite_cached(
                    suites,
                    self.seed,
                    self.source,
                    unit.shard,
                    self.shards,
                    self._suite_kwargs(),
                )
                return _timed_run_unit(suite, unit, suites)

        index_of = {u.unit_id: i + 1 for i, u in enumerate(plan.units)}
        # future -> (unit, attempt number, dispatch timestamp)
        active: dict[concurrent.futures.Future, tuple[AuditUnit, int, float]]
        active = {}
        flagged_overrun: set[str] = set()
        stop_seen = False
        dropped = 0  # pending units cancelled before they started
        try:
            for unit in pending:
                self.bus.publish(
                    ev.UnitStarted(
                        unit_id=unit.unit_id,
                        provider=unit.provider,
                        kind=unit.kind.value,
                        index=index_of[unit.unit_id],
                        total=len(plan.units),
                        shard=unit.shard,
                    )
                )
                active[pool.submit(run_unit, unit)] = (
                    unit,
                    1,
                    time.perf_counter(),
                )
            while active:
                # Every submitted-but-unfinished unit is in `active`; at
                # most `workers` of them actually hold a worker.
                self._live["in_flight"] = min(len(active), self.workers)
                self._live["queue_depth"] = max(
                    0, len(active) - self.workers
                )
                if self._stopped() and not stop_seen:
                    # Drain: revoke everything still queued; the loop then
                    # runs on to commit the units workers already hold.
                    stop_seen = True
                    for future in list(active):
                        if future.cancel():
                            active.pop(future)
                            dropped += 1
                done, _ = concurrent.futures.wait(
                    active,
                    timeout=self._wait_timeout(),
                    return_when=concurrent.futures.FIRST_COMPLETED,
                )
                if self.unit_timeout_s:
                    self._enforce_timeouts(active, done, flagged_overrun)
                for future in done:
                    unit, attempt, _dispatched = active.pop(future)
                    try:
                        outcome = future.result()
                    except concurrent.futures.CancelledError:
                        continue  # already reported by _enforce_timeouts
                    except Exception as exc:  # noqa: BLE001 - unit isolation
                        if self.retry.should_retry(attempt) and not stop_seen:
                            backoff = self.retry.backoff_s(
                                attempt, key=unit.unit_id
                            )
                            self.bus.publish(
                                ev.UnitRetried(
                                    unit_id=unit.unit_id,
                                    attempt=attempt,
                                    backoff_s=backoff,
                                    error=repr(exc),
                                )
                            )
                            if self.sleep_on_retry and backoff:
                                time.sleep(backoff)
                            active[pool.submit(run_unit, unit)] = (
                                unit,
                                attempt + 1,
                                time.perf_counter(),
                            )
                        else:
                            self.bus.publish(
                                ev.UnitFailed(
                                    unit_id=unit.unit_id,
                                    attempts=attempt,
                                    error=repr(exc),
                                )
                            )
                        continue
                    self._commit(
                        unit,
                        outcome,
                        unit_results,
                        checkpoint,
                        queue_depth=len(active),
                    )
        finally:
            self._live["queue_depth"] = 0
            self._live["in_flight"] = 0
            if pool is not self.pool:
                pool.shutdown(wait=True)
        if stop_seen:
            self._halt(remaining=dropped)

    def _wait_timeout(self) -> Optional[float]:
        """Poll interval for the dispatch loop.

        Bounded whenever a timeout must be enforced or a stop event could
        arrive; None (block until a future completes) otherwise.
        """
        if self.unit_timeout_s:
            return min(1.0, self.unit_timeout_s)
        if self.stop_event is not None:
            return 0.2
        return None

    def _enforce_timeouts(
        self,
        active: dict,
        done: set,
        flagged_overrun: set[str],
    ) -> None:
        now = time.perf_counter()
        for future, (unit, attempt, dispatched) in list(active.items()):
            if future in done or now - dispatched <= self.unit_timeout_s:
                continue
            if future.cancel():
                # Never started: a hard timeout while queued.
                active.pop(future)
                self.bus.publish(
                    ev.UnitTimedOut(
                        unit_id=unit.unit_id, timeout_s=self.unit_timeout_s
                    )
                )
                self.bus.publish(
                    ev.UnitFailed(
                        unit_id=unit.unit_id,
                        attempts=attempt,
                        error=f"timed out after {self.unit_timeout_s}s",
                    )
                )
            elif unit.unit_id not in flagged_overrun:
                # Running workers cannot be preempted; flag the overrun
                # once and let the unit finish (its result is still used).
                flagged_overrun.add(unit.unit_id)
                self.bus.publish(
                    ev.UnitTimedOut(
                        unit_id=unit.unit_id, timeout_s=self.unit_timeout_s
                    )
                )

    # ------------------------------------------------------------------
    def _attempt_with_retry(
        self, unit: AuditUnit, attempt_once: Callable[[], UnitOutcome]
    ) -> Optional[UnitOutcome]:
        attempt = 0
        while True:
            attempt += 1
            try:
                return attempt_once()
            except Exception as exc:  # noqa: BLE001 - unit isolation
                if not self.retry.should_retry(attempt):
                    self.bus.publish(
                        ev.UnitFailed(
                            unit_id=unit.unit_id,
                            attempts=attempt,
                            error=repr(exc),
                        )
                    )
                    return None
                backoff = self.retry.backoff_s(attempt, key=unit.unit_id)
                self.bus.publish(
                    ev.UnitRetried(
                        unit_id=unit.unit_id,
                        attempt=attempt,
                        backoff_s=backoff,
                        error=repr(exc),
                    )
                )
                if self.sleep_on_retry and backoff:
                    time.sleep(backoff)

    def _commit(
        self,
        unit: AuditUnit,
        outcome: UnitOutcome,
        unit_results: dict,
        checkpoint: Optional[CheckpointStore],
        queue_depth: int,
    ) -> None:
        results, connect_retries, wall_ms, obs_payload, resources = outcome
        if self._stream_writers is not None:
            # Streaming mode: results go straight to the archive (before
            # the checkpoint commit, so a journalled unit always has its
            # bytes on disk) and only a completion marker stays in memory.
            writer = self._stream_writers[unit.shard]
            for vp_results in results:
                writer.append_result(vp_results)
            unit_results[unit.unit_id] = True
        else:
            unit_results[unit.unit_id] = results
        if checkpoint is not None:
            checkpoint.record(unit, results, wall_ms, connect_retries)
        if obs_payload is not None:
            self._obs_payloads[unit.unit_id] = obs_payload
            snapshot = obs_payload.get("metrics")
            if snapshot is not None:
                # Commit is the checkpoint boundary: per-worker metrics
                # deltas merge into the study aggregate exactly when the
                # unit's results become durable.
                self.bus.publish(
                    ev.UnitMetrics(unit_id=unit.unit_id, snapshot=snapshot)
                )
        if resources and self._telemetry_on:
            self.bus.publish(
                ev.WorkerSample(unit_id=unit.unit_id, **resources)
            )
        self.bus.publish(
            ev.UnitFinished(
                unit_id=unit.unit_id,
                wall_ms=wall_ms,
                vantage_points=len(results),
                queue_depth=queue_depth,
                connect_retries=connect_retries,
            )
        )

    def _finalize_obs(self, plan: StudyPlan) -> None:
        """Assemble the study trace and publish the merged metrics.

        Trace records are concatenated in *plan order* — like result
        assembly, scheduling order never reaches the output, so the JSONL
        trace from ``workers=8 / process`` is byte-identical to the
        ``workers=1`` run (units resumed from a checkpoint were never
        executed and contribute no spans).
        """
        if self.obs_config is None:
            return
        if self.obs_config.trace_enabled:
            from repro.obs.trace import JsonlSpanSink, study_record

            records: list[dict] = [
                study_record(
                    seed=self.seed,
                    providers=plan.providers,
                    total_units=len(plan.units),
                    max_vantage_points=self.max_vantage_points,
                )
            ]
            for unit in plan.units:
                payload = self._obs_payloads.get(unit.unit_id)
                if payload:
                    records.extend(payload.get("trace") or [])
            self.trace_records = records
            if self.obs_config.trace_path:
                sink = JsonlSpanSink(self.obs_config.trace_path)
                try:
                    for record in records:
                        sink.write(record)
                finally:
                    sink.close()
        if self._metrics_aggregator is not None:
            snapshot = self._metrics_aggregator.registry.snapshot()
            self.bus.publish(ev.StudyMetrics(snapshot=snapshot))
            if self.obs_config.metrics_path:
                import json
                import pathlib

                path = pathlib.Path(self.obs_config.metrics_path)
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(
                    json.dumps(snapshot, sort_keys=True, indent=2) + "\n",
                    encoding="utf-8",
                )
