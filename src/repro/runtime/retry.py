"""Retry policy shared by the harness and the runtime executor.

The paper's Section 5.2 reports that endpoints outside North America and
Europe "frequently failed and required re-collection"; the seed harness
handled that with a single hard-coded inline retry around the connect call.
:class:`RetryPolicy` extracts that behaviour into a reusable, seeded
policy: bounded attempts, exponential backoff, and *deterministic* jitter
derived from ``(policy seed, unit key, attempt)`` so two runs of the same
study schedule identical delays regardless of worker count.

The policy is pure — it never sleeps itself.  Callers decide whether a
computed backoff is worth waiting out (the simulated internet has no real
flakiness, so the executor sleeps only when asked to).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass


def stable_hash(*parts: object) -> int:
    """A process-independent 64-bit hash of the given parts.

    ``hash()`` is salted per interpreter; study seeds and jitter must not
    be, or worker processes would disagree with the coordinator.
    """
    text = "\x1f".join(str(p) for p in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with seeded exponential backoff.

    ``max_attempts`` counts *total* attempts, so ``max_attempts=2`` is the
    seed harness's "retry once" behaviour and ``max_attempts=1`` disables
    retries entirely.
    """

    max_attempts: int = 2
    backoff_base_s: float = 0.5
    backoff_factor: float = 2.0
    jitter: float = 0.25  # +/- fraction of the nominal backoff
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def should_retry(self, attempt: int) -> bool:
        """Whether another attempt is allowed after *attempt* failures."""
        return attempt < self.max_attempts

    def backoff_s(self, attempt: int, key: str = "") -> float:
        """Delay before retry number *attempt* (1-based), jittered.

        Deterministic in ``(seed, key, attempt)``: the same unit retried at
        the same attempt always backs off for the same duration, on any
        worker of any run.
        """
        if attempt < 1:
            return 0.0
        nominal = self.backoff_base_s * self.backoff_factor ** (attempt - 1)
        if not self.jitter:
            return nominal
        rng = random.Random(stable_hash(self.seed, key, attempt))
        swing = self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, nominal * (1.0 + swing))

    @classmethod
    def no_retries(cls) -> "RetryPolicy":
        return cls(max_attempts=1)

    @classmethod
    def single_retry(cls) -> "RetryPolicy":
        """The seed harness's inline behaviour (one retry, no waiting)."""
        return cls(max_attempts=2, backoff_base_s=0.0, jitter=0.0)
