"""Longitudinal study scheduling.

The paper is a single cross-sectional measurement; its own discussion (and
follow-up vantage-coverage work) argues the ecosystem should be re-measured
over time — providers change infrastructure, fix leaks, or start
misrepresenting new regions.  :class:`LongitudinalScheduler` runs the same
study as *N* snapshots and diffs the per-provider verdict vectors between
consecutive snapshots, producing a :class:`LongitudinalReport` of exactly
what changed.

Each snapshot gets a deterministically derived seed
(:func:`derive_snapshot_seed`) and, optionally, its own vantage-point
budget.  The budget knob matters: several paper findings are
coverage-sensitive (a provider that misrepresents only some regions looks
clean under a 1-endpoint budget and dirty under 5), so varying budgets
across snapshots is the canonical way to study how conclusions depend on
measurement effort — while a constant-configuration schedule verifies
stability (all diffs empty, itself a reproduction claim).
"""

from __future__ import annotations

import pathlib
import threading
from concurrent import futures
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.runtime import events as ev
from repro.runtime.executor import StudyExecutor, StudyInterrupted
from repro.runtime.retry import RetryPolicy, stable_hash

if TYPE_CHECKING:
    from repro.core.harness import StudyReport
    from repro.obs.config import ObsConfig

#: Per-provider verdict fields compared between snapshots (mirrors the
#: verdict summary written by ``repro.core.archive``).
VERDICT_FIELDS = (
    "injection_detected",
    "proxy_detected",
    "tls_interception_detected",
    "dns_leak_detected",
    "ipv6_leak_detected",
    "webrtc_leak_detected",
    "fails_open",
    "misrepresents_locations",
)


def derive_snapshot_seed(study_seed: int, index: int) -> int:
    """Deterministic seed for snapshot *index* (0-based).

    Snapshot 0 keeps the study seed itself so a one-snapshot schedule is
    exactly the plain study; later snapshots get derived seeds.
    """
    if index == 0:
        return study_seed
    return stable_hash("snapshot-seed", study_seed, index) % (2**31)


def verdict_map(report: "StudyReport") -> dict[str, dict[str, object]]:
    """Flatten a study into {provider: {verdict field: value}}."""
    flattened: dict[str, dict[str, object]] = {}
    for name, provider_report in report.providers.items():
        flattened[name] = {
            fieldname: getattr(provider_report, fieldname)
            for fieldname in VERDICT_FIELDS
        }
    return flattened


@dataclass(frozen=True)
class VerdictChange:
    """One provider verdict that differs between consecutive snapshots."""

    provider: str
    verdict: str
    before: object
    after: object

    def describe(self) -> str:
        return (
            f"{self.provider}: {self.verdict} "
            f"{self.before!r} -> {self.after!r}"
        )

    def to_dict(self) -> dict:
        return {
            "provider": self.provider,
            "verdict": self.verdict,
            "before": self.before,
            "after": self.after,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "VerdictChange":
        return cls(
            provider=data["provider"],
            verdict=data["verdict"],
            before=data.get("before"),
            after=data.get("after"),
        )


@dataclass
class SnapshotDiff:
    """Changes from snapshot ``index - 1`` to snapshot ``index``."""

    index: int
    changes: list[VerdictChange] = field(default_factory=list)
    providers_added: list[str] = field(default_factory=list)
    providers_removed: list[str] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not (
            self.changes or self.providers_added or self.providers_removed
        )

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "changes": [change.to_dict() for change in self.changes],
            "providers_added": list(self.providers_added),
            "providers_removed": list(self.providers_removed),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SnapshotDiff":
        return cls(
            index=data["index"],
            changes=[
                VerdictChange.from_dict(raw)
                for raw in data.get("changes", ())
            ],
            providers_added=list(data.get("providers_added", ())),
            providers_removed=list(data.get("providers_removed", ())),
        )


def diff_verdicts(
    before: dict[str, dict[str, object]],
    after: dict[str, dict[str, object]],
    index: int,
) -> SnapshotDiff:
    """Compare two verdict maps field by field."""
    diff = SnapshotDiff(index=index)
    diff.providers_added = sorted(set(after) - set(before))
    diff.providers_removed = sorted(set(before) - set(after))
    for provider in sorted(set(before) & set(after)):
        fields = set(before[provider]) | set(after[provider])
        for verdict in sorted(fields):
            old = before[provider].get(verdict)
            new = after[provider].get(verdict)
            if old != new:
                diff.changes.append(
                    VerdictChange(
                        provider=provider,
                        verdict=verdict,
                        before=old,
                        after=new,
                    )
                )
    return diff


@dataclass(frozen=True)
class SnapshotSpec:
    """Parameters for one snapshot in the schedule."""

    index: int
    seed: int
    max_vantage_points: Optional[int]

    @property
    def label(self) -> str:
        return f"snapshot-{self.index:02d}"


@dataclass
class SnapshotRecord:
    """One executed snapshot: its spec, verdicts, and where it landed."""

    spec: SnapshotSpec
    verdicts: dict[str, dict[str, object]]
    archive_dir: Optional[pathlib.Path] = None

    def to_dict(self) -> dict:
        return {
            "index": self.spec.index,
            "seed": self.spec.seed,
            "max_vantage_points": self.spec.max_vantage_points,
            "verdicts": self.verdicts,
            "archive_dir": (
                str(self.archive_dir) if self.archive_dir is not None else None
            ),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SnapshotRecord":
        archive_dir = data.get("archive_dir")
        return cls(
            spec=SnapshotSpec(
                index=data["index"],
                seed=data["seed"],
                max_vantage_points=data.get("max_vantage_points"),
            ),
            verdicts=data.get("verdicts", {}),
            archive_dir=(
                pathlib.Path(archive_dir) if archive_dir is not None else None
            ),
        )


@dataclass
class LongitudinalReport:
    """All snapshots plus the consecutive diffs between them."""

    snapshots: list[SnapshotRecord] = field(default_factory=list)
    diffs: list[SnapshotDiff] = field(default_factory=list)
    #: True when the schedule was stopped before running every snapshot
    #: (daemon drain, job cancellation) — the snapshots list is a prefix.
    interrupted: bool = False

    @property
    def changed_snapshots(self) -> list[SnapshotDiff]:
        return [d for d in self.diffs if not d.is_empty]

    @property
    def is_stable(self) -> bool:
        """True when every consecutive diff is empty."""
        return not self.changed_snapshots

    def to_dict(self) -> dict:
        """Stable JSON form (the shape ``repro.serve`` stores and serves)."""
        return {
            "snapshots": [record.to_dict() for record in self.snapshots],
            "diffs": [diff.to_dict() for diff in self.diffs],
            "interrupted": self.interrupted,
            "stable": self.is_stable,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LongitudinalReport":
        return cls(
            snapshots=[
                SnapshotRecord.from_dict(raw)
                for raw in data.get("snapshots", ())
            ],
            diffs=[
                SnapshotDiff.from_dict(raw) for raw in data.get("diffs", ())
            ],
            interrupted=bool(data.get("interrupted", False)),
        )

    def summary(self) -> str:
        lines = [
            f"{len(self.snapshots)} snapshot(s), "
            f"{len(self.changed_snapshots)} with verdict changes"
            + (" [interrupted]" if self.interrupted else "")
        ]
        for diff in self.changed_snapshots:
            lines.append(f"  snapshot {diff.index}:")
            for change in diff.changes:
                lines.append(f"    {change.describe()}")
            for name in diff.providers_added:
                lines.append(f"    provider appeared: {name}")
            for name in diff.providers_removed:
                lines.append(f"    provider disappeared: {name}")
        return "\n".join(lines)


class LongitudinalScheduler:
    """Drive *snapshots* executor runs and diff their verdicts.

    ``vantage_budgets`` (one entry per snapshot, ``None`` entries falling
    back to ``max_vantage_points``) varies measurement effort across
    snapshots; ``archive_root`` archives each snapshot under
    ``<root>/snapshot-NN`` in the standard study-archive format.
    """

    def __init__(
        self,
        seed: int = 2018,
        snapshots: int = 2,
        providers: Optional[list[str]] = None,
        max_vantage_points: Optional[int] = 5,
        vantage_budgets: Optional[Sequence[Optional[int]]] = None,
        workers: int = 1,
        backend: str = "thread",
        retry: Optional[RetryPolicy] = None,
        archive_root: Optional[str | pathlib.Path] = None,
        bus: Optional[ev.EventBus] = None,
        reseed: bool = True,
        obs: Optional["ObsConfig"] = None,
        stop_event: Optional[threading.Event] = None,
        pool: Optional[futures.Executor] = None,
        checkpoint_root: Optional[str | pathlib.Path] = None,
    ) -> None:
        if snapshots < 1:
            raise ValueError("snapshots must be >= 1")
        if vantage_budgets is not None and len(vantage_budgets) != snapshots:
            raise ValueError(
                "vantage_budgets must have one entry per snapshot "
                f"({len(vantage_budgets)} != {snapshots})"
            )
        self.seed = seed
        self.snapshots = snapshots
        self.providers = providers
        self.max_vantage_points = max_vantage_points
        self.vantage_budgets = (
            list(vantage_budgets) if vantage_budgets is not None else None
        )
        self.workers = workers
        self.backend = backend
        self.retry = retry
        self.archive_root = (
            pathlib.Path(archive_root) if archive_root is not None else None
        )
        self.bus = bus
        self.obs = obs if obs is not None and obs.enabled else None
        # stop_event halts the schedule between snapshots and drains the
        # snapshot in flight (the executor commits running units first);
        # pool lets every snapshot share one external worker pool; and
        # checkpoint_root gives each snapshot a durable checkpoint under
        # <root>/snapshot-NN so an interrupted series resumes mid-snapshot.
        self.stop_event = stop_event
        self.pool = pool
        self.checkpoint_root = (
            pathlib.Path(checkpoint_root)
            if checkpoint_root is not None
            else None
        )
        # reseed=True rebuilds each snapshot's world from a derived seed
        # (an ecosystem that may drift); reseed=False models pure
        # re-measurement of a static ecosystem, where any non-empty diff
        # is itself a reproducibility failure.
        self.reseed = reseed

    def schedule(self) -> list[SnapshotSpec]:
        specs = []
        for index in range(self.snapshots):
            budget = self.max_vantage_points
            if self.vantage_budgets is not None:
                override = self.vantage_budgets[index]
                if override is not None:
                    budget = override
            specs.append(
                SnapshotSpec(
                    index=index,
                    seed=(
                        derive_snapshot_seed(self.seed, index)
                        if self.reseed
                        else self.seed
                    ),
                    max_vantage_points=budget,
                )
            )
        return specs

    def run(self) -> LongitudinalReport:
        from repro.core.archive import write_study_archive

        report = LongitudinalReport()
        previous: Optional[dict[str, dict[str, object]]] = None
        for spec in self.schedule():
            if self.stop_event is not None and self.stop_event.is_set():
                report.interrupted = True
                break
            snapshot_obs = self.obs
            if snapshot_obs is not None and snapshot_obs.trace_path:
                # One JSONL per snapshot: <path>.snapshot-NN so traces
                # from consecutive snapshots never interleave.
                snapshot_obs = snapshot_obs.replace(
                    trace_path=f"{snapshot_obs.trace_path}.{spec.label}"
                )
            if snapshot_obs is not None and snapshot_obs.metrics_path:
                snapshot_obs = snapshot_obs.replace(
                    metrics_path=f"{snapshot_obs.metrics_path}.{spec.label}"
                )
            executor = StudyExecutor(
                seed=spec.seed,
                providers=self.providers,
                max_vantage_points=spec.max_vantage_points,
                workers=self.workers,
                backend=self.backend,
                retry=self.retry,
                bus=self.bus,
                obs=snapshot_obs,
                stop_event=self.stop_event,
                pool=self.pool,
                checkpoint_dir=(
                    str(self.checkpoint_root / spec.label)
                    if self.checkpoint_root is not None
                    else None
                ),
            )
            try:
                study = executor.run()
            except StudyInterrupted:
                # The snapshot's completed units are checkpointed (when a
                # checkpoint_root is set); the series stops cleanly here
                # and a re-run resumes this snapshot mid-flight.
                report.interrupted = True
                break
            verdicts = verdict_map(study)
            archive_dir = None
            if self.archive_root is not None:
                archive_dir = write_study_archive(
                    study, self.archive_root / spec.label
                )
            report.snapshots.append(
                SnapshotRecord(
                    spec=spec, verdicts=verdicts, archive_dir=archive_dir
                )
            )
            if previous is not None:
                report.diffs.append(
                    diff_verdicts(previous, verdicts, spec.index)
                )
            previous = verdicts
        return report
