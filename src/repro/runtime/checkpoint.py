"""Incremental study checkpoints.

A killed study should resume without re-running finished work.  The
executor records every completed unit here as soon as it finishes:

- the unit's per-vantage-point results are written through
  :func:`repro.core.archive.write_unit_result`, i.e. in the *same* format
  (``results/<provider slug>/<hostname slug>.json``) as a final study
  archive — a checkpoint is just an archive that isn't finished yet;
- a journal line is then appended to ``units.jsonl``; the journal append is
  the commit point, so a crash between the result files and the journal
  simply re-runs that unit (results are deterministic, the rewrite is
  byte-identical).

``plan.json`` pins the study parameters; resuming with a different seed,
vantage-point budget, or provider set raises
:class:`CheckpointMismatchError` instead of silently mixing studies.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.archive import read_vantage_point_results, write_unit_result
from repro.runtime.units import AuditUnit, StudyPlan, _slug

if TYPE_CHECKING:
    from repro.core.results import VantagePointResults

_PLAN = "plan.json"
_JOURNAL = "units.jsonl"
_RESULTS = "results"


class CheckpointMismatchError(RuntimeError):
    """The checkpoint directory belongs to a different study."""


@dataclass(frozen=True)
class CompletedUnit:
    """One journal entry: a unit that finished in a previous (or this) run."""

    unit_id: str
    provider: str
    hostnames: tuple[str, ...]
    wall_ms: float
    connect_retries: int = 0


class CheckpointStore:
    """Persist and recover per-unit study progress in a directory."""

    def __init__(self, directory: str | pathlib.Path) -> None:
        self.directory = pathlib.Path(directory)

    @property
    def results_root(self) -> pathlib.Path:
        return self.directory / _RESULTS

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def open(self, plan: StudyPlan) -> dict[str, CompletedUnit]:
        """Bind the store to *plan*; returns the units already completed.

        A fresh directory is initialised with the plan; an existing one is
        validated against it (same seed, budget and provider set) and its
        journal replayed.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        self.results_root.mkdir(parents=True, exist_ok=True)
        plan_file = self.directory / _PLAN
        if plan_file.exists():
            existing = StudyPlan.from_json(plan_file.read_text())
            if existing.fingerprint() != plan.fingerprint():
                raise CheckpointMismatchError(
                    f"checkpoint at {self.directory} was created for "
                    f"[{existing.fingerprint()}], not [{plan.fingerprint()}]"
                )
        else:
            plan_file.write_text(plan.to_json())
        return self.completed_units()

    def completed_units(self) -> dict[str, CompletedUnit]:
        """Replay the journal; tolerates a truncated final line."""
        journal = self.directory / _JOURNAL
        completed: dict[str, CompletedUnit] = {}
        if not journal.exists():
            return completed
        for line in journal.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                raw = json.loads(line)
            except json.JSONDecodeError:
                continue  # killed mid-append; the unit will simply re-run
            entry = CompletedUnit(
                unit_id=raw["unit"],
                provider=raw["provider"],
                hostnames=tuple(raw["hostnames"]),
                wall_ms=raw.get("wall_ms", 0.0),
                connect_retries=raw.get("connect_retries", 0),
            )
            completed[entry.unit_id] = entry
        return completed

    # ------------------------------------------------------------------
    # Recording and recovery
    # ------------------------------------------------------------------
    def record(
        self,
        unit: AuditUnit,
        results: list["VantagePointResults"],
        wall_ms: float,
        connect_retries: int = 0,
    ) -> None:
        """Persist one finished unit (results first, then the journal)."""
        for vp_results in results:
            write_unit_result(vp_results, self.results_root)
        entry = {
            "unit": unit.unit_id,
            "provider": unit.provider,
            "hostnames": [r.hostname for r in results],
            "wall_ms": round(wall_ms, 3),
            "connect_retries": connect_retries,
        }
        with (self.directory / _JOURNAL).open("a") as journal:
            journal.write(json.dumps(entry) + "\n")

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------
    def prune(self) -> int:
        """Delete the store's files; returns how many were removed.

        Checkpoints are scaffolding: once the study they guard has been
        assembled (or abandoned), the journal, plan pin and per-unit result
        files are dead weight — a long-running daemon prunes them as jobs
        reach a terminal state so its state directory stays bounded.  A
        pruned directory is indistinguishable from one that never existed;
        resuming into it simply starts a fresh checkpoint.
        """
        if not self.directory.exists():
            return 0
        removed = 0
        for path in sorted(
            self.directory.rglob("*"), key=lambda p: len(p.parts),
            reverse=True,
        ):
            if path.is_dir():
                path.rmdir()
            else:
                path.unlink()
                removed += 1
        self.directory.rmdir()
        return removed

    def load_unit_results(
        self, entry: CompletedUnit
    ) -> Optional[list["VantagePointResults"]]:
        """Rehydrate a journalled unit's results, or None if files are gone."""
        results = []
        provider_dir = self.results_root / _slug(entry.provider)
        for hostname in entry.hostnames:
            path = provider_dir / (_slug(hostname) + ".json")
            if not path.exists():
                return None
            results.append(read_vantage_point_results(path))
        return results
