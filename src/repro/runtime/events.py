"""Progress and telemetry events for study execution.

The executor publishes typed events onto an :class:`EventBus` as units move
through their lifecycle — queued, started, finished, retried, failed,
skipped (checkpoint hits) — with per-unit wall time and the remaining queue
depth.  Subscribers are plain callables; two are provided:

- :class:`TextProgressRenderer` — one line per event to a stream, the CLI's
  ``--progress`` view;
- :class:`StatsCollector` — aggregates counts and wall times into an
  :class:`ExecutionStats` the executor exposes after the run (and the
  runtime benchmark reads for its scaling numbers).

Handler exceptions are swallowed (a broken renderer must not kill a
two-hour study); the bus keeps the first error for inspection.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional, TextIO


# ----------------------------------------------------------------------
# Event types
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StudyStarted:
    total_units: int
    providers: int
    vantage_points: int
    workers: int
    resumed_units: int = 0


@dataclass(frozen=True)
class UnitStarted:
    unit_id: str
    provider: str
    kind: str
    index: int          # 1-based position in the plan
    total: int
    shard: int = 0      # which shard's world serves this unit


@dataclass(frozen=True)
class UnitFinished:
    unit_id: str
    wall_ms: float
    vantage_points: int
    queue_depth: int    # units still outstanding after this one
    connect_retries: int = 0


@dataclass(frozen=True)
class UnitRetried:
    unit_id: str
    attempt: int        # the attempt that just failed (1-based)
    backoff_s: float
    error: str


@dataclass(frozen=True)
class UnitFailed:
    unit_id: str
    attempts: int
    error: str


@dataclass(frozen=True)
class UnitSkipped:
    """Unit satisfied from a checkpoint instead of being executed."""

    unit_id: str
    wall_ms: float      # the original run's cost, from the journal


@dataclass(frozen=True)
class UnitTimedOut:
    unit_id: str
    timeout_s: float


@dataclass(frozen=True)
class StudyFinished:
    wall_s: float
    completed: int
    skipped: int
    failed: int
    retried: int


@dataclass(frozen=True)
class StudyHalted:
    """The run stopped on request (SIGTERM, cancellation, daemon drain).

    Published after every in-flight unit has been committed and the
    checkpoint flushed; ``remaining`` units stay pending for a resume.
    """

    completed: int
    remaining: int


@dataclass(frozen=True)
class UnitMetrics:
    """One unit's drained metrics delta, published at its commit point.

    Commit is the checkpoint boundary, so metrics aggregation and durable
    progress advance together — a resumed study re-merges exactly the
    deltas of the units it re-runs, nothing more.  ``snapshot`` has the
    :meth:`repro.obs.metrics.MetricsRegistry.drain` shape.
    """

    unit_id: str
    snapshot: dict


@dataclass(frozen=True)
class StudyMetrics:
    """The merged study-wide metrics snapshot, published at study end."""

    snapshot: dict


@dataclass(frozen=True)
class ResourceSample:
    """A coordinator-side resource reading from the background sampler.

    Published every tick by :class:`repro.obs.sample.ResourceSampler`
    while a ledgered/dashboarded study runs.  All fields are read from
    the OS and the executor's own live bookkeeping — never from world
    state — so the sample stream cannot perturb results.
    """

    elapsed_s: float
    rss_kb: int
    queue_depth: int = 0        # submitted units no worker has picked up
    in_flight: int = 0          # units currently executing
    shards_resident: int = 0    # shard worlds live in this process
    suite_hits: int = 0         # world-suite LRU hits (cumulative)
    suite_misses: int = 0       # world-suite LRU misses (cumulative)
    worker: str = "coordinator"


@dataclass(frozen=True)
class WorkerSample:
    """A worker's resource reading, carried home with a finished unit.

    Pool workers cannot publish onto the coordinator's bus directly
    (process workers live in another address space), so each completed
    unit piggybacks one sample; the executor publishes it at the unit's
    commit point.
    """

    unit_id: str
    worker: str
    rss_kb: int
    shards_resident: int = 0
    suite_hits: int = 0
    suite_misses: int = 0


Event = object
Handler = Callable[[Event], None]


# ----------------------------------------------------------------------
# Wire serialization
# ----------------------------------------------------------------------
_EVENT_TYPES = {
    cls.__name__: cls
    for cls in (
        StudyStarted,
        UnitStarted,
        UnitFinished,
        UnitRetried,
        UnitFailed,
        UnitSkipped,
        UnitTimedOut,
        StudyFinished,
        StudyHalted,
        UnitMetrics,
        StudyMetrics,
        ResourceSample,
        WorkerSample,
    )
}


def event_to_dict(event: Event) -> Optional[dict]:
    """Serialize a bus event to a JSON-safe dict, or None if untyped.

    The ``event`` key carries the dataclass name; everything else is the
    dataclass's own fields.  Unknown (ad-hoc) events serialize to None so
    stream consumers can skip them without guessing at their shape.
    """
    name = type(event).__name__
    if name not in _EVENT_TYPES:
        return None
    data = dataclasses.asdict(event)
    data["event"] = name
    return data


def event_from_dict(data: dict) -> Optional[Event]:
    """Rebuild a typed event from :func:`event_to_dict` output.

    Returns None for unknown event names, so newer daemons can stream
    event types an older client does not know about.
    """
    payload = dict(data)
    payload.pop("seq", None)
    name = payload.pop("event", None)
    cls = _EVENT_TYPES.get(name)
    if cls is None:
        return None
    fields = {f.name for f in dataclasses.fields(cls)}
    return cls(**{k: v for k, v in payload.items() if k in fields})


class EventBus:
    """Synchronous fan-out of events to subscribers (thread-safe).

    The bus keeps a bounded history of published events, and
    :meth:`subscribe` replays it to the new handler by default — so a
    subscriber attached *after* a study has started (a UI connecting to a
    long run, a metrics aggregator created mid-flight) still observes the
    events it missed, in order, rather than joining blind.  Handlers that
    only care about the live stream subscribe with ``replay=False``.
    """

    HISTORY_LIMIT = 4096

    def __init__(self) -> None:
        self._handlers: list[Handler] = []
        self._lock = threading.RLock()
        self._history: deque[Event] = deque(maxlen=self.HISTORY_LIMIT)
        self.first_handler_error: Optional[BaseException] = None

    def subscribe(self, handler: Handler, replay: bool = True) -> Handler:
        # Replay and registration are atomic with respect to publish: a
        # concurrent publisher blocks until the replay finishes, so the
        # handler sees history followed by live events with no gap,
        # duplicate, or reordering.  The lock is reentrant so a handler
        # may subscribe/publish from within its own replay.
        with self._lock:
            if replay:
                for event in list(self._history):
                    self._dispatch(handler, event)
            self._handlers.append(handler)
        return handler

    def unsubscribe(self, handler: Handler) -> None:
        with self._lock:
            if handler in self._handlers:
                self._handlers.remove(handler)

    def publish(self, event: Event) -> None:
        with self._lock:
            handlers = list(self._handlers)
            self._history.append(event)
        for handler in handlers:
            self._dispatch(handler, event)

    def _dispatch(self, handler: Handler, event: Event) -> None:
        try:
            handler(event)
        except BaseException as exc:  # noqa: BLE001 - isolation by design
            if self.first_handler_error is None:
                self.first_handler_error = exc


# ----------------------------------------------------------------------
# Subscribers
# ----------------------------------------------------------------------
@dataclass
class ExecutionStats:
    """Aggregate counters for one executor run."""

    total_units: int = 0
    completed_units: int = 0
    skipped_units: int = 0
    failed_units: int = 0
    retried_units: int = 0
    timed_out_units: int = 0
    connect_retries: int = 0
    wall_s: float = 0.0
    halted: bool = False
    unit_wall_ms: dict[str, float] = field(default_factory=dict)

    @property
    def executed_units(self) -> int:
        return self.completed_units

    @property
    def total_unit_wall_ms(self) -> float:
        return sum(self.unit_wall_ms.values())

    @property
    def max_unit_wall_ms(self) -> float:
        return max(self.unit_wall_ms.values(), default=0.0)

    def summary(self) -> str:
        return (
            f"{self.completed_units} units executed, "
            f"{self.skipped_units} from checkpoint, "
            f"{self.failed_units} failed, "
            f"{self.retried_units} retried, "
            f"{self.connect_retries} endpoint reconnects, "
            f"{self.wall_s:.1f}s wall"
        )


class StatsCollector:
    """EventBus subscriber that fills an :class:`ExecutionStats`."""

    def __init__(self) -> None:
        self.stats = ExecutionStats()

    def __call__(self, event: Event) -> None:
        stats = self.stats
        if isinstance(event, StudyStarted):
            stats.total_units = event.total_units
        elif isinstance(event, UnitFinished):
            stats.completed_units += 1
            stats.connect_retries += event.connect_retries
            stats.unit_wall_ms[event.unit_id] = event.wall_ms
        elif isinstance(event, UnitSkipped):
            stats.skipped_units += 1
        elif isinstance(event, UnitRetried):
            stats.retried_units += 1
        elif isinstance(event, UnitFailed):
            stats.failed_units += 1
        elif isinstance(event, UnitTimedOut):
            stats.timed_out_units += 1
        elif isinstance(event, StudyHalted):
            stats.halted = True
        elif isinstance(event, StudyFinished):
            stats.wall_s = event.wall_s


class MetricsAggregator:
    """EventBus subscriber folding :class:`UnitMetrics` into one registry.

    Obs metrics flow through the same bus as progress events rather than a
    side channel, so any subscriber — the executor's own aggregate, a CLI
    renderer, a test — sees the identical stream; combined with replay, an
    aggregator attached mid-study still converges on the same totals
    (snapshot merging is commutative).
    """

    def __init__(self, registry=None) -> None:
        if registry is None:
            from repro.obs.metrics import MetricsRegistry

            registry = MetricsRegistry()
        self.registry = registry

    def __call__(self, event: Event) -> None:
        if isinstance(event, UnitMetrics):
            self.registry.merge(event.snapshot)
        elif isinstance(event, ResourceSample):
            # Resource series are wall-clock-like: nondeterministic by
            # nature, so they live under runtime.* gauges only and never
            # mix with the deterministic counter/histogram families.
            registry = self.registry
            registry.set_gauge("runtime.rss_kb", event.rss_kb)
            self._track_peak("runtime.rss_peak_kb", event.rss_kb)
            registry.set_gauge("runtime.queue_depth", event.queue_depth)
            registry.set_gauge("runtime.in_flight", event.in_flight)
            registry.set_gauge(
                "runtime.shards_resident", event.shards_resident
            )
            self._track_peak(
                "runtime.shards_resident_peak", event.shards_resident
            )
            registry.set_gauge("runtime.suite_hits", event.suite_hits)
            registry.set_gauge("runtime.suite_misses", event.suite_misses)
        elif isinstance(event, WorkerSample):
            self._track_peak("runtime.worker_rss_peak_kb", event.rss_kb)
            self._track_peak(
                "runtime.shards_resident_peak", event.shards_resident
            )

    def _track_peak(self, name: str, value: float) -> None:
        gauge = self.registry.gauge(name)
        if value > gauge.value:
            gauge.set(value)


class TextProgressRenderer:
    """Render events as plain text lines (the CLI ``--progress`` view)."""

    def __init__(self, stream: TextIO, verbose: bool = True) -> None:
        self.stream = stream
        self.verbose = verbose
        self._done = 0
        self._total = 0

    def _emit(self, line: str) -> None:
        self.stream.write(line + "\n")

    def __call__(self, event: Event) -> None:
        if isinstance(event, StudyStarted):
            self._total = event.total_units
            # Checkpointed units arrive as UnitSkipped events, which is
            # where they are counted — do not pre-seed the counter here.
            self._done = 0
            self._emit(
                f"study: {event.total_units} units over "
                f"{event.providers} providers "
                f"({event.vantage_points} vantage points), "
                f"{event.workers} worker(s)"
                + (
                    f", {event.resumed_units} already checkpointed"
                    if event.resumed_units
                    else ""
                )
            )
        elif isinstance(event, UnitFinished):
            self._done += 1
            if self.verbose:
                self._emit(
                    f"[{self._done:4d}/{self._total}] done "
                    f"{event.unit_id}  {event.wall_ms / 1000:.2f}s  "
                    f"(queue {event.queue_depth})"
                )
        elif isinstance(event, UnitSkipped):
            self._done += 1
            if self.verbose:
                self._emit(
                    f"[{self._done:4d}/{self._total}] skip "
                    f"{event.unit_id}  (checkpointed)"
                )
        elif isinstance(event, UnitRetried):
            self._emit(
                f"retry {event.unit_id} after attempt {event.attempt} "
                f"(+{event.backoff_s:.2f}s): {event.error}"
            )
        elif isinstance(event, UnitFailed):
            self._emit(
                f"FAILED {event.unit_id} after {event.attempts} "
                f"attempt(s): {event.error}"
            )
        elif isinstance(event, UnitTimedOut):
            self._emit(
                f"timeout {event.unit_id} exceeded {event.timeout_s:.0f}s"
            )
        elif isinstance(event, StudyHalted):
            self._emit(
                f"study halted on request: {event.completed} unit(s) "
                f"committed, {event.remaining} left for resume"
            )
        elif isinstance(event, StudyFinished):
            self._emit(
                f"study finished in {event.wall_s:.1f}s: "
                f"{event.completed} executed, {event.skipped} skipped, "
                f"{event.failed} failed, {event.retried} retried"
            )
