"""Live study dashboard: one state machine, three renderers.

:class:`DashboardState` is an :class:`~repro.runtime.events.EventBus`
subscriber that folds the typed event stream — unit lifecycle, resource
samples, per-unit metrics snapshots — into the numbers an operator
watches during a long run: per-shard progress, throughput and ETA,
worker RSS, and the hottest delivery stages by self-time.

The same state drives three views:

- ``repro study --dashboard`` — an in-terminal refreshing panel
  (:func:`render_dashboard`), redrawn in place on a TTY and emitted as
  periodic compact lines elsewhere;
- ``GET /jobs/{id}/top`` — the daemon rebuilds a state by replaying the
  job's event log (live or persisted) and returns :meth:`DashboardState.top`,
  so a remote ``repro client top`` shows the numbers a local dashboard
  would (:func:`render_top` renders the reply);
- tests — the state is a plain object fed with events, no terminal
  required.

Everything here is read-only over the event stream: attaching a
dashboard cannot perturb results, and the archive bytes are pinned
unchanged with the dashboard on (``tests/test_ledger.py``).
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Optional, TextIO

from repro.runtime import events as ev


class DashboardState:
    """Fold the event stream into the live numbers the views render.

    Thread-safe: the executor's bus dispatches from worker-facing
    threads while a renderer thread reads ``top()`` concurrently.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._t0: Optional[float] = None
        self.total_units = 0
        self.providers = 0
        self.workers = 0
        self.resumed = 0
        self.completed = 0
        self.skipped = 0
        self.failed = 0
        self.retried = 0
        self.finished = False
        self.halted = False
        self.wall_s: Optional[float] = None
        # shard -> [started, done]; unit_id -> shard for lookups on finish.
        self._shards: dict[int, list[int]] = {}
        self._unit_shard: dict[str, int] = {}
        # worker name -> latest resource reading (coordinator + workers).
        self._resources: dict[str, dict] = {}
        # Merged UnitMetrics snapshots (stage/phase series), lazily built.
        self._registry = None

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------
    def __call__(self, event: ev.Event) -> None:
        with self._lock:
            self._fold(event)

    def _fold(self, event: ev.Event) -> None:
        if isinstance(event, ev.StudyStarted):
            self._t0 = time.monotonic()
            self.total_units = event.total_units
            self.providers = event.providers
            self.workers = event.workers
            self.resumed = event.resumed_units
        elif isinstance(event, ev.UnitStarted):
            self._unit_shard[event.unit_id] = event.shard
            self._shards.setdefault(event.shard, [0, 0])[0] += 1
        elif isinstance(event, ev.UnitFinished):
            self.completed += 1
            shard = self._unit_shard.get(event.unit_id)
            if shard is not None:
                self._shards.setdefault(shard, [0, 0])[1] += 1
        elif isinstance(event, ev.UnitSkipped):
            self.skipped += 1
        elif isinstance(event, ev.UnitFailed):
            self.failed += 1
        elif isinstance(event, ev.UnitRetried):
            self.retried += 1
        elif isinstance(event, (ev.ResourceSample, ev.WorkerSample)):
            record = {
                "rss_kb": event.rss_kb,
                "shards_resident": event.shards_resident,
                "suite_hits": event.suite_hits,
                "suite_misses": event.suite_misses,
            }
            if isinstance(event, ev.ResourceSample):
                record["queue_depth"] = event.queue_depth
                record["in_flight"] = event.in_flight
            self._resources[event.worker] = record
        elif isinstance(event, ev.UnitMetrics):
            if self._registry is None:
                from repro.obs.metrics import MetricsRegistry

                self._registry = MetricsRegistry()
            self._registry.merge(event.snapshot)
        elif isinstance(event, ev.StudyHalted):
            self.halted = True
        elif isinstance(event, ev.StudyFinished):
            self.finished = True
            self.wall_s = event.wall_s

    # ------------------------------------------------------------------
    # Derived numbers
    # ------------------------------------------------------------------
    def top(self, stage_limit: int = 5) -> dict:
        """The dashboard numbers as one JSON-safe dict.

        This is the body of ``GET /jobs/{id}/top`` and the input of
        :func:`render_top` — everything derived (rate, ETA, shares) is
        computed here so every view agrees.
        """
        with self._lock:
            elapsed = (
                self.wall_s
                if self.wall_s is not None
                else (
                    time.monotonic() - self._t0
                    if self._t0 is not None
                    else 0.0
                )
            )
            rate = self.completed / elapsed if elapsed > 0 else None
            remaining = max(
                0, self.total_units - self.skipped - self.completed
            )
            eta_s = remaining / rate if rate else None
            shards = [
                {"shard": shard, "started": counts[0], "done": counts[1]}
                for shard, counts in sorted(self._shards.items())
            ]
            resources = {
                name: dict(record)
                for name, record in sorted(self._resources.items())
            }
            stages: list[dict] = []
            if self._registry is not None:
                from repro.obs.stages import stage_breakdown

                snapshot = self._registry.snapshot()
                stages = [
                    {
                        "stage": row["stage"],
                        "calls": row["calls"],
                        "est_ms": round(row["est_ms"], 3),
                        "share": round(row["share"], 4),
                    }
                    for row in stage_breakdown(snapshot)[:stage_limit]
                ]
            return {
                "total_units": self.total_units,
                "completed": self.completed,
                "skipped": self.skipped,
                "failed": self.failed,
                "retried": self.retried,
                "providers": self.providers,
                "workers": self.workers,
                "finished": self.finished,
                "halted": self.halted,
                "elapsed_s": round(elapsed, 3),
                "units_per_s": round(rate, 3) if rate is not None else None,
                "eta_s": round(eta_s, 1) if eta_s is not None else None,
                "shards": shards,
                "resources": resources,
                "stages": stages,
            }


def _bar(done: int, total: int, width: int = 24) -> str:
    if total <= 0:
        return "-" * width
    filled = int(round(width * min(done, total) / total))
    return "#" * filled + "-" * (width - filled)


def _fmt_eta(eta_s: Optional[float]) -> str:
    if eta_s is None:
        return "--:--"
    eta = int(eta_s)
    return f"{eta // 60:02d}:{eta % 60:02d}"


def render_top(top: dict) -> str:
    """Render a ``top`` dict (local state or the daemon's reply)."""
    done = top["completed"] + top["skipped"]
    lines = [
        f"units    : {done}/{top['total_units']} "
        f"({top['completed']} run, {top['skipped']} from checkpoint, "
        f"{top['failed']} failed, {top['retried']} retried)",
        f"progress : [{_bar(done, top['total_units'])}] "
        f"{done / top['total_units'] * 100 if top['total_units'] else 0:.1f}%"
        f"  {top['units_per_s'] or 0:.2f} units/s  "
        f"ETA {_fmt_eta(top['eta_s'])}"
        + ("  [done]" if top["finished"] else "")
        + ("  [halted]" if top["halted"] else ""),
    ]
    if top["shards"]:
        lines.append("shards   :")
        for entry in top["shards"]:
            lines.append(
                f"  shard {entry['shard']:>4d}  "
                f"[{_bar(entry['done'], entry['started'], 16)}] "
                f"{entry['done']}/{entry['started']}"
            )
    if top["resources"]:
        lines.append("workers  :  (rss kB, shards resident, LRU hit/miss)")
        for name, record in top["resources"].items():
            lines.append(
                f"  {name:<28s} {record.get('rss_kb', 0):>10,}"
                f" {record.get('shards_resident', 0):>4d}"
                f" {record.get('suite_hits', 0):>6d}/"
                f"{record.get('suite_misses', 0)}"
            )
    if top["stages"]:
        lines.append("stages   :  (self-time share of delivery)")
        for row in top["stages"]:
            lines.append(
                f"  {row['stage']:<10s} [{_bar(int(row['share'] * 100), 100, 16)}]"
                f" {row['share'] * 100:5.1f}%  "
                f"{row['calls']:>9,d} calls  {row['est_ms']:>9.1f} ms"
            )
    return "\n".join(lines)


def render_dashboard(state: DashboardState, width: int = 72) -> str:
    """One dashboard frame (the ``--dashboard`` panel body)."""
    top = state.top()
    header = (
        f"repro study dashboard — {top['providers']} providers, "
        f"{top['workers']} worker(s)"
    )
    return header + "\n" + "=" * min(width, len(header)) + "\n" + render_top(
        top
    )


class Dashboard:
    """Drive the in-terminal view: subscribe, refresh, final frame.

    On a TTY the panel redraws in place (cursor-up escapes); on a pipe
    it degrades to one compact progress line per refresh so logs stay
    readable.  ``stop()`` always emits one final frame, so even a run
    shorter than the refresh interval shows its finished numbers.
    """

    def __init__(
        self,
        bus: ev.EventBus,
        stream: Optional[TextIO] = None,
        interval_s: float = 1.0,
    ) -> None:
        self.state = DashboardState()
        self.bus = bus
        self.stream = stream if stream is not None else sys.stderr
        self.interval_s = interval_s
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._last_lines = 0
        bus.subscribe(self.state, replay=True)

    # ------------------------------------------------------------------
    def _is_tty(self) -> bool:
        try:
            return bool(self.stream.isatty())
        except (AttributeError, ValueError):
            return False

    def _draw(self) -> None:
        try:
            if self._is_tty():
                frame = render_dashboard(self.state)
                lines = frame.count("\n") + 1
                if self._last_lines:
                    # Repaint over the previous frame.
                    self.stream.write(f"\x1b[{self._last_lines}F\x1b[J")
                self.stream.write(frame + "\n")
                self._last_lines = lines
            else:
                top = self.state.top()
                done = top["completed"] + top["skipped"]
                self.stream.write(
                    f"dashboard: {done}/{top['total_units']} units  "
                    f"{top['units_per_s'] or 0:.2f}/s  "
                    f"ETA {_fmt_eta(top['eta_s'])}  "
                    f"rss {max((r.get('rss_kb', 0) for r in top['resources'].values()), default=0):,} kB\n"
                )
            self.stream.flush()
        except (OSError, ValueError):
            # A closed stream must never take the study down.
            self._stop.set()

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self._draw()

    def start(self) -> "Dashboard":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="repro-dashboard", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.bus.unsubscribe(self.state)
        self._draw()


def state_from_events(events: list[dict]) -> DashboardState:
    """Rebuild a dashboard state from wire-form event dicts.

    The daemon's ``top`` endpoint replays a job's event log (live or
    persisted) through this, so the remote view derives from exactly the
    frames the watch stream carries.
    """
    state = DashboardState()
    for data in events:
        event = ev.event_from_dict(data)
        if event is not None:
            state(event)
    return state


__all__ = [
    "Dashboard",
    "DashboardState",
    "render_dashboard",
    "render_top",
    "state_from_events",
]
