"""repro.runtime — parallel, checkpointable study execution.

The runtime decomposes a study into independent work units
(:mod:`~repro.runtime.units`), executes them on a worker pool with retry
and timeout handling (:mod:`~repro.runtime.executor`,
:mod:`~repro.runtime.retry`), checkpoints completed units so a killed study
resumes (:mod:`~repro.runtime.checkpoint`), publishes progress events
(:mod:`~repro.runtime.events`), and can drive N-snapshot longitudinal
schedules (:mod:`~repro.runtime.scheduler`).

Exports are lazy (PEP 562): ``repro.core.harness`` imports
``repro.runtime.retry`` at module load while ``repro.runtime.executor``
imports the harness back, so eagerly importing submodules here would create
an import cycle.  Attribute access loads the owning submodule on demand.
"""

from __future__ import annotations

_EXPORTS = {
    "RetryPolicy": "repro.runtime.retry",
    "stable_hash": "repro.runtime.retry",
    "AuditUnit": "repro.runtime.units",
    "StudyPlan": "repro.runtime.units",
    "UnitKind": "repro.runtime.units",
    "decompose_study": "repro.runtime.units",
    "derive_unit_seed": "repro.runtime.units",
    "EventBus": "repro.runtime.events",
    "ExecutionStats": "repro.runtime.events",
    "StatsCollector": "repro.runtime.events",
    "TextProgressRenderer": "repro.runtime.events",
    "CheckpointMismatchError": "repro.runtime.checkpoint",
    "CheckpointStore": "repro.runtime.checkpoint",
    "StudyExecutor": "repro.runtime.executor",
    "StudyInterrupted": "repro.runtime.executor",
    "StudyHalted": "repro.runtime.events",
    "LongitudinalReport": "repro.runtime.scheduler",
    "LongitudinalScheduler": "repro.runtime.scheduler",
    "SnapshotDiff": "repro.runtime.scheduler",
    "VerdictChange": "repro.runtime.scheduler",
    "derive_snapshot_seed": "repro.runtime.scheduler",
    "diff_verdicts": "repro.runtime.scheduler",
    "verdict_map": "repro.runtime.scheduler",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
