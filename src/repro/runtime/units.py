"""Work-unit decomposition of a study.

The paper's study is embarrassingly parallel once phrased as independent
work units: for each provider, one *full-battery* run per selected vantage
point (the manual ~5-endpoint evaluation of Section 5.2) plus one
*lightweight sweep* over every remaining vantage point (the automated
ping/geolocation collection that covered all 1,046 endpoints).  This module
turns a world into that explicit unit list — a :class:`StudyPlan` — which
the executor runs in any order on any number of workers and then reassembles
in plan order, so the resulting :class:`~repro.core.harness.StudyReport`
is identical to a sequential run.

Each unit carries a seed derived deterministically from
``(study seed, provider, hostname)`` via a process-independent hash, so any
per-unit randomness (retry jitter today, stochastic probe schedules
tomorrow) is a stable function of the unit, not of scheduling.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.runtime.retry import stable_hash

if TYPE_CHECKING:
    from repro.core.harness import TestSuite


class UnitKind(enum.Enum):
    """What a unit runs at its vantage point(s)."""

    FULL = "full"       # complete battery at one endpoint
    SWEEP = "sweep"     # ping + geolocation over the remaining endpoints


def derive_unit_seed(study_seed: int, provider: str, hostname: str) -> int:
    """Deterministic per-unit seed; identical at any worker count."""
    return stable_hash("unit-seed", study_seed, provider, hostname)


def _slug(name: str) -> str:
    return "".join(
        ch if ch.isalnum() or ch in "-_" else "_" for ch in name.lower()
    )


@dataclass(frozen=True)
class AuditUnit:
    """One independently executable slice of the study.

    ``shard`` names the world shard the unit's provider lives in
    (always 0 for unsharded studies); workers use it to pick the right
    world template.  It is routing metadata, not identity — two plans
    that differ only in shard assignment have identical unit ids and
    can resume each other's checkpoints.
    """

    provider: str
    kind: UnitKind
    hostnames: tuple[str, ...]
    seed: int
    shard: int = 0

    @property
    def unit_id(self) -> str:
        """Stable identifier used for checkpoints, events and retry keys."""
        anchor = _slug(self.hostnames[0]) if self.kind is UnitKind.FULL else "all"
        return f"{_slug(self.provider)}::{self.kind.value}::{anchor}"

    @property
    def vantage_point_count(self) -> int:
        return len(self.hostnames)

    def describe(self) -> str:
        if self.kind is UnitKind.FULL:
            return f"{self.provider} full battery @ {self.hostnames[0]}"
        return (
            f"{self.provider} infrastructure sweep "
            f"({len(self.hostnames)} endpoints)"
        )


@dataclass
class StudyPlan:
    """The ordered unit list plus the parameters that produced it.

    The order is the sequential harness's execution order; assembling unit
    results in plan order reproduces ``TestSuite.run_study()`` exactly.
    """

    seed: int
    max_vantage_points: int | None
    providers: list[str] = field(default_factory=list)
    units: list[AuditUnit] = field(default_factory=list)
    #: Extra compatibility marker for non-catalogue studies (a generated
    #: source's parameters); None for catalogue/explicit studies so their
    #: fingerprints — and existing checkpoints — stay unchanged.
    source_key: str | None = None

    @property
    def total_vantage_points(self) -> int:
        return sum(u.vantage_point_count for u in self.units)

    def unit_ids(self) -> list[str]:
        return [u.unit_id for u in self.units]

    # ------------------------------------------------------------------
    # Serialisation (the checkpoint directory records the plan so a resume
    # can refuse to mix incompatible studies).
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "max_vantage_points": self.max_vantage_points,
                "providers": self.providers,
                "source_key": self.source_key,
                "units": [
                    {
                        "provider": u.provider,
                        "kind": u.kind.value,
                        "hostnames": list(u.hostnames),
                        "seed": u.seed,
                        "shard": u.shard,
                    }
                    for u in self.units
                ],
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "StudyPlan":
        raw = json.loads(text)
        plan = cls(
            seed=raw["seed"],
            max_vantage_points=raw["max_vantage_points"],
            providers=list(raw["providers"]),
            source_key=raw.get("source_key"),
        )
        for entry in raw["units"]:
            plan.units.append(
                AuditUnit(
                    provider=entry["provider"],
                    kind=UnitKind(entry["kind"]),
                    hostnames=tuple(entry["hostnames"]),
                    seed=entry["seed"],
                    shard=entry.get("shard", 0),
                )
            )
        return plan

    def fingerprint(self) -> str:
        """Compatibility key for checkpoint validation.

        Shard assignment is deliberately excluded: units are identical at
        any shard count, so a 4-shard run may resume a 1-shard checkpoint
        (and vice versa).  A generated source's parameters are included —
        the same names with different topology knobs plan different units.
        """
        base = (
            f"seed={self.seed}"
            f"|max_vps={self.max_vantage_points}"
            f"|providers={','.join(self.providers)}"
        )
        if self.source_key:
            base += f"|source={self.source_key}"
        return base


def decompose_study(suite: "TestSuite", shard: int = 0) -> StudyPlan:
    """Decompose *suite*'s world into the study's unit graph.

    Mirrors ``TestSuite.run_study``: providers in catalogue order; per
    provider, the selected endpoints (full battery) in selection order,
    then a single sweep unit over every remaining endpoint.  ``shard``
    tags every unit with the world shard it belongs to; a sharded plan is
    the concatenation of per-shard decompositions in shard order.
    """
    world = suite.world
    plan = StudyPlan(
        seed=world.seed, max_vantage_points=suite.max_vantage_points
    )
    for name, provider in world.providers.items():
        plan.providers.append(name)
        selected = suite.select_vantage_points(provider)
        selected_names = {vp.hostname for vp in selected}
        for vantage_point in selected:
            plan.units.append(
                AuditUnit(
                    provider=name,
                    kind=UnitKind.FULL,
                    hostnames=(vantage_point.hostname,),
                    seed=derive_unit_seed(
                        world.seed, name, vantage_point.hostname
                    ),
                    shard=shard,
                )
            )
        remaining = tuple(
            vp.hostname
            for vp in provider.vantage_points
            if vp.hostname not in selected_names
        )
        if remaining:
            plan.units.append(
                AuditUnit(
                    provider=name,
                    kind=UnitKind.SWEEP,
                    hostnames=remaining,
                    seed=derive_unit_seed(world.seed, name, "*sweep*"),
                    shard=shard,
                )
            )
    return plan


def units_for_provider(
    plan: StudyPlan, provider: str
) -> Iterable[AuditUnit]:
    return (u for u in plan.units if u.provider == provider)
