"""The VPN client.

:class:`VpnClient` manipulates a host the way real client software
manipulates an operating system:

- creates a ``utunN`` interface carrying the session's tunnel address;
- pins a host route to the vantage point through the physical interface,
  then claims the default route through the tunnel;
- repoints the system resolver at the provider's in-tunnel DNS — *unless*
  the provider's client is one of the sloppy ones (Table 6's DNS leakers);
- blocks IPv6 on the physical interface when the tunnel can't carry it —
  *unless* the client is one of the twelve IPv6 leakers;
- arms a kill switch per the provider's failure mode (Section 6.5).

Disconnecting restores every mutation.  All state changes are visible in
``host.snapshot()``, which is what the metadata test collects.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.net.addresses import Address, parse_address, parse_network
from repro.net.firewall import FirewallAction, FirewallRule
from repro.net.host import Host
from repro.net.interface import Interface
from repro.vpn.protocols import PROTOCOLS, TunnelProtocol
from repro.vpn.provider import FailureMode, VantagePoint, VpnProvider
from repro.vpn.tunnel import TunnelEndpoint, TunnelState

_KILL_SWITCH_COMMENT = "vpn-kill-switch"
_IPV6_BLOCK_COMMENT = "vpn-ipv6-block"

CLIENT_TUNNEL_ADDRESS = "10.8.0.2"
TUNNEL_NETWORK = "10.8.0.0/24"
CLIENT_TUNNEL_ADDRESS_V6 = "fd00:8::2"
TUNNEL_NETWORK_V6 = "fd00:8::/64"


class ConnectionState(enum.Enum):
    DISCONNECTED = "disconnected"
    CONNECTED = "connected"


class TunnelConnectionError(RuntimeError):
    """Raised when a vantage point refuses/drops the connection attempt.

    Mirrors the paper's Section 5.2 experience: endpoints outside North
    America and Europe frequently failed and required re-collection.
    """


@dataclass
class _SavedConfig:
    """Host state to restore on disconnect."""

    dns_servers: list[Address] = field(default_factory=list)


class VpnClient:
    """Client software for one provider, operating on one host."""

    def __init__(
        self,
        host: Host,
        provider: VpnProvider,
        protocol: str | None = None,
        tunnel_interface: str = "utun0",
    ) -> None:
        self.host = host
        self.provider = provider
        protocol_name = protocol or provider.profile.protocols[0]
        self.protocol: TunnelProtocol = PROTOCOLS[protocol_name]
        self.tunnel_interface_name = tunnel_interface
        self.state = ConnectionState.DISCONNECTED
        self.endpoint: Optional[TunnelEndpoint] = None
        self.current_vantage_point: Optional[VantagePoint] = None
        self._saved = _SavedConfig()

    # ------------------------------------------------------------------
    @property
    def leaks(self):
        return self.provider.profile.leaks

    @property
    def fail_closed(self) -> bool:
        return self.leaks.failure_mode is FailureMode.FAIL_CLOSED

    # ------------------------------------------------------------------
    # Per-endpoint connection attempt counter (class-level so a fresh
    # client object retrying the same endpoint sees the earlier failure).
    _attempts: dict[str, int] = {}

    def connect(self, vantage_point: VantagePoint | str) -> ConnectionState:
        """Establish the tunnel to a vantage point (by object or hostname).

        Raises :class:`TunnelConnectionError` on the first attempt to a
        flaky endpoint (Section 5.2's unreliable regions); a retry
        succeeds, mirroring the paper's partial re-collection.
        """
        if self.state is ConnectionState.CONNECTED:
            raise RuntimeError("already connected; disconnect first")
        if isinstance(vantage_point, str):
            vantage_point = self.provider.vantage_point(vantage_point)

        physical = self.host.primary_interface()
        if physical is None:
            raise RuntimeError("host has no physical interface")

        key = f"{self.provider.name}|{vantage_point.hostname}"
        attempt = VpnClient._attempts.get(key, 0) + 1
        VpnClient._attempts[key] = attempt
        if vantage_point.spec.flaky and attempt % 2 == 1:
            raise TunnelConnectionError(
                f"{vantage_point.hostname} dropped the connection "
                f"(attempt {attempt}); retry required"
            )

        # 1. Tunnel interface with the session address.
        tunnel = Interface(
            name=self.tunnel_interface_name,
            is_tunnel=True,
            mtu=1400,
        )
        tunnel.assign_ipv4(CLIENT_TUNNEL_ADDRESS, TUNNEL_NETWORK)
        dual_stack = _tunnels_ipv6(self) and physical.ipv6 is not None
        if dual_stack:
            tunnel.assign_ipv6(CLIENT_TUNNEL_ADDRESS_V6, TUNNEL_NETWORK_V6)
        self.host.add_interface(tunnel)

        # 2. Endpoint behind the interface.
        self.endpoint = TunnelEndpoint(
            host=self.host,
            physical_interface=physical.name,
            server_address=vantage_point.address,
            client_tunnel_address=parse_address(CLIENT_TUNNEL_ADDRESS),
            protocol=self.protocol,
            fail_closed=self.fail_closed,
            client_tunnel_address_v6=(
                parse_address(CLIENT_TUNNEL_ADDRESS_V6) if dual_stack else None
            ),
        )
        tunnel.endpoint = self.endpoint

        # 3. Routes: pin the VP through the physical path, then take the
        #    default route onto the tunnel (metric 0 beats the physical
        #    default installed at world build time).
        self.host.routing.add_prefix(
            f"{vantage_point.address}/32",
            physical.name,
            metric=0,
            source="vpn",
        )
        self.host.routing.add_prefix(
            "0.0.0.0/0", tunnel.name, metric=0, source="vpn"
        )
        if _tunnels_ipv6(self) and physical.ipv6 is not None:
            self.host.routing.add_prefix(
                "::/0", tunnel.name, metric=0, source="vpn"
            )

        # 4. Resolver configuration.
        self._saved.dns_servers = list(self.host.dns_servers)
        if not self.leaks.dns_leak:
            self.host.set_dns_servers([self.provider.dns_resolver_address])
        # else: sloppy client leaves the system resolver untouched — queries
        # to the on-link LAN resolver bypass the tunnel (Table 6, DNS).

        # 5. IPv6 handling: when the tunnel cannot carry IPv6, a careful
        #    client blackholes it; a sloppy one leaves the physical v6
        #    default route live (Table 6, IPv6).
        if not self.protocol.supports_ipv6 or not _tunnels_ipv6(self):
            if not self.leaks.ipv6_leak:
                self.host.firewall.insert(
                    0,
                    FirewallRule(
                        action=FirewallAction.DROP,
                        direction="out",
                        dst=parse_network("::/0"),
                        interface=physical.name,
                        comment=_IPV6_BLOCK_COMMENT,
                    ),
                )

        # 6. Kill switch: block all physical egress except the tunnel path.
        if self.fail_closed:
            self.host.firewall.insert(
                0,
                FirewallRule(
                    action=FirewallAction.ALLOW,
                    direction="out",
                    dst=parse_network(f"{vantage_point.address}/32"),
                    comment=_KILL_SWITCH_COMMENT,
                ),
            )
            self.host.firewall.insert(
                1,
                FirewallRule(
                    action=FirewallAction.DROP,
                    direction="out",
                    protocol="udp",
                    interface=physical.name,
                    comment=_KILL_SWITCH_COMMENT,
                ),
            )
            self.host.firewall.insert(
                2,
                FirewallRule(
                    action=FirewallAction.DROP,
                    direction="out",
                    protocol="tcp",
                    interface=physical.name,
                    comment=_KILL_SWITCH_COMMENT,
                ),
            )

        # 7. Hola-style relay exit (Section 6.6's future-work variant):
        #    the client also terminates tunnels, routing *other customers'*
        #    traffic out through this machine in plaintext.
        if self.provider.profile.capabilities.p2p_relay:
            self._install_relay_exit(physical.name)

        self.current_vantage_point = vantage_point
        self.state = ConnectionState.CONNECTED
        return self.state

    # ------------------------------------------------------------------
    def _install_relay_exit(self, physical_name: str) -> None:
        from repro.net.packet import TunnelPayload

        def relay_exit(packet, host):
            payload = packet.payload
            if not isinstance(payload, TunnelPayload):
                return None
            inner = payload.inner
            physical = host.interfaces.get(physical_name)
            if physical is None or not physical.up:
                return None
            source = physical.address_for_version(inner.dst.version)
            if source is None:
                return None
            # The foreign request egresses with OUR address in plaintext,
            # directly via the hardware interface (a raw-socket exit that
            # bypasses the tunnel's default route) — the exact signal the
            # P2P detection scans for on the capture.
            outbound = inner.with_src(source)
            assert host.internet is not None
            physical.capture.record(
                host.internet.clock_ms, "tx", outbound
            )
            outcome = host.internet.deliver(outbound, host)
            responses = outcome.responses if outcome.ok else []
            for response in responses:
                physical.capture.record(
                    host.internet.clock_ms, "rx", response
                )
            return [
                packet.__class__(
                    src=packet.dst,
                    dst=packet.src,
                    payload=TunnelPayload(
                        protocol=payload.protocol,
                        inner=response.with_dst(inner.src),
                    ),
                )
                for response in responses
            ]

        self.host.bind("tunnel", 0, relay_exit)
        self._relay_installed = True

    # ------------------------------------------------------------------
    def disconnect(self) -> ConnectionState:
        if self.state is ConnectionState.DISCONNECTED:
            return self.state
        if getattr(self, "_relay_installed", False):
            self.host.unbind("tunnel", 0)
            self._relay_installed = False
        if self.endpoint is not None:
            self.endpoint.close()
        self.host.routing.remove_where(source="vpn")
        self.host.remove_interface(self.tunnel_interface_name)
        self.host.firewall.remove_by_comment(_KILL_SWITCH_COMMENT)
        self.host.firewall.remove_by_comment(_IPV6_BLOCK_COMMENT)
        self.host.dns_servers = list(self._saved.dns_servers)
        self.endpoint = None
        self.current_vantage_point = None
        self.state = ConnectionState.DISCONNECTED
        return self.state

    # ------------------------------------------------------------------
    @property
    def tunnel_state(self) -> TunnelState:
        if self.endpoint is None:
            return TunnelState.CLOSED
        return self.endpoint.state

    def describe(self) -> str:
        vp = self.current_vantage_point
        where = vp.describe() if vp else "not connected"
        return f"{self.provider.name} via {self.protocol.name}: {where}"


def _tunnels_ipv6(client: VpnClient) -> bool:
    """Whether this provider actually carries IPv6 inside the tunnel.

    Per the paper, "most VPN services provide only IPv4 support"; no
    catalogue provider tunnels IPv6, but the capability exists for
    forward-looking providers (the study's natural extension): the client
    then claims the v6 default route through the tunnel instead of
    blocking v6 on the physical interface.
    """
    return client.provider.profile.capabilities.tunnels_ipv6
