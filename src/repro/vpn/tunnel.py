"""The client side of a VPN tunnel.

A :class:`TunnelEndpoint` sits behind the client's ``utunN`` interface.
Packets routed onto that interface are encapsulated (protocol + ciphertext
semantics via :class:`~repro.net.packet.TunnelPayload`) and re-sent through
the physical interface to the vantage-point server, which decapsulates,
applies egress behaviours, forwards, and returns encapsulated responses.

The endpoint also implements the client-visible part of *tunnel failure*
(paper Section 6.5): when the outer path stops working (e.g. the
tunnel-failure test firewalls the VPN server), the endpoint enters a failure
state.  What happens next is policy — set by the VPN client from its
kill-switch configuration:

- ``fail_closed=True``: traffic onto the tunnel is dropped forever (safe);
- ``fail_closed=False``: after ``failure_detection_attempts`` failed sends,
  the endpoint *fails open* and forwards inner packets in plaintext via the
  physical interface — the leak the paper observed in 25 of 43 services.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.net.addresses import Address
from repro.net.capture import CaptureEntry
from repro.net.firewall import FirewallAction
from repro.net.internet import DeliveryResult
from repro.net.packet import Packet, TunnelPayload

if TYPE_CHECKING:
    from repro.net.host import Host
    from repro.vpn.protocols import TunnelProtocol


class TunnelState(enum.Enum):
    CONNECTED = "connected"
    FAILED = "failed"          # outer path broken, not yet given up
    FAILED_OPEN = "failed-open"  # leaking via the physical interface
    CLOSED = "closed"


@dataclass
class TunnelEndpoint:
    """Client-side encapsulation endpoint for one VPN connection."""

    host: "Host"
    physical_interface: str
    server_address: Address
    client_tunnel_address: Address
    protocol: "TunnelProtocol"
    fail_closed: bool
    failure_detection_attempts: int = 3
    # Set when the provider tunnels IPv6 (dual-stack tunnel): v6 inner
    # packets carry this as their session source.
    client_tunnel_address_v6: Optional[Address] = None

    state: TunnelState = TunnelState.CONNECTED
    consecutive_failures: int = 0
    leaked_packets: int = 0
    carried_packets: int = 0

    def transmit(self, inner: Packet) -> DeliveryResult:
        """Carry one inner packet across the tunnel (or fail per policy)."""
        if self.state is TunnelState.CLOSED:
            return DeliveryResult(packet=inner, status="interface_down",
                                  detail="tunnel closed")

        if self.state is TunnelState.FAILED_OPEN:
            return self._leak(inner)

        host = self.host
        internet = host.internet
        obs = internet.obs if internet is not None else None
        stages = obs.stages if obs is not None else None
        if stages is not None:
            stages.enter("encap")
        outer = self._encapsulate(inner)
        if stages is not None:
            stages.leave()
        physical = host.interfaces.get(self.physical_interface)
        if physical is None or not physical.up:
            return DeliveryResult(packet=inner, status="interface_down",
                                  detail=self.physical_interface)

        firewall = host.firewall
        if firewall._rules or firewall.default is not FirewallAction.ALLOW:
            if stages is not None:
                stages.enter("firewall")
            permitted = firewall.permits(outer, "out", physical.name)
            if stages is not None:
                stages.leave()
            if not permitted:
                return self._handle_outer_failure(inner, "egress firewall")

        assert internet is not None
        capture = physical.capture
        if capture.enabled:
            if stages is not None:
                stages.enter("capture")
            capture.entries.append(
                CaptureEntry(internet.clock_ms, "tx", capture.interface, outer)
            )
            if stages is not None:
                stages.leave()
        outcome = internet.deliver(outer, host)
        if not outcome.ok:
            return self._handle_outer_failure(inner, outcome.status)

        # Outer path healthy again.
        self.consecutive_failures = 0
        if self.state is TunnelState.FAILED:
            self.state = TunnelState.CONNECTED
        self.carried_packets += 1
        obs = internet.obs
        if obs is not None:
            obs.tunnel_carried()

        inner_responses: list[Packet] = []
        record_rx = capture.enabled
        clock_ms = internet.clock_ms
        for response in outcome.responses:
            if record_rx:
                if stages is not None:
                    stages.enter("capture")
                capture.entries.append(
                    CaptureEntry(clock_ms, "rx", capture.interface, response)
                )
                if stages is not None:
                    stages.leave()
            payload = response.payload
            if isinstance(payload, TunnelPayload):
                inner_responses.append(payload.inner)
        return DeliveryResult(
            packet=inner,
            status="delivered",
            rtt_ms=outcome.rtt_ms,
            responses=inner_responses,
        )

    def close(self) -> None:
        self.state = TunnelState.CLOSED

    # ------------------------------------------------------------------
    def _encapsulate(self, inner: Packet) -> Packet:
        # Memoised per inner-packet content for this endpoint: repeated
        # probes re-encapsulate identically, and reusing the outer object
        # lets the delivery layer's per-object memos (hash, jitter sample,
        # TTL copy) hit.  Physical/tunnel addressing is fixed for the
        # lifetime of the endpoint, so the cached outer cannot go stale.
        cache = getattr(self, "_encap_cache", None)
        if cache is None:
            cache = {}
            object.__setattr__(self, "_encap_cache", cache)
        outer = cache.get(inner)
        if outer is not None:
            return outer
        physical = self.host.interfaces[self.physical_interface]
        src = physical.address_for_version(self.server_address.version)
        if src is None:
            raise RuntimeError("physical interface has no address for tunnel")
        # Inner packets carry the client's tunnel address as source so the
        # vantage point can route replies back into the right session.
        session_source = self.client_tunnel_address
        if inner.dst.version == 6 and self.client_tunnel_address_v6 is not None:
            session_source = self.client_tunnel_address_v6
        rewritten = inner.with_src(session_source)
        outer = Packet(
            src=src,
            dst=self.server_address,
            payload=TunnelPayload(protocol=self.protocol.name, inner=rewritten),
        )
        if len(cache) >= 16384:
            cache.clear()
        cache[inner] = outer
        return outer

    def _handle_outer_failure(self, inner: Packet, detail: str) -> DeliveryResult:
        self.consecutive_failures += 1
        self.state = TunnelState.FAILED
        if self.fail_closed:
            return DeliveryResult(
                packet=inner, status="filtered",
                detail=f"tunnel down, kill switch active ({detail})",
            )
        if self.consecutive_failures >= self.failure_detection_attempts:
            # The client software notices the outage and — lacking a kill
            # switch — quietly reverts to the physical default route.
            self.state = TunnelState.FAILED_OPEN
            return self._leak(inner)
        return DeliveryResult(
            packet=inner, status="unreachable",
            detail=f"tunnel outage ({detail})",
        )

    def _leak(self, inner: Packet) -> DeliveryResult:
        """Forward an inner packet in plaintext via the physical interface."""
        physical = self.host.interfaces.get(self.physical_interface)
        if physical is None or not physical.up:
            return DeliveryResult(packet=inner, status="interface_down",
                                  detail=self.physical_interface)
        src = physical.address_for_version(inner.dst.version)
        if src is None:
            return DeliveryResult(packet=inner, status="no_route",
                                  detail="no plaintext source address")
        plaintext = inner.with_src(src)
        if not self.host.firewall.permits(plaintext, "out", physical.name):
            return DeliveryResult.filtered(plaintext, "egress firewall")
        assert self.host.internet is not None
        physical.capture.record(self.host.internet.clock_ms, "tx", plaintext)
        outcome = self.host.internet.deliver(plaintext, self.host)
        if outcome.ok:
            self.leaked_packets += 1
            obs = self.host.internet.obs
            if obs is not None:
                obs.tunnel_leaked()
            for response in outcome.responses:
                physical.capture.record(
                    self.host.internet.clock_ms, "rx", response
                )
        return outcome
