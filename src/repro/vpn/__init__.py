"""VPN substrate.

Tunnel protocols, the client/server machinery, provider-side egress
behaviours (benign and otherwise), and the catalogue of the 62 commercial
services the paper evaluated (Appendix A) with ground-truth behaviours
calibrated to the paper's findings (see DESIGN.md §5).
"""

from repro.vpn.behaviors import (
    AdInjectionBehavior,
    CountryCensorshipBehavior,
    EgressBehavior,
    EgressContext,
    TlsInterceptionBehavior,
    TlsStrippingBehavior,
    TransparentProxyBehavior,
)
from repro.vpn.catalog import build_catalog, provider_profiles
from repro.vpn.client import ConnectionState, VpnClient
from repro.vpn.protocols import PROTOCOLS, TunnelProtocol
from repro.vpn.provider import (
    FailureMode,
    ProviderProfile,
    SubscriptionType,
    VantagePoint,
    VantagePointSpec,
    VpnProvider,
)
from repro.vpn.server import VantagePointServer
from repro.vpn.tunnel import TunnelEndpoint, TunnelState

__all__ = [
    "AdInjectionBehavior",
    "CountryCensorshipBehavior",
    "EgressBehavior",
    "EgressContext",
    "TlsInterceptionBehavior",
    "TlsStrippingBehavior",
    "TransparentProxyBehavior",
    "build_catalog",
    "provider_profiles",
    "ConnectionState",
    "VpnClient",
    "PROTOCOLS",
    "TunnelProtocol",
    "FailureMode",
    "ProviderProfile",
    "SubscriptionType",
    "VantagePoint",
    "VantagePointSpec",
    "VpnProvider",
    "VantagePointServer",
    "TunnelEndpoint",
    "TunnelState",
]
