"""Server-side egress behaviours.

A vantage point runs an ordered chain of :class:`EgressBehavior` objects.
For every decapsulated client request the chain may rewrite the outbound
packet, synthesise a response without contacting the origin (censorship
redirects), or rewrite the origin's response on the way back (ad injection,
TLS games).  The measurement suite never sees this machinery — only its
network-visible effects, which is the point.

Implemented behaviours and their paper anchors:

- :class:`TransparentProxyBehavior` — parses and regenerates HTTP headers
  without injecting any (Section 6.2.1's five detected proxies);
- :class:`AdInjectionBehavior` — injects a JavaScript overlay ad hosted on a
  subdomain of the provider's site into HTTP pages (Seed4.me, Section 6.1.3);
- :class:`CountryCensorshipBehavior` — upstream national blocking: 302s
  sensitive domains to the country's block page (Table 4);
- :class:`TlsInterceptionBehavior` — substitutes certificates signed by the
  provider's own CA (none found in the paper; exists so the detector is
  testable and for ablations);
- :class:`TlsStrippingBehavior` — rewrites HTTPS upgrade redirects to HTTP
  (none found in the paper; same rationale).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.net.packet import HttpPayload, Packet, TcpSegment, TlsPayload
from repro.web.dom import Document, DomElement
from repro.web.http import HeaderSet, HttpRequest, HttpResponse
from repro.web.tls import CertificateAuthority, CertificateChain, ChainRegistry
from repro.web.url import Url


@dataclass
class EgressContext:
    """What a behaviour may inspect/alter for one forwarded exchange."""

    provider_name: str
    vantage_country: str          # the country the endpoint claims to be in
    outbound: Packet              # NATed packet about to leave the VP
    synthetic_response: Optional[Packet] = None  # set to short-circuit

    def http_request(self) -> Optional[HttpRequest]:
        segment = self.outbound.payload
        if isinstance(segment, TcpSegment) and isinstance(
            segment.payload, HttpPayload
        ) and not segment.payload.is_response:
            return HttpRequest.from_payload(segment.payload)
        return None

    def replace_http_request(self, request: HttpRequest) -> None:
        segment = self.outbound.payload
        assert isinstance(segment, TcpSegment)
        self.outbound = replace(
            self.outbound,
            payload=replace(segment, payload=request.to_payload()),
        )

    def synthesise_http_response(self, response: HttpResponse) -> None:
        """Answer the client directly, never contacting the origin."""
        segment = self.outbound.payload
        assert isinstance(segment, TcpSegment)
        self.synthetic_response = Packet(
            src=self.outbound.dst,
            dst=self.outbound.src,
            payload=TcpSegment(
                src_port=segment.dst_port,
                dst_port=segment.src_port,
                payload=response.to_payload(),
            ),
        )


class EgressBehavior:
    """Base class: default passes everything through unchanged."""

    name = "noop"

    def on_request(self, context: EgressContext) -> None:
        """Inspect/rewrite an outbound request (or synthesise a response)."""

    def on_response(self, context: EgressContext, response: Packet) -> Packet:
        """Inspect/rewrite a response on its way back to the client."""
        return response


class TransparentProxyBehavior(EgressBehavior):
    """Parses and regenerates HTTP requests, as proxy software does.

    No headers are added or removed — but casing is canonicalised and order
    is normalised, which is exactly the signal the paper's header-comparison
    test keys on ("proxies did not inject additional headers, but
    consistently modified our existing headers in ways consistent with
    parsing and subsequent regeneration").
    """

    name = "transparent-proxy"

    def on_request(self, context: EgressContext) -> None:
        request = context.http_request()
        if request is None:
            return
        regenerated = request.with_headers(request.header_set.normalised())
        context.replace_http_request(regenerated)


class AdInjectionBehavior(EgressBehavior):
    """Injects an overlaid advertisement into HTTP pages (Seed4.me-style)."""

    name = "ad-injection"

    def __init__(self, provider_domain: str) -> None:
        self.provider_domain = provider_domain
        self.script_url = f"http://ads.{provider_domain}/overlay.js"

    def on_response(self, context: EgressContext, response: Packet) -> Packet:
        segment = response.payload
        if not isinstance(segment, TcpSegment):
            return response
        payload = segment.payload
        if not isinstance(payload, HttpPayload) or payload.status != 200:
            return response
        if not payload.body:
            return response
        # Only plaintext HTTP is injectable; HTTPS bodies ride inside TLS.
        if payload.url.startswith("https://"):
            return response
        try:
            document = Document.deserialise(payload.body)
        except (ValueError, KeyError):
            return response
        injected = document.with_injected(
            DomElement(
                tag="script",
                attrs=(
                    ("src", self.script_url),
                    ("data-injected-by", self.provider_domain),
                ),
            )
        ).with_injected(
            DomElement(
                tag="div",
                attrs=(("class", "vpn-upgrade-overlay"),),
                text="Upgrade to premium for unlimited bandwidth!",
            )
        )
        body = injected.serialise()
        new_payload = replace(
            payload, body=body, body_size=len(body),
            body_label=payload.body_label + "+injected",
        )
        return replace(response, payload=replace(segment, payload=new_payload))


class CountryCensorshipBehavior(EgressBehavior):
    """Upstream national censorship at the vantage point's country.

    Requests for censored domains receive an HTTP 302 to the national block
    page before ever leaving the country (Table 4 semantics).  HTTPS
    traffic to censored domains would be RST in reality; the paper could not
    reliably distinguish that from flaky connectivity, and neither do we —
    only plaintext HTTP is redirected.
    """

    name = "country-censorship"

    def __init__(self, block_page_url: str, censored_domains: set[str]) -> None:
        self.block_page_url = block_page_url
        self.censored_domains = {d.lower() for d in censored_domains}

    def on_request(self, context: EgressContext) -> None:
        request = context.http_request()
        if request is None:
            return
        url = Url.parse(request.url)
        if url.scheme != "http":
            return
        if url.host in self.censored_domains:
            context.synthesise_http_response(
                HttpResponse.redirect(request.url, self.block_page_url, status=302)
            )


class TlsInterceptionBehavior(EgressBehavior):
    """A MITM middlebox substituting its own certificates.

    Not observed among the paper's 62 providers, but the detector must be
    exercised; enabling this on a synthetic provider makes every TLS probe
    return a chain anchored in the provider's CA.
    """

    name = "tls-interception"

    def __init__(self, ca_name: str, chain_registry: ChainRegistry) -> None:
        self.ca = CertificateAuthority(ca_name)
        self.chain_registry = chain_registry
        self._chains: dict[str, CertificateChain] = {}

    def chain_for(self, hostname: str) -> CertificateChain:
        if hostname not in self._chains:
            chain = self.ca.issue(hostname)
            self.chain_registry.register(chain)
            self._chains[hostname] = chain
        return self._chains[hostname]

    def on_response(self, context: EgressContext, response: Packet) -> Packet:
        segment = response.payload
        if not isinstance(segment, TcpSegment):
            return response
        payload = segment.payload
        if not isinstance(payload, TlsPayload) or payload.record != "server_hello":
            return response
        substituted = self.chain_for(payload.sni or "unknown-host")
        new_payload = replace(
            payload, certificate_fingerprint=substituted.leaf.fingerprint
        )
        return replace(response, payload=replace(segment, payload=new_payload))


class TlsStrippingBehavior(EgressBehavior):
    """Rewrites HTTPS upgrade redirects back to plain HTTP.

    Also not observed in the paper's population; exists so the TLS-downgrade
    detector has a positive control.
    """

    name = "tls-stripping"

    def on_response(self, context: EgressContext, response: Packet) -> Packet:
        segment = response.payload
        if not isinstance(segment, TcpSegment):
            return response
        payload = segment.payload
        if not isinstance(payload, HttpPayload):
            return response
        if payload.status not in (301, 302, 307, 308):
            return response
        headers = HeaderSet(payload.headers)
        location = headers.get("Location")
        if location is None or not location.startswith("https://"):
            return response
        headers.set("Location", "http://" + location[len("https://"):])
        new_payload = replace(payload, headers=headers.as_tuple())
        return replace(response, payload=replace(segment, payload=new_payload))
