"""Tunnel protocols.

Descriptors for the tunnelling technologies the ecosystem analysis counts
(paper Figure 5) and the clients negotiate.  The protocol determines the
outer transport/port of encapsulated traffic and whether the protocol itself
is considered secure (PPTP famously is not, though the paper's leakage
findings concern *configuration*, not protocol cryptanalysis).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TunnelProtocol:
    """One tunnelling technology."""

    name: str
    transport: str           # udp | tcp
    port: int
    default_cipher: str
    considered_secure: bool
    supports_ipv6: bool

    def describe(self) -> str:
        return f"{self.name} ({self.transport}/{self.port}, {self.default_cipher})"


OPENVPN = TunnelProtocol(
    name="OpenVPN",
    transport="udp",
    port=1194,
    default_cipher="AES-256-GCM",
    considered_secure=True,
    supports_ipv6=True,
)

PPTP = TunnelProtocol(
    name="PPTP",
    transport="tcp",
    port=1723,
    default_cipher="MPPE-128",
    considered_secure=False,
    supports_ipv6=False,
)

L2TP_IPSEC = TunnelProtocol(
    name="L2TP/IPsec",
    transport="udp",
    port=1701,
    default_cipher="AES-256-CBC",
    considered_secure=True,
    supports_ipv6=False,
)

IPSEC_IKEV2 = TunnelProtocol(
    name="IPsec/IKEv2",
    transport="udp",
    port=500,
    default_cipher="AES-256-GCM",
    considered_secure=True,
    supports_ipv6=True,
)

SSTP = TunnelProtocol(
    name="SSTP",
    transport="tcp",
    port=443,
    default_cipher="AES-256-CBC",
    considered_secure=True,
    supports_ipv6=False,
)

SSL_PROXY = TunnelProtocol(
    name="SSL",
    transport="tcp",
    port=443,
    default_cipher="TLS1.2",
    considered_secure=True,
    supports_ipv6=False,
)

SSH_TUNNEL = TunnelProtocol(
    name="SSH",
    transport="tcp",
    port=22,
    default_cipher="chacha20-poly1305",
    considered_secure=True,
    supports_ipv6=False,
)

PROTOCOLS: dict[str, TunnelProtocol] = {
    p.name: p
    for p in (OPENVPN, PPTP, L2TP_IPSEC, IPSEC_IKEV2, SSTP, SSL_PROXY, SSH_TUNNEL)
}


def protocol(name: str) -> TunnelProtocol:
    """Look up a protocol by name; raises ``KeyError`` for unknown names."""
    return PROTOCOLS[name]
