"""Provider and vantage-point data model.

A :class:`ProviderProfile` is the *ground truth* for one commercial VPN
service: its catalogue metadata (subscription type, client software,
protocols) plus the behaviours the measurement suite is supposed to detect —
which of its endpoints are virtual, whether its client leaks, how it handles
tunnel failure, and any egress misbehaviour.  ``repro.vpn.catalog`` holds the
62 concrete profiles; ``repro.world`` realises profiles into live
:class:`VpnProvider` instances with hosts on the simulated internet.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.net.addresses import IPv4Address, IPv4Network
from repro.net.geo import GeoPoint

if TYPE_CHECKING:
    from repro.net.host import Host
    from repro.vpn.server import VantagePointServer


class SubscriptionType(enum.Enum):
    PAID = "Paid"
    TRIAL = "Trial"
    FREE = "Free"


class FailureMode(enum.Enum):
    """How the client behaves when the tunnel path dies (Section 6.5)."""

    FAIL_OPEN = "fail-open"                  # leaks; no kill switch
    KILL_SWITCH_DEFAULT_OFF = "ks-default-off"  # has one, ships disabled → leaks
    KILL_SWITCH_APP_ONLY = "ks-app-only"     # only kills chosen apps → leaks
    FAIL_CLOSED = "fail-closed"              # blocks traffic on failure

    @property
    def leaks(self) -> bool:
        return self is not FailureMode.FAIL_CLOSED


class ClientType(enum.Enum):
    CUSTOM = "custom"          # provider ships its own client app
    OPENVPN_CONFIG = "openvpn"  # configs for Tunnelblick/OpenVPN et al.
    BROWSER_EXTENSION = "browser"  # excluded from active testing (§4)


@dataclass(frozen=True)
class VantagePointSpec:
    """One advertised vantage point, before realisation.

    ``claimed_country``/``claimed_city`` is what the provider's server list
    advertises.  ``physical_city`` is where the machine actually is; for an
    honest endpoint it is the claimed city, for a 'virtual' endpoint it is a
    data centre elsewhere (paper Section 6.4.2).  ``censorship`` optionally
    names the block-page id of national filtering upstream of this endpoint
    (Table 4).
    """

    hostname: str
    claimed_country: str
    claimed_city: str
    physical_city: str
    censorship: Optional[str] = None
    # Concrete allocation, filled in by the catalogue: the endpoint address
    # and its enclosing /24 (the granularity of the shared-infrastructure
    # analysis, Section 6.3).
    address: str = ""
    block: str = ""
    asn: int = 0

    @property
    def is_virtual(self) -> bool:
        return self.physical_city != self.claimed_city

    @property
    def flaky(self) -> bool:
        """Connection reliability (paper Section 5.2).

        "While we were typically able to connect to VPN vantage points in
        North America and Europe, there was far lower reliability when
        connecting through vantage points in the Middle East, Africa and
        South America."  Flaky endpoints fail their first connection
        attempt and need a retry (the paper's partial re-collection).
        """
        unreliable_regions = {
            # Middle East
            "AE", "IL", "SA", "IR", "IQ", "JO", "LB", "QA", "KW", "TR",
            # Africa
            "EG", "ZA", "NG", "KE", "MA", "TN", "SC", "MU",
            # South America
            "BR", "AR", "CL", "PE", "CO", "VE", "EC", "UY",
        }
        return self.claimed_country in unreliable_regions

    @property
    def registered_country(self) -> Optional[str]:
        """The country the address is registered to (geo-IP bait).

        Providers running virtual endpoints register their space to the
        advertised country; honest endpoints need no games.
        """
        return self.claimed_country if self.is_virtual else None


@dataclass(frozen=True)
class BehaviorFlags:
    """Which egress/DNS behaviours a provider's endpoints exhibit."""

    transparent_proxy: bool = False
    ad_injection: bool = False
    dns_manipulation: bool = False
    tls_interception: bool = False
    tls_stripping: bool = False


@dataclass(frozen=True)
class LeakFlags:
    """Client-side misconfigurations (Table 6 and Section 6.5)."""

    dns_leak: bool = False      # client does not repoint the system resolver
    ipv6_leak: bool = False     # client neither tunnels nor blocks IPv6
    failure_mode: FailureMode = FailureMode.FAIL_CLOSED


@dataclass(frozen=True)
class CapabilityFlags:
    """Forward-looking provider capabilities (the paper's future work).

    ``tunnels_ipv6``: the tunnel carries IPv6 end-to-end (dual-stack
    vantage points), removing the need to block v6 — none of the paper's
    62 services did this in 2018.
    ``p2p_relay``: the provider routes other customers' traffic out
    through its clients (Hola-style); Section 6.6 found none among the 62
    and left the investigation as future work.
    """

    tunnels_ipv6: bool = False
    p2p_relay: bool = False


@dataclass(frozen=True)
class ProviderProfile:
    """Ground truth for one commercial VPN service."""

    name: str
    subscription: SubscriptionType
    client_type: ClientType
    protocols: tuple[str, ...]
    website_domain: str
    business_country: str
    founded: int
    vantage_points: tuple[VantagePointSpec, ...]
    behaviors: BehaviorFlags = BehaviorFlags()
    leaks: LeakFlags = LeakFlags()
    capabilities: CapabilityFlags = CapabilityFlags()
    # CIDR blocks (as strings) this provider draws vantage-point addresses
    # from; overlapping blocks across providers reproduce Table 5.
    address_blocks: tuple[str, ...] = ()
    claimed_server_count: int = 100
    claimed_country_count: int = 0

    def virtual_vantage_points(self) -> list[VantagePointSpec]:
        return [vp for vp in self.vantage_points if vp.is_virtual]

    @property
    def has_custom_client(self) -> bool:
        return self.client_type is ClientType.CUSTOM


@dataclass
class VantagePoint:
    """A realised vantage point: a live server host on the internet."""

    spec: VantagePointSpec
    provider_name: str
    address: IPv4Address
    block: IPv4Network
    host: "Host"
    server: "VantagePointServer"
    physical_location: GeoPoint
    claimed_location: GeoPoint

    @property
    def hostname(self) -> str:
        return self.spec.hostname

    @property
    def claimed_country(self) -> str:
        return self.spec.claimed_country

    @property
    def is_virtual(self) -> bool:
        return self.spec.is_virtual

    def describe(self) -> str:
        marker = " (virtual)" if self.is_virtual else ""
        return (
            f"{self.hostname} [{self.address}] claims "
            f"{self.spec.claimed_city},{self.claimed_country}"
            f"{marker}, physically {self.spec.physical_city}"
        )


@dataclass
class VpnProvider:
    """A realised provider: profile + live vantage points + resolver."""

    profile: ProviderProfile
    vantage_points: list[VantagePoint] = field(default_factory=list)
    # The address of the provider's in-tunnel DNS resolver.
    dns_resolver_address: str = "10.8.0.1"

    @property
    def name(self) -> str:
        return self.profile.name

    def vantage_point(self, hostname: str) -> VantagePoint:
        for vp in self.vantage_points:
            if vp.hostname == hostname:
                return vp
        raise KeyError(f"{self.name} has no vantage point {hostname!r}")

    def addresses(self) -> list[IPv4Address]:
        return [vp.address for vp in self.vantage_points]

    def blocks(self) -> list[IPv4Network]:
        return [vp.block for vp in self.vantage_points]
