"""The vantage-point server.

A :class:`VantagePointServer` runs on a host placed at the endpoint's
*physical* location.  It terminates tunnels: decapsulates inner packets,
answers in-tunnel DNS at the provider resolver address, NATs the client's
tunnel address to the vantage point's egress address, walks the egress
behaviour chain, forwards to the destination, walks the chain again for the
response, and re-encapsulates back to the client.

Because the vantage-point host is attached to the simulated internet at its
physical location, every RTT measured *through* the tunnel reflects where
the machine really is — which is precisely what defeats location spoofing in
the paper's Section 6.4.2 analysis.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.dns.server import RecursiveResolverServer
from repro.net.addresses import Address, parse_address
from repro.net.packet import (
    DnsPayload,
    Packet,
    TunnelPayload,
    UdpDatagram,
)
from repro.vpn.behaviors import EgressBehavior, EgressContext

if TYPE_CHECKING:
    from repro.net.host import Host


class VantagePointServer:
    """Tunnel terminator + egress pipeline for one vantage point."""

    # Contract marker for the delivery engine (repro.net.engine): this
    # class promises that `handle_tunnel` has exactly the decapsulate /
    # in-tunnel-DNS / NAT / behaviour-chain / forward / re-encapsulate
    # structure the engine inlines.  Subclasses that change that
    # structure must clear this flag so their flows take the legacy
    # dispatch path.
    engine_tunnel_contract = True

    def __init__(
        self,
        host: "Host",
        egress_address: Address,
        provider_name: str,
        claimed_country: str,
        resolver: RecursiveResolverServer,
        resolver_address: str = "10.8.0.1",
        behaviors: list[EgressBehavior] | None = None,
        egress_address_v6: Address | None = None,
    ) -> None:
        self.host = host
        self.egress_address = egress_address
        self.egress_address_v6 = egress_address_v6
        self.provider_name = provider_name
        self.claimed_country = claimed_country
        self.resolver = resolver
        self.resolver_address = parse_address(resolver_address)
        self.behaviors = behaviors or []
        self.sessions_served = 0
        host.bind("tunnel", 0, self.handle_tunnel)

    # ------------------------------------------------------------------
    def handle_tunnel(self, packet: Packet, host: "Host") -> Optional[list[Packet]]:
        payload = packet.payload
        if not isinstance(payload, TunnelPayload):
            return None
        inner = payload.inner
        self.sessions_served += 1

        # In-tunnel DNS service at the provider resolver address.
        if inner.dst == self.resolver_address:
            return self._answer_dns(packet, payload, inner)

        responses = self._egress(inner)
        return [
            self._encapsulate_back(packet, payload, inner, response)
            for response in responses
        ]

    # ------------------------------------------------------------------
    def _answer_dns(
        self, outer: Packet, tunnel: TunnelPayload, inner: Packet
    ) -> Optional[list[Packet]]:
        datagram = inner.payload
        if not isinstance(datagram, UdpDatagram) or datagram.dst_port != 53:
            return None
        dns = datagram.payload
        if not isinstance(dns, DnsPayload) or dns.is_response:
            return None
        from repro.dns.message import DnsQuestion

        response = self.resolver.answer(
            DnsQuestion(qname=dns.qname, qtype=dns.qtype),
            source=str(self.egress_address),
        )
        reply_inner = Packet(
            src=inner.dst,
            dst=inner.src,
            payload=UdpDatagram(
                src_port=53,
                dst_port=datagram.src_port,
                payload=DnsPayload(
                    qname=dns.qname,
                    qtype=dns.qtype,
                    is_response=True,
                    rcode=response.rcode.value,
                    answers=response.addresses,
                    txid=dns.txid,
                ),
            ),
        )
        return [self._encapsulate_back(outer, tunnel, inner, reply_inner)]

    # ------------------------------------------------------------------
    def _egress(self, inner: Packet) -> list[Packet]:
        """NAT, run behaviours, forward, un-NAT."""
        client_tunnel_address = inner.src
        if inner.dst.version == 6:
            if self.egress_address_v6 is None:
                return []  # v4-only vantage point cannot carry IPv6
            outbound = inner.with_src(self.egress_address_v6)
        else:
            outbound = inner.with_src(self.egress_address)

        context = EgressContext(
            provider_name=self.provider_name,
            vantage_country=self.claimed_country,
            outbound=outbound,
        )
        for behavior in self.behaviors:
            behavior.on_request(context)
            if context.synthetic_response is not None:
                synthetic = context.synthetic_response.with_dst(
                    client_tunnel_address
                )
                return [synthetic]
        outbound = context.outbound

        outcome = self.host.send(outbound)
        responses = outcome.responses if outcome.ok else []

        processed: list[Packet] = []
        for response in responses:
            for behavior in self.behaviors:
                response = behavior.on_response(context, response)
            processed.append(response.with_dst(client_tunnel_address))
        return processed

    # ------------------------------------------------------------------
    def _encapsulate_back(
        self,
        outer: Packet,
        tunnel: TunnelPayload,
        inner_request: Packet,
        inner_response: Packet,
    ) -> Packet:
        return Packet(
            src=outer.dst,
            dst=outer.src,
            payload=TunnelPayload(
                protocol=tunnel.protocol,
                inner=inner_response,
                cipher=tunnel.cipher,
            ),
        )
